#include "prob/pgf.h"

#include <utility>

#include "util/check.h"

namespace ipdb {
namespace prob {

using math::BigInt;
using math::Rational;

RationalPolynomial::RationalPolynomial(std::vector<Rational> coefficients)
    : coefficients_(std::move(coefficients)) {
  while (!coefficients_.empty() && coefficients_.back().is_zero()) {
    coefficients_.pop_back();
  }
}

RationalPolynomial RationalPolynomial::Constant(const Rational& c) {
  return RationalPolynomial({c});
}

RationalPolynomial RationalPolynomial::Monomial(const Rational& c,
                                                int64_t k) {
  IPDB_CHECK_GE(k, 0);
  std::vector<Rational> coefficients(k + 1);
  coefficients[k] = c;
  return RationalPolynomial(std::move(coefficients));
}

Rational RationalPolynomial::Coefficient(int64_t k) const {
  if (k < 0 || k >= static_cast<int64_t>(coefficients_.size())) {
    return Rational(0);
  }
  return coefficients_[k];
}

RationalPolynomial RationalPolynomial::operator+(
    const RationalPolynomial& other) const {
  std::vector<Rational> sum(
      std::max(coefficients_.size(), other.coefficients_.size()));
  for (size_t i = 0; i < sum.size(); ++i) {
    sum[i] = Coefficient(i) + other.Coefficient(i);
  }
  return RationalPolynomial(std::move(sum));
}

RationalPolynomial RationalPolynomial::operator*(
    const RationalPolynomial& other) const {
  if (coefficients_.empty() || other.coefficients_.empty()) {
    return RationalPolynomial();
  }
  std::vector<Rational> product(coefficients_.size() +
                                other.coefficients_.size() - 1);
  for (size_t i = 0; i < coefficients_.size(); ++i) {
    if (coefficients_[i].is_zero()) continue;
    for (size_t j = 0; j < other.coefficients_.size(); ++j) {
      if (other.coefficients_[j].is_zero()) continue;
      Rational term = coefficients_[i];
      term *= other.coefficients_[j];
      product[i + j] += term;
    }
  }
  return RationalPolynomial(std::move(product));
}

RationalPolynomial RationalPolynomial::Derivative() const {
  if (coefficients_.size() <= 1) return RationalPolynomial();
  std::vector<Rational> derivative(coefficients_.size() - 1);
  for (size_t i = 1; i < coefficients_.size(); ++i) {
    derivative[i - 1] =
        coefficients_[i] * Rational(static_cast<int64_t>(i));
  }
  return RationalPolynomial(std::move(derivative));
}

Rational RationalPolynomial::Evaluate(const Rational& x) const {
  Rational result;
  for (size_t i = coefficients_.size(); i-- > 0;) {
    result *= x;
    result += coefficients_[i];
  }
  return result;
}

std::string RationalPolynomial::ToString() const {
  if (coefficients_.empty()) return "0";
  std::string out;
  for (size_t i = 0; i < coefficients_.size(); ++i) {
    if (coefficients_[i].is_zero()) continue;
    if (!out.empty()) out += " + ";
    out += coefficients_[i].ToString();
    if (i >= 1) out += "*x";
    if (i >= 2) out += "^" + std::to_string(i);
  }
  return out.empty() ? "0" : out;
}

RationalPolynomial TiSizePgf(const std::vector<Rational>& marginals) {
  // In-place convolution with each linear factor (1 - p) + p·x, from the
  // top coefficient down (the exact-arithmetic counterpart of the
  // PoissonBinomialPmf DP) — no intermediate polynomials.
  std::vector<Rational> coefficients = {Rational(1)};
  coefficients.reserve(marginals.size() + 1);
  for (const Rational& p : marginals) {
    const Rational stay = Rational(1) - p;
    coefficients.push_back(Rational(0));
    for (size_t j = coefficients.size(); j-- > 0;) {
      coefficients[j] *= stay;
      if (j > 0) {
        Rational from_below = coefficients[j - 1];
        from_below *= p;
        coefficients[j] += from_below;
      }
    }
  }
  return RationalPolynomial(std::move(coefficients));
}

Rational FactorialMomentFromPgf(const RationalPolynomial& pgf, int k) {
  IPDB_CHECK_GE(k, 0);
  RationalPolynomial derivative = pgf;
  for (int i = 0; i < k; ++i) derivative = derivative.Derivative();
  return derivative.Evaluate(Rational(1));
}

std::vector<BigInt> StirlingSecondKind(int n) {
  IPDB_CHECK_GE(n, 0);
  // Row-by-row recurrence S(i, j) = j·S(i-1, j) + S(i-1, j-1).
  std::vector<BigInt> row = {BigInt(1)};  // S(0, 0) = 1
  for (int i = 1; i <= n; ++i) {
    std::vector<BigInt> next(i + 1);
    next[0] = BigInt(0);
    for (int j = 1; j <= i; ++j) {
      BigInt carry = j < static_cast<int>(row.size())
                         ? row[j] * BigInt(j)
                         : BigInt(0);
      BigInt diagonal = j - 1 < static_cast<int>(row.size())
                            ? row[j - 1]
                            : BigInt(0);
      next[j] = carry + diagonal;
    }
    row = std::move(next);
  }
  return row;
}

Rational RawMomentFromPgf(const RationalPolynomial& pgf, int k) {
  IPDB_CHECK_GE(k, 0);
  // E[S^k] = Σ_j S(k, j) E[S^(j)_falling] with falling factorial moments
  // G^{(j)}(1).
  std::vector<BigInt> stirling = StirlingSecondKind(k);
  Rational total;
  // Derive incrementally: the j-th term needs G^{(j)}, so one
  // Derivative() per step instead of re-deriving from the PGF each time.
  RationalPolynomial derivative = pgf;
  for (int j = 0; j <= k; ++j) {
    if (j > 0) derivative = derivative.Derivative();
    Rational term(stirling[j]);
    term *= derivative.Evaluate(Rational(1));
    total += term;
  }
  return total;
}

}  // namespace prob
}  // namespace ipdb
