#ifndef IPDB_PROB_PGF_H_
#define IPDB_PROB_PGF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "math/rational.h"

namespace ipdb {
namespace prob {

/// Dense univariate polynomials with exact rational coefficients —
/// enough algebra to carry probability generating functions.
class RationalPolynomial {
 public:
  /// The zero polynomial.
  RationalPolynomial() = default;

  /// From coefficients, lowest degree first (trailing zeros trimmed).
  explicit RationalPolynomial(std::vector<math::Rational> coefficients);

  /// The constant polynomial c.
  static RationalPolynomial Constant(const math::Rational& c);

  /// The monomial c·x^k.
  static RationalPolynomial Monomial(const math::Rational& c, int64_t k);

  const std::vector<math::Rational>& coefficients() const {
    return coefficients_;
  }
  /// Degree; -1 for the zero polynomial.
  int64_t degree() const {
    return static_cast<int64_t>(coefficients_.size()) - 1;
  }
  /// Coefficient of x^k (zero beyond the degree).
  math::Rational Coefficient(int64_t k) const;

  RationalPolynomial operator+(const RationalPolynomial& other) const;
  RationalPolynomial operator*(const RationalPolynomial& other) const;

  /// Formal derivative.
  RationalPolynomial Derivative() const;

  /// Exact evaluation at a rational point.
  math::Rational Evaluate(const math::Rational& x) const;

  std::string ToString() const;

  friend bool operator==(const RationalPolynomial& a,
                         const RationalPolynomial& b) {
    return a.coefficients_ == b.coefficients_;
  }

 private:
  std::vector<math::Rational> coefficients_;  // lowest degree first
};

/// The probability generating function of the instance-size variable of
/// a tuple-independent PDB with the given exact marginals:
///
///   G(x) = Π_i (1 − p_i + p_i x),
///
/// so the coefficient of x^k is P(|D| = k) — the Poisson-binomial pmf in
/// exact arithmetic (the rational counterpart of
/// prob::PoissonBinomialPmf).
RationalPolynomial TiSizePgf(const std::vector<math::Rational>& marginals);

/// The k-th *factorial moment* E[S(S−1)…(S−k+1)] = G^{(k)}(1), exact.
math::Rational FactorialMomentFromPgf(const RationalPolynomial& pgf, int k);

/// The k-th raw moment E[S^k], exact, via Stirling numbers of the second
/// kind applied to the factorial moments (Proposition 3.2 in exact
/// arithmetic).
math::Rational RawMomentFromPgf(const RationalPolynomial& pgf, int k);

/// Stirling numbers of the second kind S(n, j) for 0 <= j <= n.
std::vector<math::BigInt> StirlingSecondKind(int n);

}  // namespace prob
}  // namespace ipdb

#endif  // IPDB_PROB_PGF_H_
