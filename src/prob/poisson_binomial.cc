#include "prob/poisson_binomial.h"

#include <cmath>

#include "util/check.h"

namespace ipdb {
namespace prob {

std::vector<double> PoissonBinomialPmf(const std::vector<double>& p) {
  std::vector<double> pmf = {1.0};
  pmf.reserve(p.size() + 1);
  for (double pi : p) {
    IPDB_CHECK_GE(pi, 0.0);
    IPDB_CHECK_LE(pi, 1.0);
    pmf.push_back(0.0);
    // In-place convolution with (1-pi, pi), from the top down.
    for (size_t j = pmf.size(); j-- > 0;) {
      double stay = pmf[j] * (1.0 - pi);
      double from_below = j > 0 ? pmf[j - 1] * pi : 0.0;
      pmf[j] = stay + from_below;
    }
  }
  return pmf;
}

double MomentFromPmf(const std::vector<double>& pmf, int k) {
  IPDB_CHECK_GE(k, 0);
  double total = 0.0;
  for (size_t j = 0; j < pmf.size(); ++j) {
    // j^k by repeated multiplication; k is a small moment order.
    double power = 1.0;
    for (int i = 0; i < k; ++i) power *= static_cast<double>(j);
    total += power * pmf[j];
  }
  return total;
}

double BernoulliSumMomentUpper(double mu, int j) {
  IPDB_CHECK_GE(mu, 0.0);
  IPDB_CHECK_GE(j, 0);
  double bound = 1.0;
  for (int i = 0; i < j; ++i) {
    bound *= static_cast<double>(i) + mu;
  }
  return bound;
}

Interval PoissonBinomialMomentInterval(const std::vector<double>& p,
                                       double tail_mass, int k) {
  IPDB_CHECK_GE(k, 0);
  IPDB_CHECK_GE(tail_mass, 0.0);
  std::vector<double> pmf = PoissonBinomialPmf(p);

  // Prefix moments E[S_n^j] for j = 0..k, all in a single pass over the
  // pmf with incremental powers.
  std::vector<double> prefix_moment(k + 1, 0.0);
  for (size_t idx = 0; idx < pmf.size(); ++idx) {
    double power = 1.0;
    for (int j = 0; j <= k; ++j) {
      prefix_moment[j] += power * pmf[idx];
      power *= static_cast<double>(idx);
    }
  }

  double lower = prefix_moment[k];
  // Upper bound: binomial expansion with E[T^j] bounded by the iterated
  // Lemma C.1 product. C(k, j) computed incrementally.
  double upper = 0.0;
  double binom = 1.0;
  for (int j = 0; j <= k; ++j) {
    upper += binom * prefix_moment[k - j] * BernoulliSumMomentUpper(tail_mass, j);
    binom = binom * static_cast<double>(k - j) / static_cast<double>(j + 1);
  }
  if (upper < lower) upper = lower;  // guard against rounding
  // Pad by a relative epsilon: the bounds are mathematically valid but
  // accumulated in floating point, and consumers compare against values
  // computed along different summation orders.
  double pad = 1e-9 * std::abs(upper) + 1e-15;
  return Interval(lower - 1e-9 * std::abs(lower) - 1e-15, upper + pad);
}

}  // namespace prob
}  // namespace ipdb
