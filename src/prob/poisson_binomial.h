#ifndef IPDB_PROB_POISSON_BINOMIAL_H_
#define IPDB_PROB_POISSON_BINOMIAL_H_

#include <vector>

#include "util/interval.h"

namespace ipdb {
namespace prob {

/// The Poisson-binomial distribution: the law of S = X₁ + … + X_n for
/// independent Bernoulli(p_i) variables. In this library S is the
/// *instance size* random variable of a tuple-independent PDB
/// (Proposition 3.2), so its moments are the size moments the paper's
/// necessary condition (Proposition 3.4) is about.

/// Exact pmf of S via the standard O(n²) convolution DP. Entry j of the
/// result is P(S = j); the vector has n+1 entries.
std::vector<double> PoissonBinomialPmf(const std::vector<double>& p);

/// E[S^k] computed exactly from the pmf (k >= 0).
double MomentFromPmf(const std::vector<double>& pmf, int k);

/// Certified enclosure of E[S^k] for an *infinite* tuple-independent PDB
/// whose marginals were truncated to the prefix `p` with certified
/// remaining mass sum_{i >= n} p_i <= tail_mass.
///
/// Write S = S_n + T with S_n the prefix sum and T the (independent) tail
/// sum. Then E[S^k] >= E[S_n^k], and expanding the binomial,
///
///   E[S^k] = Σ_j C(k,j) E[S_n^{k-j}] E[T^j],
///
/// where E[T^j] <= Π_{i=0}^{j-1} (i + E[T]) <= Π (i + tail_mass) by
/// iterating Lemma C.1's inequality E[T^j] <= E[T^{j-1}] (j-1 + E[T]).
Interval PoissonBinomialMomentInterval(const std::vector<double>& p,
                                       double tail_mass, int k);

/// Iterated Lemma C.1 bound: an upper bound on the j-th moment of a sum of
/// independent Bernoulli variables with total mean `mu`:
/// Π_{i=0}^{j-1} (i + mu).
double BernoulliSumMomentUpper(double mu, int j);

}  // namespace prob
}  // namespace ipdb

#endif  // IPDB_PROB_POISSON_BINOMIAL_H_
