#include "relational/fact.h"

#include <ostream>

namespace ipdb {
namespace rel {

bool Fact::MatchesSchema(const Schema& schema) const {
  return schema.has_relation(relation_) &&
         schema.arity(relation_) == arity();
}

std::string Fact::ToString(const Schema& schema) const {
  std::string out = schema.has_relation(relation_)
                        ? schema.relation_name(relation_)
                        : "R#" + std::to_string(relation_);
  out += "(";
  for (int i = 0; i < arity(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i].ToString();
  }
  out += ")";
  return out;
}

std::string Fact::ToString() const { return ToString(Schema()); }

size_t Fact::Hash() const {
  size_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(relation_));
  for (const Value& v : args_) mix(v.Hash());
  return h;
}

std::ostream& operator<<(std::ostream& os, const Fact& fact) {
  return os << fact.ToString();
}

}  // namespace rel
}  // namespace ipdb
