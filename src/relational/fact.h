#ifndef IPDB_RELATIONAL_FACT_H_
#define IPDB_RELATIONAL_FACT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace ipdb {
namespace rel {

/// A τ-fact R(u₁, …, u_k): a relation symbol applied to universe elements
/// (Section 2). Facts are value types with a total order so that
/// instances can be kept canonically sorted.
class Fact {
 public:
  Fact() : relation_(0) {}

  /// Constructs R(args...) for the relation with the given id. The arity
  /// is not checked here (the schema is not in scope); `MatchesSchema`
  /// validates against a schema.
  Fact(RelationId relation, std::vector<Value> args)
      : relation_(relation), args_(std::move(args)) {}

  RelationId relation() const { return relation_; }
  const std::vector<Value>& args() const { return args_; }
  int arity() const { return static_cast<int>(args_.size()); }

  /// True if the relation id exists in `schema` with matching arity.
  bool MatchesSchema(const Schema& schema) const;

  /// Rendering with relation names resolved through the schema,
  /// e.g. "R(1, france)".
  std::string ToString(const Schema& schema) const;

  /// Rendering without a schema: "R#<id>(…)".
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation_ == b.relation_ && a.args_ == b.args_;
  }
  friend bool operator!=(const Fact& a, const Fact& b) { return !(a == b); }
  friend bool operator<(const Fact& a, const Fact& b) {
    if (a.relation_ != b.relation_) return a.relation_ < b.relation_;
    return a.args_ < b.args_;
  }

 private:
  RelationId relation_;
  std::vector<Value> args_;
};

std::ostream& operator<<(std::ostream& os, const Fact& fact);

struct FactHash {
  size_t operator()(const Fact& f) const { return f.Hash(); }
};

}  // namespace rel
}  // namespace ipdb

#endif  // IPDB_RELATIONAL_FACT_H_
