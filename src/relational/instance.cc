#include "relational/instance.h"

#include <algorithm>
#include <ostream>

namespace ipdb {
namespace rel {

Instance::Instance(std::vector<Fact> facts) : facts_(std::move(facts)) {
  std::sort(facts_.begin(), facts_.end());
  facts_.erase(std::unique(facts_.begin(), facts_.end()), facts_.end());
}

bool Instance::Contains(const Fact& fact) const {
  return std::binary_search(facts_.begin(), facts_.end(), fact);
}

bool Instance::IsSubsetOf(const Instance& other) const {
  return std::includes(other.facts_.begin(), other.facts_.end(),
                       facts_.begin(), facts_.end());
}

void Instance::Insert(const Fact& fact) {
  auto it = std::lower_bound(facts_.begin(), facts_.end(), fact);
  if (it != facts_.end() && *it == fact) return;
  facts_.insert(it, fact);
}

void Instance::Erase(const Fact& fact) {
  auto it = std::lower_bound(facts_.begin(), facts_.end(), fact);
  if (it != facts_.end() && *it == fact) facts_.erase(it);
}

Instance Instance::Union(const Instance& a, const Instance& b) {
  std::vector<Fact> merged;
  merged.reserve(a.facts_.size() + b.facts_.size());
  std::set_union(a.facts_.begin(), a.facts_.end(), b.facts_.begin(),
                 b.facts_.end(), std::back_inserter(merged));
  Instance result;
  result.facts_ = std::move(merged);
  return result;
}

Instance Instance::Intersection(const Instance& a, const Instance& b) {
  std::vector<Fact> merged;
  std::set_intersection(a.facts_.begin(), a.facts_.end(), b.facts_.begin(),
                        b.facts_.end(), std::back_inserter(merged));
  Instance result;
  result.facts_ = std::move(merged);
  return result;
}

Instance Instance::Difference(const Instance& a, const Instance& b) {
  std::vector<Fact> merged;
  std::set_difference(a.facts_.begin(), a.facts_.end(), b.facts_.begin(),
                      b.facts_.end(), std::back_inserter(merged));
  Instance result;
  result.facts_ = std::move(merged);
  return result;
}

std::vector<Fact> Instance::FactsOf(RelationId relation) const {
  std::vector<Fact> result;
  for (const Fact& f : facts_) {
    if (f.relation() == relation) result.push_back(f);
  }
  return result;
}

std::vector<Value> Instance::ActiveDomain() const {
  std::vector<Value> domain;
  for (const Fact& f : facts_) {
    for (const Value& v : f.args()) domain.push_back(v);
  }
  std::sort(domain.begin(), domain.end());
  domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
  return domain;
}

bool Instance::MatchesSchema(const Schema& schema) const {
  for (const Fact& f : facts_) {
    if (!f.MatchesSchema(schema)) return false;
  }
  return true;
}

std::string Instance::ToString(const Schema& schema) const {
  std::string out = "{";
  for (size_t i = 0; i < facts_.size(); ++i) {
    if (i > 0) out += ", ";
    out += facts_[i].ToString(schema);
  }
  out += "}";
  return out;
}

std::string Instance::ToString() const { return ToString(Schema()); }

size_t Instance::Hash() const {
  size_t h = 1469598103934665603ULL;
  for (const Fact& f : facts_) {
    h ^= f.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const Instance& instance) {
  return os << instance.ToString();
}

}  // namespace rel
}  // namespace ipdb
