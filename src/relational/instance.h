#ifndef IPDB_RELATIONAL_INSTANCE_H_
#define IPDB_RELATIONAL_INSTANCE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "relational/fact.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace ipdb {
namespace rel {

/// A τ-instance: a *finite* set of τ-facts (Section 2). Every possible
/// world of a PDB — even of an infinite PDB — is an Instance.
///
/// Representation: sorted, duplicate-free vector of facts (canonical form),
/// so equality, subset tests and set operations are linear and instances
/// can be used as map keys via `InstanceHash` or `operator<`.
class Instance {
 public:
  /// The empty instance.
  Instance() = default;

  /// Builds an instance from any list of facts; duplicates are removed.
  explicit Instance(std::vector<Fact> facts);

  const std::vector<Fact>& facts() const { return facts_; }
  int size() const { return static_cast<int>(facts_.size()); }
  bool empty() const { return facts_.empty(); }

  bool Contains(const Fact& fact) const;

  /// True if every fact of this instance is in `other`.
  bool IsSubsetOf(const Instance& other) const;

  /// Inserts a fact (no-op if present).
  void Insert(const Fact& fact);

  /// Removes a fact (no-op if absent).
  void Erase(const Fact& fact);

  /// Set union / intersection / difference.
  static Instance Union(const Instance& a, const Instance& b);
  static Instance Intersection(const Instance& a, const Instance& b);
  static Instance Difference(const Instance& a, const Instance& b);

  /// All facts of a single relation, in order.
  std::vector<Fact> FactsOf(RelationId relation) const;

  /// The active domain adom(D): all universe elements appearing in facts,
  /// sorted and duplicate-free. The ⊥ element is *included* when present
  /// (callers that need U-only elements filter it).
  std::vector<Value> ActiveDomain() const;

  /// True if all facts match the schema.
  bool MatchesSchema(const Schema& schema) const;

  std::string ToString(const Schema& schema) const;
  std::string ToString() const;

  size_t Hash() const;

  friend bool operator==(const Instance& a, const Instance& b) {
    return a.facts_ == b.facts_;
  }
  friend bool operator!=(const Instance& a, const Instance& b) {
    return !(a == b);
  }
  friend bool operator<(const Instance& a, const Instance& b) {
    return a.facts_ < b.facts_;
  }

 private:
  std::vector<Fact> facts_;
};

std::ostream& operator<<(std::ostream& os, const Instance& instance);

struct InstanceHash {
  size_t operator()(const Instance& instance) const {
    return instance.Hash();
  }
};

}  // namespace rel
}  // namespace ipdb

#endif  // IPDB_RELATIONAL_INSTANCE_H_
