#include "relational/parse.h"

#include <cctype>
#include <vector>

namespace ipdb {
namespace rel {

namespace {

/// A minimal cursor over the input.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(text_[pos_])) ++pos_;
  }
  bool AtEnd() {
    SkipWhitespace();
    return pos_ >= text_.size();
  }
  bool Accept(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  char Peek() {
    SkipWhitespace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Status Error(const std::string& message) const {
    return InvalidArgumentError(message + " at offset " +
                                std::to_string(pos_));
  }

  StatusOr<std::string> Identifier() {
    SkipWhitespace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(text_[pos_]) || text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected an identifier");
    return text_.substr(start, pos_ - start);
  }

  StatusOr<Value> Term() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("expected a term");
    char c = text_[pos_];
    if (c == '\'') {
      size_t end = text_.find('\'', pos_ + 1);
      if (end == std::string::npos) {
        return Error("unterminated symbol literal");
      }
      Value value = Value::Symbol(text_.substr(pos_ + 1, end - pos_ - 1));
      pos_ = end + 1;
      return value;
    }
    if (c == '-' || std::isdigit(c)) {
      size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < text_.size() && std::isdigit(text_[pos_])) ++pos_;
      if (pos_ == start + (c == '-' ? 1u : 0u)) {
        return Error("expected digits");
      }
      return Value::Int(std::stoll(text_.substr(start, pos_ - start)));
    }
    StatusOr<std::string> word = Identifier();
    if (!word.ok()) return word.status();
    if (word.value() == "null") return Value::Null();
    return Error("unknown term '" + word.value() +
                 "' (symbols need quotes)");
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

StatusOr<Fact> ParseOneFact(Cursor& cursor, const Schema& schema) {
  StatusOr<std::string> name = cursor.Identifier();
  if (!name.ok()) return name.status();
  StatusOr<RelationId> relation = schema.FindRelation(name.value());
  if (!relation.ok()) return relation.status();
  if (!cursor.Accept('(')) return cursor.Error("expected '('");
  std::vector<Value> args;
  if (!cursor.Accept(')')) {
    while (true) {
      StatusOr<Value> value = cursor.Term();
      if (!value.ok()) return value.status();
      args.push_back(std::move(value).value());
      if (cursor.Accept(')')) break;
      if (!cursor.Accept(',')) return cursor.Error("expected ',' or ')'");
    }
  }
  if (static_cast<int>(args.size()) != schema.arity(relation.value())) {
    return InvalidArgumentError(
        "arity mismatch for " + name.value() + ": expected " +
        std::to_string(schema.arity(relation.value())) + " got " +
        std::to_string(args.size()));
  }
  return Fact(relation.value(), std::move(args));
}

}  // namespace

StatusOr<Fact> ParseFact(const std::string& text, const Schema& schema) {
  Cursor cursor(text);
  StatusOr<Fact> fact = ParseOneFact(cursor, schema);
  if (!fact.ok()) return fact;
  if (!cursor.AtEnd()) return cursor.Error("trailing input");
  return fact;
}

StatusOr<Instance> ParseInstance(const std::string& text,
                                 const Schema& schema) {
  Cursor cursor(text);
  std::vector<Fact> facts;
  while (!cursor.AtEnd()) {
    StatusOr<Fact> fact = ParseOneFact(cursor, schema);
    if (!fact.ok()) return fact.status();
    facts.push_back(std::move(fact).value());
    if (!cursor.Accept(';')) {
      if (!cursor.AtEnd()) return cursor.Error("expected ';'");
      break;
    }
  }
  return Instance(std::move(facts));
}

}  // namespace rel
}  // namespace ipdb
