#ifndef IPDB_RELATIONAL_PARSE_H_
#define IPDB_RELATIONAL_PARSE_H_

#include <string>

#include "relational/instance.h"
#include "relational/schema.h"
#include "util/status.h"

namespace ipdb {
namespace rel {

/// Parses a database instance from text against a schema.
///
/// Syntax: facts separated by ';' (a trailing separator is allowed),
/// each of the form `Relation(term, …)` with terms
///   * an optionally signed integer — an Int value,
///   * 'name' in single quotes — a Symbol value,
///   * `null` — the ⊥ element.
/// Whitespace is free. Example:
///
///   ParseInstance("Friend('ann', 'bob'); Age('ann', 31);", schema)
///
/// Duplicated facts collapse (instances are sets). Fails on unknown
/// relations, arity mismatches, or malformed terms.
StatusOr<Instance> ParseInstance(const std::string& text,
                                 const Schema& schema);

/// Parses a single fact, e.g. "R(1, 'a')".
StatusOr<Fact> ParseFact(const std::string& text, const Schema& schema);

}  // namespace rel
}  // namespace ipdb

#endif  // IPDB_RELATIONAL_PARSE_H_
