#include "relational/schema.h"

#include <algorithm>

#include "util/check.h"

namespace ipdb {
namespace rel {

Schema::Schema(std::initializer_list<std::pair<std::string, int>> relations) {
  for (const auto& [name, arity] : relations) {
    StatusOr<RelationId> id = AddRelation(name, arity);
    IPDB_CHECK(id.ok()) << id.status().ToString();
  }
}

StatusOr<RelationId> Schema::AddRelation(const std::string& name, int arity) {
  if (arity < 0) {
    return InvalidArgumentError("negative arity for relation " + name);
  }
  if (name.empty()) {
    return InvalidArgumentError("empty relation name");
  }
  if (by_name_.count(name) != 0) {
    return InvalidArgumentError("duplicate relation name: " + name);
  }
  RelationId id = static_cast<RelationId>(names_.size());
  names_.push_back(name);
  arities_.push_back(arity);
  by_name_[name] = id;
  return id;
}

StatusOr<RelationId> Schema::FindRelation(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return InvalidArgumentError("unknown relation: " + name);
  }
  return it->second;
}

int Schema::arity(RelationId id) const {
  IPDB_CHECK(has_relation(id)) << "bad relation id " << id;
  return arities_[id];
}

const std::string& Schema::relation_name(RelationId id) const {
  IPDB_CHECK(has_relation(id)) << "bad relation id " << id;
  return names_[id];
}

int Schema::max_arity() const {
  int result = 0;
  for (int a : arities_) result = std::max(result, a);
  return result;
}

std::string Schema::ToString() const {
  std::string out = "{";
  for (int i = 0; i < num_relations(); ++i) {
    if (i > 0) out += ", ";
    out += names_[i] + "/" + std::to_string(arities_[i]);
  }
  out += "}";
  return out;
}

}  // namespace rel
}  // namespace ipdb
