#ifndef IPDB_RELATIONAL_SCHEMA_H_
#define IPDB_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace ipdb {
namespace rel {

/// Index of a relation symbol within its Schema.
using RelationId = int32_t;

/// A database schema τ: a finite, non-empty set of relation symbols with
/// arities (Section 2). Relations are referenced by dense `RelationId`s;
/// names are kept for parsing and printing.
///
/// Schemas are value types; facts and formulas refer to relations by id
/// only, so two schemas with the same relations in the same order are
/// interchangeable.
class Schema {
 public:
  Schema() = default;

  /// Convenience constructor from (name, arity) pairs; duplicate names
  /// abort (use AddRelation for recoverable handling).
  Schema(std::initializer_list<std::pair<std::string, int>> relations);

  /// Adds a relation symbol. Fails on duplicate names or negative arity.
  StatusOr<RelationId> AddRelation(const std::string& name, int arity);

  /// Id of a named relation, if present.
  StatusOr<RelationId> FindRelation(const std::string& name) const;

  int num_relations() const { return static_cast<int>(arities_.size()); }
  bool has_relation(RelationId id) const {
    return id >= 0 && id < num_relations();
  }

  /// Arity of a relation; id must be valid.
  int arity(RelationId id) const;

  /// Name of a relation; id must be valid.
  const std::string& relation_name(RelationId id) const;

  /// The largest arity over all relations (0 for an empty schema).
  /// This is the parameter r in Lemmas 3.6/3.7.
  int max_arity() const;

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.names_ == b.names_ && a.arities_ == b.arities_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<int> arities_;
  std::unordered_map<std::string, RelationId> by_name_;
};

}  // namespace rel
}  // namespace ipdb

#endif  // IPDB_RELATIONAL_SCHEMA_H_
