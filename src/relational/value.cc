#include "relational/value.h"

#include <ostream>

namespace ipdb {
namespace rel {

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "_|_";
    case Kind::kInt:
      return std::to_string(int_value_);
    case Kind::kSymbol:
      return symbol_;
  }
  return "?";
}

size_t Value::Hash() const {
  // FNV-1a style mixing with a kind tag.
  size_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(kind_));
  switch (kind_) {
    case Kind::kNull:
      break;
    case Kind::kInt:
      mix(static_cast<uint64_t>(int_value_));
      break;
    case Kind::kSymbol:
      mix(std::hash<std::string>()(symbol_));
      break;
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace rel
}  // namespace ipdb
