#ifndef IPDB_RELATIONAL_VALUE_H_
#define IPDB_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace ipdb {
namespace rel {

/// An element of the countably infinite universe U (Section 2 of the
/// paper), extended by the dummy element ⊥ used by the segmented-fact
/// construction of Lemma 5.1 (U^ = U ∪ {⊥}).
///
/// Values are integers or named symbols; both kinds together are
/// countable, and integers give us an inexhaustible supply of fresh
/// elements for the generic-quantification semantics (see
/// logic/evaluator.h).
///
/// Values are totally ordered (Null < Int < Symbol, then by payload) so
/// facts and instances can be kept in canonical sorted form.
class Value {
 public:
  enum class Kind { kNull = 0, kInt = 1, kSymbol = 2 };

  /// Default-constructed value is ⊥ (Null).
  Value() : kind_(Kind::kNull), int_value_(0) {}

  /// The dummy element ⊥.
  static Value Null() { return Value(); }

  /// An integer universe element.
  static Value Int(int64_t value) {
    Value v;
    v.kind_ = Kind::kInt;
    v.int_value_ = value;
    return v;
  }

  /// A named universe element, e.g. Symbol("france").
  static Value Symbol(std::string name) {
    Value v;
    v.kind_ = Kind::kSymbol;
    v.symbol_ = std::move(name);
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_symbol() const { return kind_ == Kind::kSymbol; }

  /// Integer payload; only valid when is_int().
  int64_t int_value() const { return int_value_; }

  /// Symbol payload; only valid when is_symbol().
  const std::string& symbol() const { return symbol_; }

  /// "⊥" (rendered as "_|_"), the integer, or the symbol name.
  std::string ToString() const;

  /// Total order: Null < Int < Symbol, then by payload.
  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return false;
    switch (a.kind_) {
      case Kind::kNull: return true;
      case Kind::kInt: return a.int_value_ == b.int_value_;
      case Kind::kSymbol: return a.symbol_ == b.symbol_;
    }
    return false;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    switch (a.kind_) {
      case Kind::kNull: return false;
      case Kind::kInt: return a.int_value_ < b.int_value_;
      case Kind::kSymbol: return a.symbol_ < b.symbol_;
    }
    return false;
  }

  /// Hash suitable for unordered containers.
  size_t Hash() const;

 private:
  Kind kind_;
  int64_t int_value_;
  std::string symbol_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace rel
}  // namespace ipdb

#endif  // IPDB_RELATIONAL_VALUE_H_
