#include "server/admission.h"

#include <algorithm>

#include "obs/obs.h"

namespace ipdb {
namespace server {

const char* AdmissionName(Admission admission) {
  switch (admission) {
    case Admission::kFull: return "full";
    case Admission::kDegraded: return "degraded";
    case Admission::kShed: return "shed";
  }
  return "unknown";
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  options_.max_queue_depth = std::max<int64_t>(1, options_.max_queue_depth);
  options_.window = std::max(1, options_.window);
  window_.assign(static_cast<size_t>(options_.window), 0);
}

Admission AdmissionController::Decide(int64_t queue_depth) {
  if (queue_depth >= options_.max_queue_depth) {
    IPDB_OBS_COUNT("serve.admission.shed", 1);
    return Admission::kShed;
  }
  const double degrade_depth =
      options_.degrade_fraction * static_cast<double>(options_.max_queue_depth);
  if (static_cast<double>(queue_depth) >= degrade_depth ||
      FallbackRate() >= options_.fallback_degrade_rate) {
    IPDB_OBS_COUNT("serve.admission.degraded", 1);
    return Admission::kDegraded;
  }
  IPDB_OBS_COUNT("serve.admission.full", 1);
  return Admission::kFull;
}

void AdmissionController::RecordOutcome(bool fell_back) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint8_t value = fell_back ? 1 : 0;
  fallbacks_ += value - window_[static_cast<size_t>(next_)];
  window_[static_cast<size_t>(next_)] = value;
  next_ = (next_ + 1) % options_.window;
  filled_ = std::min(filled_ + 1, options_.window);
}

double AdmissionController::FallbackRate() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (filled_ < (options_.window + 1) / 2) return 0.0;
  return static_cast<double>(fallbacks_) / static_cast<double>(filled_);
}

}  // namespace server
}  // namespace ipdb
