#ifndef IPDB_SERVER_ADMISSION_H_
#define IPDB_SERVER_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "util/status.h"

namespace ipdb {
namespace server {

/// Knobs for the engine-wide admission ladder.
struct AdmissionOptions {
  /// Queries in flight (queued + executing) across all tenants; a
  /// submission arriving above this is shed outright.
  int64_t max_queue_depth = 128;
  /// Fraction of max_queue_depth above which new queries are admitted
  /// *degraded* (sample-only rung) instead of full-fidelity.
  double degrade_fraction = 0.5;
  /// Recent-fallback-rate threshold: when more than this fraction of a
  /// sliding window of completed queries degraded to the Monte Carlo
  /// rung (the pqe.fallback.* signal), the exact rungs are presumed
  /// over budget for the current load and new queries are admitted
  /// degraded even at low queue depth. Set >= 1 to disable.
  double fallback_degrade_rate = 0.75;
  /// Completed queries in the sliding outcome window.
  int window = 64;
};

/// What the controller decided for one submission.
enum class Admission {
  kFull,      // run the whole ladder (lifted -> compile -> fallback)
  kDegraded,  // sample-only: lifted stays, compile rung capped out
  kShed,      // reject now (kUnavailable); client retries or gives up
};

const char* AdmissionName(Admission admission);

/// Closed-loop load control for the query service, in the spirit of
/// queue-depth-driven load shedding: pressure is read from the live
/// queue-depth gauge at submission time, and from a sliding window of
/// completion outcomes fed back by the engine (a completed query that
/// had to fall back to sampling is evidence the exact rungs do not fit
/// the current load). The ladder is reject -> sample-only -> full:
/// above max_queue_depth requests shed; above degrade_fraction (or a
/// saturated fallback window) they degrade; otherwise they run full.
///
/// Thread-safe; Decide and RecordOutcome are called from submission and
/// worker threads respectively.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options = {});

  /// Decision for a submission arriving when `queue_depth` queries are
  /// already in flight (the arriving query excluded).
  Admission Decide(int64_t queue_depth);

  /// Feedback from a completed query: whether it degraded to the Monte
  /// Carlo fallback (pqe quality kInterval/kFailed or a budget trip).
  void RecordOutcome(bool fell_back);

  /// Fallback fraction of the current window (0 while the window has
  /// fewer than window/2 samples — too little signal to act on).
  double FallbackRate() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::vector<uint8_t> window_;  // ring buffer of outcomes
  int next_ = 0;
  int filled_ = 0;
  int fallbacks_ = 0;
};

}  // namespace server
}  // namespace ipdb

#endif  // IPDB_SERVER_ADMISSION_H_
