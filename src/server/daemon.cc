#include "server/daemon.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include "obs/obs.h"

namespace ipdb {
namespace server {

namespace {

std::atomic<bool> g_signal_requested{false};

void OnSignal(int /*signum*/) {
  g_signal_requested.store(true, std::memory_order_release);
}

const char* QualityName(pqe::AnswerQuality quality) {
  switch (quality) {
    case pqe::AnswerQuality::kExact: return "exact";
    case pqe::AnswerQuality::kInterval: return "interval";
    case pqe::AnswerQuality::kFailed: return "failed";
  }
  return "unknown";
}

/// "ERR CODE message" with newlines flattened (the protocol is
/// line-framed).
std::string ErrorLine(const Status& status) {
  std::string message = status.message();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  std::string line = "ERR ";
  line += StatusCodeName(status.code());
  if (!message.empty()) {
    line += ' ';
    line += message;
  }
  return line;
}

std::string ResultLine(const QueryResult& result) {
  std::ostringstream out;
  out.precision(17);
  out << "OK " << result.answer.probability << ' ' << result.answer.half_width
      << ' ' << result.answer.confidence << ' '
      << QualityName(result.answer.quality) << ' '
      << (result.answer.lifted ? 1 : 0) << ' ' << (result.degraded ? 1 : 0)
      << ' ' << result.trace_id;
  return out.str();
}

}  // namespace

Daemon::Daemon(Engine* engine, const DaemonOptions& options)
    : engine_(engine), options_(options) {}

Daemon::~Daemon() { Stop(); }

Status Daemon::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return InvalidArgumentError("daemon already started");
    started_ = true;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return IPDB_STATUS(StatusCode::kUnavailable)
           << "socket() failed: " << std::strerror(errno);
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      htonl(options_.loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return IPDB_STATUS(StatusCode::kUnavailable)
           << "bind() failed: " << std::strerror(errno);
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return IPDB_STATUS(StatusCode::kUnavailable)
           << "listen() failed: " << std::strerror(errno);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  IPDB_OBS_COUNT("serve.daemon.starts", 1);
  return Status::Ok();
}

void Daemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  stop_.store(true, std::memory_order_release);
  {
    // Unblock connection reads so their poll loops observe the flag.
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  IPDB_OBS_COUNT("serve.daemon.stops", 1);
}

void Daemon::InstallSignalHandler() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

bool Daemon::signal_requested() {
  return g_signal_requested.load(std::memory_order_acquire);
}

void Daemon::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { Serve(fd); });
    IPDB_OBS_COUNT("serve.daemon.connections", 1);
  }
}

namespace {

/// Sends the whole response, retrying on EINTR; false when the peer is
/// gone (any other error).
bool SendAll(int fd, const std::string& response) {
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t wrote =
        ::send(fd, response.data() + sent, response.size() - sent, 0);
    if (wrote < 0 && errno == EINTR) continue;
    if (wrote <= 0) return false;
    sent += static_cast<size_t>(wrote);
  }
  return true;
}

}  // namespace

void Daemon::Serve(int fd) {
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  while (!quit && !stop_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;  // a signal is not a dead peer
      break;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or error
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.find('\n') == std::string::npos &&
        buffer.size() > kMaxRequestLineBytes) {
      // An unterminated over-long line would buffer without bound;
      // answer once and hang up instead.
      IPDB_OBS_COUNT("serve.daemon.oversized_lines", 1);
      SendAll(fd, "ERR INVALID_ARGUMENT request line exceeds " +
                      std::to_string(kMaxRequestLineBytes) + " bytes\n");
      break;
    }
    size_t newline;
    while (!quit && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::string response = HandleLine(line);
      if (response == "BYE") quit = true;
      response.push_back('\n');
      if (!SendAll(fd, response)) {
        quit = true;
        break;
      }
    }
  }
  ::close(fd);
}

std::string Daemon::HandleLine(const std::string& line) {
  IPDB_OBS_COUNT("serve.daemon.requests", 1);
  std::istringstream in(line);
  std::string command;
  in >> command;
  if (command.empty()) return "ERR INVALID_ARGUMENT empty request";
  if (command == "PING") return "PONG";
  if (command == "QUIT") return "BYE";
  if (command == "METRICS") return Engine::MetricsJson();
  if (command == "STATS") return engine_->StatsJson();
  if (command == "SAVE" || command == "LOAD") {
    std::string instance;
    in >> instance;
    if (instance.empty()) {
      return "ERR INVALID_ARGUMENT usage: " + command + " <instance>";
    }
    const Status status = command == "SAVE" ? engine_->SaveInstance(instance)
                                            : engine_->LoadInstance(instance);
    if (!status.ok()) return ErrorLine(status);
    return "OK";
  }
  if (command == "TRACE") {
    unsigned long long trace_id = 0;
    if (!(in >> trace_id) || trace_id == 0) {
      return "ERR INVALID_ARGUMENT usage: TRACE <trace-id>";
    }
    StatusOr<std::string> tree =
        engine_->TraceJson(static_cast<uint64_t>(trace_id));
    if (!tree.ok()) return ErrorLine(tree.status());
    return tree.value();
  }
  if (command == "QUERY" || command == "PQUERY") {
    std::string tenant;
    std::string instance;
    in >> tenant >> instance;
    std::string formula;
    std::getline(in, formula);
    const size_t start = formula.find_first_not_of(" \t");
    formula = start == std::string::npos ? "" : formula.substr(start);
    if (tenant.empty() || instance.empty() || formula.empty()) {
      return "ERR INVALID_ARGUMENT usage: " + command +
             " <tenant> <instance> <formula>";
    }
    StatusOr<QueryResult> result =
        command == "QUERY" ? engine_->Query(tenant, instance, formula)
                           : engine_->QueryPrepared(tenant, instance, formula);
    if (!result.ok()) return ErrorLine(result.status());
    return ResultLine(result.value());
  }
  return "ERR INVALID_ARGUMENT unknown command '" + command + "'";
}

}  // namespace server
}  // namespace ipdb
