#ifndef IPDB_SERVER_DAEMON_H_
#define IPDB_SERVER_DAEMON_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/engine.h"
#include "util/status.h"

namespace ipdb {
namespace server {

/// Daemon knobs. Port 0 binds an ephemeral port (tests); the bound port
/// is readable from port() after Start.
struct DaemonOptions {
  int port = 0;
  /// Loopback-only by default; set false to bind INADDR_ANY.
  bool loopback_only = true;
};

/// A thin TCP line-protocol front door over an Engine — one request per
/// line, one response line per request, so any client (netcat, a bench
/// harness, a test socket) can speak it without a library. Commands:
///
///   PING                                  -> PONG
///   QUERY  <tenant> <instance> <formula>  -> OK <p> <half_width>
///                                            <confidence> <quality>
///                                            <lifted> <degraded>
///                                            <trace-id>
///   PQUERY <tenant> <instance> <formula>  -> same, via the tenant's
///                                            shared PreparedQuery
///   METRICS                               -> the single-line
///                                            ipdb-metrics-v1 JSON
///   STATS                                 -> the single-line
///                                            ipdb-stats-v1 JSON
///                                            (per-tenant rollups + SLO
///                                            burn-rate states)
///   TRACE <trace-id>                      -> the single-line
///                                            ipdb-trace-tree-v1 JSON
///                                            span tree for a sampled
///                                            request (id from a QUERY
///                                            response)
///   SAVE <instance>                       -> OK (snapshots the named
///                                            instance to the engine's
///                                            durability directory)
///   LOAD <instance>                       -> OK (recovers + registers
///                                            the instance from disk)
///   QUIT                                  -> BYE (connection closes)
///
/// Request lines are capped at kMaxRequestLineBytes: a connection that
/// streams more than that without a newline gets one `ERR` line and is
/// closed instead of buffering without bound.
///
/// Failures answer `ERR <CODE> <message>` with the Status code name
/// (UNAVAILABLE = shed or stopping; INVALID_ARGUMENT = unknown names or
/// a malformed formula) — a bad request never takes the daemon down.
/// The formula is the rest of the line, spaces included.
///
/// Threading: one accept loop thread plus one thread per connection,
/// all polling a stop flag at ~100ms, so Stop converges without racing
/// blocked reads. The daemon does not own the Engine; Stop() quiesces
/// the daemon only (stop the engine afterwards for the full drain).
class Daemon {
 public:
  /// Longest accepted request line (bytes, excluding the newline).
  static constexpr size_t kMaxRequestLineBytes = 64 * 1024;

  /// `engine` must outlive the daemon.
  Daemon(Engine* engine, const DaemonOptions& options = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens and spawns the accept loop (kUnavailable when the
  /// socket layer refuses — callers in sandboxed tests skip).
  Status Start();

  /// Stops accepting, shuts down live connections, joins all threads
  /// (idempotent).
  void Stop();

  /// The bound port (0 before a successful Start).
  int port() const { return port_; }

  /// Process-wide SIGINT/SIGTERM latch for daemon mains: installs a
  /// handler that records the signal (async-signal-safe store) instead
  /// of killing the process, so the main loop can drain the engine
  /// before exiting.
  static void InstallSignalHandler();
  static bool signal_requested();

 private:
  void AcceptLoop();
  void Serve(int fd);
  /// One request line -> one response line (no trailing newline).
  std::string HandleLine(const std::string& line);

  Engine* engine_;
  DaemonOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  std::mutex mu_;
  std::vector<std::thread> connections_;  // guarded by mu_
  std::vector<int> connection_fds_;       // guarded by mu_
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace server
}  // namespace ipdb

#endif  // IPDB_SERVER_DAEMON_H_
