#include "server/engine.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "logic/parser.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/fault.h"

namespace ipdb {
namespace server {

namespace {

/// Shed-rung labels, interned once. [[maybe_unused]] keeps the obs-off
/// build quiet (the labeled macros expand to nothing there).
[[maybe_unused]] const obs::LabelId kRungStopping =
    obs::InternLabel("stopping");
[[maybe_unused]] const obs::LabelId kRungTenantQuota =
    obs::InternLabel("tenant_quota");
[[maybe_unused]] const obs::LabelId kRungQueueDepth =
    obs::InternLabel("queue_depth");

obs::SloPolicy SloPolicyFor(const TenantConfig& config) {
  obs::SloPolicy policy;
  policy.latency_threshold_ms = config.slo_p99_ms;
  policy.latency_target = 0.99;  // "p99 <= threshold" as a burn objective
  policy.availability_target = config.slo_availability;
  policy.burn_alert = config.slo_burn_alert;
  return policy;
}

uint64_t SamplePeriodFor(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return 1;
  return static_cast<uint64_t>(std::llround(1.0 / rate));
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             ExecutionBudget::Clock::now().time_since_epoch())
      .count();
}

ExecutionBudget::Clock::time_point TimePointFromNs(int64_t ns) {
  return ExecutionBudget::Clock::time_point(
      std::chrono::duration_cast<ExecutionBudget::Clock::duration>(
          std::chrono::nanoseconds(ns)));
}

}  // namespace

const StatusOr<QueryResult>& PendingQuery::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return result_;
}

bool PendingQuery::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void PendingQuery::Fulfill(StatusOr<QueryResult> result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    result_ = std::move(result);
    done_ = true;
  }
  cv_.notify_all();
}

Engine::Engine(const EngineOptions& options)
    : options_(options), admission_(options.admission) {
  const int threads =
      options_.threads <= 0 ? HardwareThreadCount() : options_.threads;
  options_.threads = threads;
  // ThreadPool(n) spawns n - 1 workers (the caller is the n-th batch
  // participant), but posted tasks run on workers only — so ask for one
  // more to get `threads` true serving workers.
  pool_ = std::make_unique<ThreadPool>(threads + 1);
  if (!options_.durability_dir.empty()) {
    durability_ = std::make_unique<durability::Manager>(options_.durability_dir);
    RestoreOnBoot();
  }
}

void Engine::RestoreOnBoot() {
  auto names = durability_->List();
  if (!names.ok()) {
    boot_restore_status_ = names.status();
    return;
  }
  for (const std::string& name : *names) {
    const Status loaded = LoadInstance(name);
    if (loaded.ok()) {
      ++boot_restored_;
      IPDB_OBS_COUNT("dur.boot.restored", 1);
    } else {
      IPDB_OBS_COUNT("dur.boot.restore_errors", 1);
      if (boot_restore_status_.ok()) boot_restore_status_ = loaded;
    }
  }
}

Status Engine::SaveInstance(const std::string& name) {
  if (durability_ == nullptr) {
    return FailedPreconditionError(
        "durability is off (EngineOptions::durability_dir is empty)");
  }
  std::shared_ptr<const pdb::TiPdb<double>> instance;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = instances_.find(name);
    if (it == instances_.end()) {
      return InvalidArgumentError("instance '" + name + "' is not registered");
    }
    instance = it->second;
  }
  IPDB_RETURN_IF_ERROR(durability_->Save(name, *instance->store()));
  IPDB_OBS_COUNT("serve.instance.saves", 1);
  return Status::Ok();
}

Status Engine::LoadInstance(const std::string& name) {
  if (durability_ == nullptr) {
    return FailedPreconditionError(
        "durability is off (EngineOptions::durability_dir is empty)");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (instances_.count(name) != 0) {
      return InvalidArgumentError("instance '" + name +
                                  "' is already registered");
    }
  }
  auto durable = durability_->Load(name);
  if (!durable.ok()) return durable.status();
  auto instance = pdb::TiPdb<double>::FromStore(
      std::shared_ptr<const storage::TiStore>((*durable)->shared_store()));
  if (!instance.ok()) {
    return IPDB_STATUS_FORWARD(instance.status())
           << "while rebuilding instance '" << name << "' from its snapshot";
  }
  IPDB_RETURN_IF_ERROR(RegisterInstance(name, std::move(instance).value()));
  IPDB_OBS_COUNT("serve.instance.loads", 1);
  return Status::Ok();
}

Engine::~Engine() {
  Status status = Stop();
  (void)status;
}

Status Engine::RegisterInstance(const std::string& name,
                                pdb::TiPdb<double> instance) {
  if (name.empty()) {
    return InvalidArgumentError("instance name must be non-empty");
  }
  if (instance.store() == nullptr) {
    return InvalidArgumentError(
        "instance '" + name + "' has no backing store (default-constructed?)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto inserted = instances_.emplace(
      name, std::make_shared<const pdb::TiPdb<double>>(std::move(instance)));
  if (!inserted.second) {
    return InvalidArgumentError("instance '" + name + "' already registered");
  }
  return Status::Ok();
}

Status Engine::RegisterTenant(const std::string& name,
                              const TenantConfig& config) {
  if (name.empty()) {
    return InvalidArgumentError("tenant name must be non-empty");
  }
  IPDB_RETURN_IF_ERROR(ValidateTenantConfig(config));
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.count(name) != 0) {
    return InvalidArgumentError("tenant '" + name + "' already registered");
  }
  auto state = std::make_unique<TenantState>();
  state->config = config;
  state->owner = next_owner_++;
  state->label = obs::InternLabel(name);
  state->series = &stats_.GetSeries(name, SloPolicyFor(config));
  state->sample_period = SamplePeriodFor(config.trace_sample);
  kc::GlobalCompiledQueryCache().SetOwnerLimits(
      state->owner, config.cache_max_bytes, config.cache_max_entries);
  tenants_.emplace(name, std::move(state));
  return Status::Ok();
}

Status Engine::RegisterTenant(const std::string& name,
                              const std::string& config_text) {
  StatusOr<TenantConfig> config = ParseTenantConfig(config_text);
  if (!config.ok()) return config.status();
  return RegisterTenant(name, config.value());
}

StatusOr<std::shared_ptr<PendingQuery>> Engine::Submit(
    const std::string& tenant, const std::string& instance,
    const std::string& query) {
  return SubmitInternal(tenant, instance, query, /*prepared=*/false);
}

StatusOr<QueryResult> Engine::Query(const std::string& tenant,
                                    const std::string& instance,
                                    const std::string& query) {
  StatusOr<std::shared_ptr<PendingQuery>> pending =
      SubmitInternal(tenant, instance, query, /*prepared=*/false);
  if (!pending.ok()) return pending.status();
  return pending.value()->Wait();
}

StatusOr<QueryResult> Engine::QueryPrepared(const std::string& tenant,
                                            const std::string& instance,
                                            const std::string& query) {
  StatusOr<std::shared_ptr<PendingQuery>> pending =
      SubmitInternal(tenant, instance, query, /*prepared=*/true);
  if (!pending.ok()) return pending.status();
  return pending.value()->Wait();
}

StatusOr<std::shared_ptr<PendingQuery>> Engine::SubmitInternal(
    const std::string& tenant, const std::string& instance,
    const std::string& query, bool prepared) {
  IPDB_OBS_COUNT("serve.submitted", 1);
  if (stopping_.load(std::memory_order_acquire)) {
    IPDB_OBS_COUNT("serve.shed", 1);
    IPDB_OBS_COUNT_LABELED("serve.shed", "rung", kRungStopping, 1);
    return UnavailableError("query service is stopping");
  }

  TenantState* tenant_state = nullptr;
  std::shared_ptr<const pdb::TiPdb<double>> inst;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto tenant_it = tenants_.find(tenant);
    if (tenant_it == tenants_.end()) {
      return InvalidArgumentError("unknown tenant '" + tenant + "'");
    }
    tenant_state = tenant_it->second.get();
    auto instance_it = instances_.find(instance);
    if (instance_it == instances_.end()) {
      return InvalidArgumentError("unknown instance '" + instance + "'");
    }
    inst = instance_it->second;
  }

  // The request's trace context: every admitted-or-shed request gets a
  // trace id; head-based sampling decides whether the span tree is
  // retained for TRACE. ctx.span_id is the serve.request root — spans
  // opened below (and in the posted task) parent under it.
  obs::TraceContext ctx;
  ctx.trace_id = obs::NewTraceId();
  ctx.span_id = obs::NewSpanId();
  ctx.sampled = tenant_state->SampleTrace();
  if (ctx.sampled) obs::TraceStore::Global().Begin(ctx.trace_id);
  const uint64_t root_span_id = ctx.span_id;
  const int64_t submitted_ns = NowNs();
  obs::ScopedTraceContext trace_scope(ctx);
  // Closes the trace for requests that never reach a worker (parse
  // errors, shed): the root span still exists, so TRACE answers.
  auto finish_request = [&]() {
    obs::RecordCompletedSpan(ctx, root_span_id, 0, "serve.request", "serve",
                             submitted_ns, NowNs() - submitted_ns);
    obs::TraceStore::Global().Finish(ctx.trace_id);
  };

  // Parse outside the registry lock: parse cost is per-query, and a
  // malformed query must come back as a Status, never take the engine
  // down.
  StatusOr<logic::Formula> sentence = [&]() {
    IPDB_OBS_SPAN("serve.parse", "serve");
    return logic::ParseSentence(query, inst->schema());
  }();
  if (!sentence.ok()) {
    tenant_state->errors.fetch_add(1, std::memory_order_relaxed);
    tenant_state->series->RecordServed(obs::MonotonicNowNs(), 0, /*ok=*/false,
                                       /*degraded=*/false);
    IPDB_OBS_COUNT("serve.parse_errors", 1);
    finish_request();
    return sentence.status();
  }

  // Admission: the tenant's own in-flight quota first (a noisy tenant
  // sheds before it pressures anyone else), then the engine-wide ladder.
  // Scoped into a lambda so the serve.admission span closes before the
  // task is posted (the posted task must parent under serve.request,
  // not under admission).
  bool degraded = false;
  Status admit = [&]() -> Status {
    IPDB_OBS_SPAN("serve.admission", "serve");
    const int64_t tenant_in_flight =
        tenant_state->in_flight.load(std::memory_order_relaxed);
    if (tenant_in_flight >= tenant_state->config.max_in_flight) {
      tenant_state->shed.fetch_add(1, std::memory_order_relaxed);
      tenant_state->series->RecordShed(obs::MonotonicNowNs());
      IPDB_OBS_COUNT("serve.shed", 1);
      IPDB_OBS_COUNT("serve.tenant_shed", 1);
      IPDB_OBS_COUNT_LABELED("serve.shed", "rung", kRungTenantQuota,
                             1);
      return IPDB_STATUS(StatusCode::kUnavailable)
             << "tenant '" << tenant << "' at its in-flight quota ("
             << tenant_state->config.max_in_flight << ")";
    }
    const Admission decision =
        admission_.Decide(in_flight_total_.load(std::memory_order_relaxed));
    if (decision == Admission::kShed) {
      tenant_state->shed.fetch_add(1, std::memory_order_relaxed);
      tenant_state->series->RecordShed(obs::MonotonicNowNs());
      IPDB_OBS_COUNT("serve.shed", 1);
      IPDB_OBS_COUNT_LABELED("serve.shed", "rung", kRungQueueDepth,
                             1);
      return IPDB_STATUS(StatusCode::kUnavailable)
             << "query service overloaded (queue depth "
             << in_flight_total_.load(std::memory_order_relaxed) << " >= "
             << admission_.options().max_queue_depth << ")";
    }
    degraded = decision == Admission::kDegraded;
    return Status::Ok();
  }();
  if (!admit.ok()) {
    finish_request();
    return admit;
  }
  if (degraded) {
    tenant_state->degraded.fetch_add(1, std::memory_order_relaxed);
    IPDB_OBS_COUNT("serve.degraded", 1);
  }

  tenant_state->admitted.fetch_add(1, std::memory_order_relaxed);
  tenant_state->in_flight.fetch_add(1, std::memory_order_relaxed);
  [[maybe_unused]] const int64_t depth =
      in_flight_total_.fetch_add(1, std::memory_order_relaxed) + 1;
  IPDB_OBS_GAUGE_SET("serve.queue_depth", depth);
  IPDB_OBS_COUNT("serve.admitted", 1);

  std::string prepared_key;
  if (prepared) {
    prepared_key = tenant;
    prepared_key.push_back('\x1f');
    prepared_key.append(instance);
    prepared_key.push_back('\x1f');
    prepared_key.append(query);
  }

  auto pending = std::make_shared<PendingQuery>();
  pending->trace_id_ = ctx.trace_id;
  logic::Formula parsed = std::move(sentence.value());
  const int64_t admitted_ns = NowNs();
  // Post runs under trace_scope, so the pool captures ctx (span_id =
  // root) into the task closure and Execute inherits it on the worker.
  pool_->Post([this, tenant_state, inst, parsed, prepared_key, degraded,
               submitted_ns, admitted_ns, pending]() mutable {
    Execute(tenant_state, std::move(inst), std::move(parsed), prepared_key,
            degraded, submitted_ns, admitted_ns, std::move(pending));
  });
  return pending;
}

void Engine::Execute(TenantState* tenant,
                     std::shared_ptr<const pdb::TiPdb<double>> instance,
                     logic::Formula sentence, const std::string& prepared_key,
                     bool degraded, int64_t submitted_ns, int64_t admitted_ns,
                     std::shared_ptr<PendingQuery> pending) {
  // The request context travelled here through ThreadPool::Post;
  // ctx.span_id is the serve.request root allocated at submission.
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  const uint64_t root_span_id = ctx.span_id;
  const int64_t started_ns = NowNs();
  // The queue wait happened before any worker could open a span for it;
  // synthesize it from the recorded timestamps.
  obs::RecordCompletedSpan(ctx, obs::NewSpanId(), root_span_id, "serve.queue",
                           "serve", admitted_ns, started_ns - admitted_ns,
                           /*depth=*/1);

  StatusOr<QueryResult> outcome(InternalError("query never executed"));
  {
    IPDB_OBS_SPAN("serve.execute", "serve");

    // Everything this query does to the shared artifact cache — probes,
    // compiles, residency — is charged to its tenant.
    kc::ScopedCacheOwner owner_scope(tenant->owner);

    ExecutionBudget budget;
    const pqe::QueryOptions options =
        ToQueryOptions(tenant->config, &budget, TimePointFromNs(admitted_ns),
                       degraded, &cancel_);

    if (!prepared_key.empty()) {
      StatusOr<std::shared_ptr<pqe::PreparedQuery>> handle =
          PreparedHandle(prepared_key, instance, sentence);
      if (!handle.ok()) {
        outcome = handle.status();
      } else {
        StatusOr<double> value = handle.value()->Query();
        if (!value.ok()) {
          outcome = value.status();
        } else {
          QueryResult result;
          result.answer.probability = value.value();
          result.answer.half_width = 0.0;
          result.answer.confidence = 1.0;
          result.answer.quality = pqe::AnswerQuality::kExact;
          result.answer.lifted = handle.value()->lifted();
          result.prepared = true;
          result.degraded = degraded;
          outcome = result;
        }
      }
    } else {
      StatusOr<pqe::QueryAnswer> answer =
          pqe::QueryProbability(*instance, sentence, options);
      if (!answer.ok()) {
        outcome = answer.status();
      } else {
        QueryResult result;
        result.answer = answer.value();
        result.degraded = degraded;
        outcome = result;
      }
    }
  }

  const int64_t finished_ns = NowNs();
  const int64_t latency_ns = finished_ns - admitted_ns;
  bool fell_back;
  if (outcome.ok()) {
    QueryResult& result = outcome.value();
    result.queue_ns = started_ns - admitted_ns;
    result.total_ns = latency_ns;
    result.trace_id = ctx.trace_id;
    fell_back = result.answer.quality != pqe::AnswerQuality::kExact;
    tenant->completed.fetch_add(1, std::memory_order_relaxed);
    IPDB_OBS_COUNT("serve.completed", 1);
    if (fell_back) IPDB_OBS_COUNT("serve.fallback_answers", 1);
  } else {
    // A budget trip with fallback disabled is still load pressure; any
    // other error (bad query, evaluation failure) says nothing about
    // load, so it stays out of the admission window.
    fell_back = IsBudgetError(outcome.status());
    tenant->errors.fetch_add(1, std::memory_order_relaxed);
    IPDB_OBS_COUNT("serve.errors", 1);
  }
  if (outcome.ok() || IsBudgetError(outcome.status())) {
    admission_.RecordOutcome(fell_back);
  }

  IPDB_OBS_OBSERVE("serve.queue_ns",
                   static_cast<double>(started_ns - admitted_ns));
  IPDB_OBS_OBSERVE("serve.latency_ns", static_cast<double>(latency_ns));
  // The labeled observation records the same value as the unlabeled
  // aggregate above, so summing the per-tenant histograms reproduces it
  // exactly (the zero-drift gate in ci.sh). Families live in their own
  // registry namespace, so the shared name does not collide.
  IPDB_OBS_OBSERVE_LABELED("serve.latency_ns", "tenant", tenant->label,
                           latency_ns);
  tenant->series->RecordServed(obs::MonotonicNowNs(), latency_ns,
                               outcome.ok(), degraded);

  tenant->in_flight.fetch_sub(1, std::memory_order_relaxed);
  [[maybe_unused]] const int64_t depth =
      in_flight_total_.fetch_sub(1, std::memory_order_relaxed) - 1;
  IPDB_OBS_GAUGE_SET("serve.queue_depth", depth);

  // Close the request: the serve.request root spans submission to
  // completion and parents everything this request did.
  obs::RecordCompletedSpan(ctx, root_span_id, 0, "serve.request", "serve",
                           submitted_ns, finished_ns - submitted_ns,
                           /*depth=*/0);
  obs::TraceStore::Global().Finish(ctx.trace_id);

  pending->Fulfill(std::move(outcome));
}

StatusOr<std::shared_ptr<pqe::PreparedQuery>> Engine::PreparedHandle(
    const std::string& key,
    const std::shared_ptr<const pdb::TiPdb<double>>& instance,
    const logic::Formula& sentence) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = prepared_.find(key);
    if (it != prepared_.end()) return it->second;
  }
  // Cold path outside the lock: preparing can compile. Two racers may
  // both prepare; the loser's handle is discarded (both are correct —
  // the artifact cache already dedupes the circuit underneath).
  StatusOr<pqe::PreparedQuery> built =
      pqe::PreparedQuery::Prepare(instance->store(), sentence);
  if (!built.ok()) return built.status();
  auto handle =
      std::make_shared<pqe::PreparedQuery>(std::move(built.value()));
  std::lock_guard<std::mutex> lock(mu_);
  auto inserted = prepared_.emplace(key, handle);
  return inserted.first->second;
}

StatusOr<TenantUsage> Engine::Usage(const std::string& tenant) const {
  kc::CacheOwner owner = 0;
  TenantUsage usage;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      return InvalidArgumentError("unknown tenant '" + tenant + "'");
    }
    const TenantState& state = *it->second;
    owner = state.owner;
    usage.in_flight = state.in_flight.load(std::memory_order_relaxed);
    usage.admitted = state.admitted.load(std::memory_order_relaxed);
    usage.degraded = state.degraded.load(std::memory_order_relaxed);
    usage.shed = state.shed.load(std::memory_order_relaxed);
    usage.completed = state.completed.load(std::memory_order_relaxed);
    usage.errors = state.errors.load(std::memory_order_relaxed);
  }
  usage.cache = kc::GlobalCompiledQueryCache().OwnerStats(owner);
  return usage;
}

Status Engine::Stop() {
  IPDB_OBS_SPAN("serve.shutdown", "serve");
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::Ok();
  }
  // Drain, don't drop: cancel makes in-flight exact work trip its
  // budget (queries with fallback degrade to clean answers; the rest
  // unwind as kCancelled), then the pool runs the queue dry.
  cancel_.Cancel();
  pool_->DrainTasks();
  IPDB_OBS_GAUGE_SET("serve.queue_depth", 0);
  // An injected fault here models a crash between drain and the final
  // flush: the engine is quiesced and Stop may be retried.
  IPDB_FAULT_POINT("server.shutdown");
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return Status::Ok();
  stopped_ = true;
  IPDB_OBS_COUNT("serve.shutdowns", 1);
  final_metrics_json_ = obs::GlobalMetrics().Snapshot().ToJson();
  return Status::Ok();
}

std::string Engine::final_metrics_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  return final_metrics_json_;
}

std::string Engine::MetricsJson() {
  return obs::GlobalMetrics().Snapshot().ToJson();
}

std::string Engine::StatsJson() const { return stats_.ReportJson(NowNs()); }

StatusOr<std::string> Engine::TraceJson(uint64_t trace_id) const {
  std::string json = obs::TraceStore::Global().TreeJson(trace_id);
  if (json.empty()) {
    return IPDB_STATUS(StatusCode::kInvalidArgument)
           << "unknown trace id " << trace_id
           << " (not sampled, or evicted from the bounded store)";
  }
  return json;
}

}  // namespace server
}  // namespace ipdb
