#ifndef IPDB_SERVER_ENGINE_H_
#define IPDB_SERVER_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "durability/manager.h"
#include "kc/cache.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "pdb/ti_pdb.h"
#include "pqe/prepared.h"
#include "pqe/wmc.h"
#include "server/admission.h"
#include "server/tenant.h"
#include "util/budget.h"
#include "util/parallel.h"
#include "util/status.h"

namespace ipdb {
namespace server {

/// Engine construction knobs.
struct EngineOptions {
  /// Serving worker threads executing queries (<= 0 means the hardware
  /// thread count). Workers are ThreadPool workers; queries are posted
  /// tasks, so `threads` queries execute truly concurrently.
  int threads = 0;
  AdmissionOptions admission;
  /// When non-empty, instances persist under this directory (one
  /// subdirectory per instance: snapshot.ipdb + wal.log) and every
  /// instance found there is restored at construction
  /// (boot_restored() / boot_restore_status() report the outcome).
  /// Empty = durability off; SAVE/LOAD return kFailedPrecondition.
  std::string durability_dir;
};

/// The outcome of one served query.
struct QueryResult {
  pqe::QueryAnswer answer;
  /// Admission ran this query on the sample-only rung.
  bool degraded = false;
  /// Answered through the tenant's shared PreparedQuery handle.
  bool prepared = false;
  /// Admission -> execution start (time spent queued).
  int64_t queue_ns = 0;
  /// Admission -> completion (what a client observes).
  int64_t total_ns = 0;
  /// The request's trace id (TRACE <id> on the daemon; nonzero for
  /// every executed query).
  uint64_t trace_id = 0;
};

/// A submitted query's future result. Handles are shared_ptr-held by
/// both the submitter and the worker, so either side may outlive the
/// other.
class PendingQuery {
 public:
  /// Blocks until the query finishes. The reference stays valid for the
  /// handle's lifetime; repeated calls return the same result.
  const StatusOr<QueryResult>& Wait();
  bool done() const;

  /// The request's trace id, assigned at submission (available before
  /// the query finishes — the per-request trace handle).
  uint64_t trace_id() const { return trace_id_; }

 private:
  friend class Engine;
  void Fulfill(StatusOr<QueryResult> result);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  uint64_t trace_id_ = 0;  // written once before the handle is shared
  StatusOr<QueryResult> result_{InternalError("query still pending")};
};

/// Aggregate per-tenant serving state (see Engine::Usage).
struct TenantUsage {
  int64_t in_flight = 0;
  int64_t admitted = 0;
  int64_t degraded = 0;
  int64_t shed = 0;
  int64_t completed = 0;
  int64_t errors = 0;
  /// This tenant's slice of the shared compiled-artifact cache.
  kc::CacheOwnerStats cache;
};

/// The in-process front door of the query engine: named TI instances,
/// named tenants with budgets/quotas, concurrent execution on a
/// ThreadPool, and a reject -> sample-only -> full admission ladder.
///
///  * Registration: `RegisterInstance` publishes an immutable
///    `pdb::TiPdb<double>`; `RegisterTenant` binds a TenantConfig
///    (parsed or built in code) and assigns the tenant a
///    kc::CacheOwner, so the tenant's traffic through the shared
///    compiled-artifact cache is accounted (and optionally capped) per
///    tenant while artifacts themselves stay shared — two tenants
///    asking the structurally same query share one circuit.
///  * Submission: `Submit` parses the query against the instance's
///    schema, runs admission (global queue depth + the fallback-rate
///    signal + the tenant's own in-flight quota), and posts execution
///    to the pool; `Wait` on the returned handle joins the result.
///    `Query` is the synchronous convenience.
///  * Sessions: `QueryPrepared` routes through a per-(tenant, instance,
///    query) shared pqe::PreparedQuery handle — repeated queries skip
///    re-grounding/re-compiling and react incrementally to store churn.
///  * Shutdown: `Stop` rejects new admissions, cancels in-flight
///    queries through the engine-wide CancelToken (they drain as
///    degraded-but-clean answers), drains the pool, and freezes a
///    final metrics snapshot (`final_metrics_json`).
///
/// Thread-safe throughout; destruction stops the engine.
class Engine {
 public:
  explicit Engine(const EngineOptions& options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Publishes an instance under `name` (kInvalidArgument on duplicate
  /// or empty names). Instances are immutable once registered.
  Status RegisterInstance(const std::string& name,
                          pdb::TiPdb<double> instance);

  /// Registers a tenant with a validated config; duplicate names are
  /// rejected. The tenant's artifact-cache quota is installed on the
  /// global compiled-query cache.
  Status RegisterTenant(const std::string& name, const TenantConfig& config);
  /// Parses `config_text` (see ParseTenantConfig) and registers.
  Status RegisterTenant(const std::string& name,
                        const std::string& config_text);

  /// Admits and enqueues one query. Synchronous failures: unknown
  /// tenant/instance or parse errors (kInvalidArgument), admission shed
  /// or shutdown (kUnavailable).
  StatusOr<std::shared_ptr<PendingQuery>> Submit(
      const std::string& tenant, const std::string& instance,
      const std::string& query);

  /// Submit + Wait.
  StatusOr<QueryResult> Query(const std::string& tenant,
                              const std::string& instance,
                              const std::string& query);

  /// Like Query, but served through the tenant's shared PreparedQuery
  /// handle (compile-once / re-answer-many; exact answers only). The
  /// first call pays the cold pipeline; later calls are memoized or
  /// incremental. Prepared handles run without a per-query deadline —
  /// the re-answer path is orders of magnitude below any sane budget.
  StatusOr<QueryResult> QueryPrepared(const std::string& tenant,
                                      const std::string& instance,
                                      const std::string& query);

  // --- Durability (requires EngineOptions::durability_dir) ---------

  /// Snapshots the named registered instance to disk (checksummed
  /// binary snapshot, temp-file + atomic rename) — the daemon's SAVE.
  Status SaveInstance(const std::string& name);

  /// Recovers the named instance from disk (snapshot + WAL replay) and
  /// registers it — the daemon's LOAD. Fails on a name that is already
  /// registered.
  Status LoadInstance(const std::string& name);

  /// Instances restored during construction, and how the boot restore
  /// went (Ok also when durability is off or the directory was empty;
  /// a failed restore of one instance does not abort the others — the
  /// first error is kept here).
  int boot_restored() const { return boot_restored_; }
  const Status& boot_restore_status() const { return boot_restore_status_; }

  /// Queries admitted and not yet completed, engine-wide.
  int64_t queue_depth() const {
    return in_flight_total_.load(std::memory_order_relaxed);
  }

  /// Per-tenant serving + cache accounting (kInvalidArgument for an
  /// unknown tenant).
  StatusOr<TenantUsage> Usage(const std::string& tenant) const;

  /// Drains and stops the engine (idempotent). After Stop, Submit
  /// returns kUnavailable and final_metrics_json() carries the frozen
  /// snapshot.
  Status Stop();
  bool stopped() const { return stopping_.load(std::memory_order_acquire); }

  /// The metrics snapshot frozen by Stop (empty before shutdown).
  std::string final_metrics_json() const;
  /// A live metrics snapshot (ipdb-metrics-v1 JSON).
  static std::string MetricsJson();

  /// Per-tenant rolling telemetry + SLO burn-rate report
  /// (ipdb-stats-v1 JSON; the daemon's STATS command).
  std::string StatsJson() const;

  /// The finished (or in-flight) span tree for a sampled request
  /// (ipdb-trace-tree-v1 JSON; the daemon's TRACE command).
  /// kInvalidArgument when the id is unknown — never sampled, or
  /// evicted from the bounded store.
  StatusOr<std::string> TraceJson(uint64_t trace_id) const;

  const AdmissionController& admission() const { return admission_; }

 private:
  struct TenantState {
    TenantConfig config;
    kc::CacheOwner owner = 0;
    std::atomic<int64_t> in_flight{0};
    std::atomic<int64_t> admitted{0};
    std::atomic<int64_t> degraded{0};
    std::atomic<int64_t> shed{0};
    std::atomic<int64_t> completed{0};
    std::atomic<int64_t> errors{0};
    /// Interned tenant name for the serve.*{tenant=...} families.
    obs::LabelId label = 0;
    /// This tenant's rolling windows (owned by stats_).
    obs::TenantSeries* series = nullptr;
    /// Head-based sampling: every sample_period-th request is retained
    /// in the TraceStore (0 = never).
    uint64_t sample_period = 0;
    std::atomic<uint64_t> sample_counter{0};

    bool SampleTrace() {
      if (sample_period == 0) return false;
      return sample_counter.fetch_add(1, std::memory_order_relaxed) %
                 sample_period ==
             0;
    }
  };

  /// Shared body of Submit / QueryPrepared.
  StatusOr<std::shared_ptr<PendingQuery>> SubmitInternal(
      const std::string& tenant, const std::string& instance,
      const std::string& query, bool prepared);

  /// The per-query worker task (runs on the pool). The request's
  /// TraceContext arrives via the pool's context propagation;
  /// `submitted_ns` (request entry) anchors the synthesized
  /// serve.request root span, `admitted_ns` the budget deadline and the
  /// serve.queue wait span.
  void Execute(TenantState* tenant,
               std::shared_ptr<const pdb::TiPdb<double>> instance,
               logic::Formula sentence, const std::string& prepared_key,
               bool degraded, int64_t submitted_ns, int64_t admitted_ns,
               std::shared_ptr<PendingQuery> pending);

  /// Returns (creating on first use) the shared prepared handle.
  StatusOr<std::shared_ptr<pqe::PreparedQuery>> PreparedHandle(
      const std::string& key,
      const std::shared_ptr<const pdb::TiPdb<double>>& instance,
      const logic::Formula& sentence);

  /// Loads every instance under the durability root; returns the count
  /// and records the first per-instance failure (boot continues).
  void RestoreOnBoot();

  EngineOptions options_;
  std::unique_ptr<durability::Manager> durability_;
  int boot_restored_ = 0;
  Status boot_restore_status_;
  std::unique_ptr<ThreadPool> pool_;
  AdmissionController admission_;
  CancelToken cancel_;
  /// Per-tenant time-series + SLO state. Engine-owned (not global) so
  /// two engines in one process report independently.
  obs::ServiceStats stats_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
  std::map<std::string, std::shared_ptr<const pdb::TiPdb<double>>> instances_;
  std::unordered_map<std::string, std::shared_ptr<pqe::PreparedQuery>>
      prepared_;
  kc::CacheOwner next_owner_ = 1;

  std::atomic<int64_t> in_flight_total_{0};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;          // guarded by mu_ (Stop idempotence)
  std::string final_metrics_json_;  // guarded by mu_
};

}  // namespace server
}  // namespace ipdb

#endif  // IPDB_SERVER_ENGINE_H_
