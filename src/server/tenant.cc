#include "server/tenant.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <vector>

namespace ipdb {
namespace server {

namespace {

/// Splits on whitespace and semicolons, dropping empty pieces.
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ';') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

StatusOr<int64_t> ParseInt(const std::string& key, const std::string& value) {
  if (value.empty()) {
    return IPDB_STATUS(StatusCode::kInvalidArgument)
           << "tenant config: empty value for '" << key << "'";
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return IPDB_STATUS(StatusCode::kInvalidArgument)
           << "tenant config: '" << key << "' wants an integer, got '"
           << value << "'";
  }
  return static_cast<int64_t>(parsed);
}

StatusOr<double> ParseDouble(const std::string& key,
                             const std::string& value) {
  if (value.empty()) {
    return IPDB_STATUS(StatusCode::kInvalidArgument)
           << "tenant config: empty value for '" << key << "'";
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return IPDB_STATUS(StatusCode::kInvalidArgument)
           << "tenant config: '" << key << "' wants a number, got '" << value
           << "'";
  }
  return parsed;
}

StatusOr<bool> ParseBool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  return IPDB_STATUS(StatusCode::kInvalidArgument)
         << "tenant config: '" << key << "' wants 0/1/true/false, got '"
         << value << "'";
}

}  // namespace

StatusOr<TenantConfig> ParseTenantConfig(const std::string& text) {
  TenantConfig config;
  for (const std::string& token : Tokenize(text)) {
    const size_t equals = token.find('=');
    if (equals == std::string::npos || equals == 0) {
      return IPDB_STATUS(StatusCode::kInvalidArgument)
             << "tenant config: expected key=value, got '" << token << "'";
    }
    const std::string key = token.substr(0, equals);
    const std::string value = token.substr(equals + 1);
    if (key == "max_in_flight") {
      StatusOr<int64_t> parsed = ParseInt(key, value);
      if (!parsed.ok()) return parsed.status();
      config.max_in_flight = parsed.value();
    } else if (key == "budget_ms") {
      StatusOr<int64_t> parsed = ParseInt(key, value);
      if (!parsed.ok()) return parsed.status();
      config.budget_ms = parsed.value();
    } else if (key == "max_circuit_nodes") {
      StatusOr<int64_t> parsed = ParseInt(key, value);
      if (!parsed.ok()) return parsed.status();
      config.max_circuit_nodes = parsed.value();
    } else if (key == "max_samples") {
      StatusOr<int64_t> parsed = ParseInt(key, value);
      if (!parsed.ok()) return parsed.status();
      config.max_samples = parsed.value();
    } else if (key == "lifted") {
      StatusOr<bool> parsed = ParseBool(key, value);
      if (!parsed.ok()) return parsed.status();
      config.lifted = parsed.value();
    } else if (key == "fallback") {
      StatusOr<bool> parsed = ParseBool(key, value);
      if (!parsed.ok()) return parsed.status();
      config.fallback = parsed.value();
    } else if (key == "fallback_samples") {
      StatusOr<int64_t> parsed = ParseInt(key, value);
      if (!parsed.ok()) return parsed.status();
      config.fallback_samples = parsed.value();
    } else if (key == "fallback_confidence") {
      StatusOr<double> parsed = ParseDouble(key, value);
      if (!parsed.ok()) return parsed.status();
      config.fallback_confidence = parsed.value();
    } else if (key == "degraded_samples") {
      StatusOr<int64_t> parsed = ParseInt(key, value);
      if (!parsed.ok()) return parsed.status();
      config.degraded_samples = parsed.value();
    } else if (key == "cache_max_bytes") {
      StatusOr<int64_t> parsed = ParseInt(key, value);
      if (!parsed.ok()) return parsed.status();
      config.cache_max_bytes = parsed.value();
    } else if (key == "cache_max_entries") {
      StatusOr<int64_t> parsed = ParseInt(key, value);
      if (!parsed.ok()) return parsed.status();
      config.cache_max_entries = parsed.value();
    } else if (key == "trace_sample") {
      StatusOr<double> parsed = ParseDouble(key, value);
      if (!parsed.ok()) return parsed.status();
      config.trace_sample = parsed.value();
    } else if (key == "slo_p99_ms") {
      StatusOr<double> parsed = ParseDouble(key, value);
      if (!parsed.ok()) return parsed.status();
      config.slo_p99_ms = parsed.value();
    } else if (key == "slo_availability") {
      StatusOr<double> parsed = ParseDouble(key, value);
      if (!parsed.ok()) return parsed.status();
      config.slo_availability = parsed.value();
    } else if (key == "slo_burn_alert") {
      StatusOr<double> parsed = ParseDouble(key, value);
      if (!parsed.ok()) return parsed.status();
      config.slo_burn_alert = parsed.value();
    } else {
      return IPDB_STATUS(StatusCode::kInvalidArgument)
             << "tenant config: unknown key '" << key << "'";
    }
  }
  IPDB_RETURN_IF_ERROR(ValidateTenantConfig(config));
  return config;
}

Status ValidateTenantConfig(const TenantConfig& config) {
  if (config.max_in_flight < 1) {
    return InvalidArgumentError("tenant config: max_in_flight must be >= 1");
  }
  if (config.budget_ms < 0 || config.max_circuit_nodes < 0 ||
      config.max_samples < 0 || config.cache_max_bytes < 0 ||
      config.cache_max_entries < 0) {
    return InvalidArgumentError("tenant config: caps must be >= 0");
  }
  if (config.fallback_samples < 1 || config.degraded_samples < 1) {
    return InvalidArgumentError(
        "tenant config: sample counts must be >= 1");
  }
  if (!(config.fallback_confidence > 0.0 &&
        config.fallback_confidence < 1.0)) {
    return InvalidArgumentError(
        "tenant config: fallback_confidence must lie in (0, 1)");
  }
  if (!(config.trace_sample >= 0.0 && config.trace_sample <= 1.0)) {
    return InvalidArgumentError(
        "tenant config: trace_sample must lie in [0, 1]");
  }
  if (config.slo_p99_ms < 0.0) {
    return InvalidArgumentError("tenant config: slo_p99_ms must be >= 0");
  }
  if (!(config.slo_availability >= 0.0 && config.slo_availability < 1.0)) {
    return InvalidArgumentError(
        "tenant config: slo_availability must lie in [0, 1)");
  }
  if (config.slo_burn_alert <= 0.0) {
    return InvalidArgumentError(
        "tenant config: slo_burn_alert must be > 0");
  }
  return Status::Ok();
}

pqe::QueryOptions ToQueryOptions(
    const TenantConfig& config, ExecutionBudget* budget,
    ExecutionBudget::Clock::time_point deadline_start, bool degraded,
    const CancelToken* cancel) {
  *budget = ExecutionBudget{};
  if (config.budget_ms > 0) {
    budget->deadline =
        deadline_start + std::chrono::milliseconds(config.budget_ms);
  }
  budget->max_circuit_nodes = config.max_circuit_nodes;
  budget->max_samples = config.max_samples;
  budget->cancel = cancel;
  pqe::QueryOptions options;
  options.lifted = config.lifted;
  options.fallback = config.fallback;
  options.fallback_samples = config.fallback_samples;
  options.fallback_confidence = config.fallback_confidence;
  if (degraded) {
    // Sample-only rung: cap the compiler at one circuit node so the
    // exact rung trips immediately and the certified Monte Carlo
    // interval answers, at a reduced sample count. Exact answers can
    // still happen — via the (cheaper-than-sampling) lifted rung.
    options.fallback = true;
    budget->max_circuit_nodes = 1;
    options.fallback_samples =
        std::min(config.fallback_samples, config.degraded_samples);
  }
  options.budget = budget;
  return options;
}

}  // namespace server
}  // namespace ipdb
