#ifndef IPDB_SERVER_TENANT_H_
#define IPDB_SERVER_TENANT_H_

#include <cstdint>
#include <string>

#include "pqe/wmc.h"
#include "util/budget.h"
#include "util/status.h"

namespace ipdb {
namespace server {

/// Per-tenant serving policy: how much work one tenant may have in
/// flight, how long a single query may run, and how its queries map
/// onto the pqe::QueryOptions degradation ladder. A default-constructed
/// config is permissive (no deadline, library-default fallback) except
/// for the in-flight cap, which always exists — an unbounded queue is
/// how one tenant starves the rest.
struct TenantConfig {
  /// Queries admitted but not yet finished; admission sheds above this.
  int64_t max_in_flight = 64;

  /// Per-query wall-clock budget in milliseconds, measured from
  /// admission (queue wait counts — a serving deadline, not a compute
  /// deadline). 0 = no deadline.
  int64_t budget_ms = 0;
  /// Cap on compiled-circuit size per query (ExecutionBudget
  /// semantics); 0 = uncapped.
  int64_t max_circuit_nodes = 0;
  /// Cap on Monte Carlo samples per query; 0 = uncapped.
  int64_t max_samples = 0;

  /// QueryOptions pass-throughs (see pqe/wmc.h).
  bool lifted = true;
  bool fallback = true;
  int64_t fallback_samples = 100000;
  double fallback_confidence = 0.99;

  /// Sample count used when admission *degrades* this tenant's query to
  /// the sample-only rung (must be <= fallback_samples to mean
  /// anything).
  int64_t degraded_samples = 4096;

  /// Resident-footprint quota in the shared compiled-artifact cache
  /// (kc::CompiledQueryCache::SetOwnerLimits). 0 = uncapped.
  int64_t cache_max_bytes = 0;
  int64_t cache_max_entries = 0;

  /// Head-based trace sampling rate in [0, 1]: the fraction of this
  /// tenant's requests whose span trees are retained in the
  /// obs::TraceStore for the daemon's TRACE command. The decision is
  /// made once at admission (every Nth request for rate 1/N); Chrome
  /// trace export is unaffected.
  double trace_sample = 1.0;

  /// Declared SLOs, evaluated by the obs::ServiceStats burn-rate
  /// engine (fast 1m / slow 10m windows). 0 disables an objective.
  /// Latency objective: p99 of served requests <= slo_p99_ms (modelled
  /// as "at most 1% of requests slower than the threshold").
  double slo_p99_ms = 0.0;
  /// Availability objective: at least this fraction of submitted
  /// requests served without shed or error (e.g. 0.999).
  double slo_availability = 0.0;
  /// Burn-rate multiple that flips an objective to breaching.
  double slo_burn_alert = 1.0;
};

/// Parses "key=value key=value ..." (whitespace- and/or semicolon-
/// separated) into a TenantConfig. Unknown keys, non-numeric values,
/// out-of-range values (negative caps, confidence outside (0, 1)) all
/// return kInvalidArgument — a malformed tenant config must never
/// abort a serving process. Boolean keys accept 0/1/true/false.
///
/// Keys: max_in_flight, budget_ms, max_circuit_nodes, max_samples,
/// lifted, fallback, fallback_samples, fallback_confidence,
/// degraded_samples, cache_max_bytes, cache_max_entries, trace_sample,
/// slo_p99_ms, slo_availability, slo_burn_alert.
StatusOr<TenantConfig> ParseTenantConfig(const std::string& text);

/// Validates a config built in code (same rules as the parser).
Status ValidateTenantConfig(const TenantConfig& config);

/// Maps a config onto the pqe vocabulary for one query. `budget` is
/// caller-owned storage that must outlive the returned options (the
/// options hold a pointer into it); `deadline_start` anchors budget_ms.
/// `degraded` applies the admission controller's sample-only rung: the
/// compile rung is capped out (max_circuit_nodes = 1, so exact circuit
/// work trips immediately and certified sampling answers instead) and
/// the sample count drops to degraded_samples. The lifted rung stays
/// on in degraded mode — a safe-plan answer is cheaper than sampling.
pqe::QueryOptions ToQueryOptions(const TenantConfig& config,
                                 ExecutionBudget* budget,
                                 ExecutionBudget::Clock::time_point
                                     deadline_start,
                                 bool degraded,
                                 const CancelToken* cancel);

}  // namespace server
}  // namespace ipdb

#endif  // IPDB_SERVER_TENANT_H_
