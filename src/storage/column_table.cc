#include "storage/column_table.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace ipdb {
namespace storage {

namespace {

/// Rows are addressed by uint32_t inside the sorted run; the last value
/// is reserved as a sentinel-free ceiling.
constexpr int64_t kMaxRows = 0xfffffffell;

}  // namespace

ColumnTable::ColumnTable(int arity) {
  IPDB_CHECK_GE(arity, 0);
  columns_.resize(static_cast<size_t>(arity));
}

void ColumnTable::Reserve(int64_t rows) {
  IPDB_CHECK_GE(rows, 0);
  for (auto& column : columns_) column.reserve(static_cast<size_t>(rows));
  probs_.reserve(static_cast<size_t>(rows));
  sorted_.reserve(static_cast<size_t>(rows));
}

void ColumnTable::AppendRow(const uint32_t* ids, double prob) {
  IPDB_CHECK_LT(num_rows(), kMaxRows) << "column table overflow";
  for (size_t c = 0; c < columns_.size(); ++c) columns_[c].push_back(ids[c]);
  probs_.push_back(prob);
}

bool ColumnTable::RowLess(int64_t a, int64_t b) const {
  for (const auto& column : columns_) {
    const uint32_t va = column[static_cast<size_t>(a)];
    const uint32_t vb = column[static_cast<size_t>(b)];
    if (va != vb) return va < vb;
  }
  return false;
}

bool ColumnTable::RowEquals(int64_t a, const uint32_t* ids) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c][static_cast<size_t>(a)] != ids[c]) return false;
  }
  return true;
}

int ColumnTable::CompareRowPrefix(int64_t a, const uint32_t* prefix,
                                  int prefix_len) const {
  for (int c = 0; c < prefix_len; ++c) {
    const uint32_t va = columns_[static_cast<size_t>(c)][static_cast<size_t>(a)];
    if (va != prefix[c]) return va < prefix[c] ? -1 : 1;
  }
  return 0;
}

Status ColumnTable::FinishBuild(int64_t* duplicate_row) {
  sorted_.resize(static_cast<size_t>(num_rows()));
  std::iota(sorted_.begin(), sorted_.end(), 0u);
  std::sort(sorted_.begin(), sorted_.end(), [this](uint32_t a, uint32_t b) {
    if (RowLess(a, b)) return true;
    if (RowLess(b, a)) return false;
    // Stable tie-break by row index so rebuilds are deterministic.
    return a < b;
  });
  for (size_t k = 1; k < sorted_.size(); ++k) {
    const int64_t prev = sorted_[k - 1];
    const int64_t cur = sorted_[k];
    if (!RowLess(prev, cur) && !RowLess(cur, prev)) {
      if (duplicate_row != nullptr) *duplicate_row = cur;
      return IPDB_STATUS(StatusCode::kInvalidArgument)
             << "duplicate fact at rows " << prev << " and " << cur;
    }
  }
  return Status::Ok();
}

int64_t ColumnTable::FindRow(const uint32_t* ids) const {
  const auto [begin, end] = PrefixRange(ids, arity());
  if (begin == end) return -1;
  return static_cast<int64_t>(sorted_[static_cast<size_t>(begin)]);
}

std::pair<int64_t, int64_t> ColumnTable::PrefixRange(const uint32_t* prefix,
                                                     int prefix_len) const {
  IPDB_CHECK_LE(prefix_len, arity());
  int64_t lo = 0;
  int64_t hi = static_cast<int64_t>(sorted_.size());
  // Lower bound.
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (CompareRowPrefix(sorted_[static_cast<size_t>(mid)], prefix,
                         prefix_len) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const int64_t begin = lo;
  hi = static_cast<int64_t>(sorted_.size());
  // Upper bound.
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (CompareRowPrefix(sorted_[static_cast<size_t>(mid)], prefix,
                         prefix_len) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {begin, lo};
}

StatusOr<int64_t> ColumnTable::Insert(const uint32_t* ids, double prob) {
  if (FindRow(ids) >= 0) {
    return IPDB_STATUS(StatusCode::kInvalidArgument)
           << "insert of duplicate fact";
  }
  IPDB_CHECK_LT(num_rows(), kMaxRows) << "column table overflow";
  const int64_t row = num_rows();
  for (size_t c = 0; c < columns_.size(); ++c) columns_[c].push_back(ids[c]);
  probs_.push_back(prob);
  // Splice the new row into the sorted run at its lower bound.
  auto pos = std::lower_bound(
      sorted_.begin(), sorted_.end(), row, [this, ids](uint32_t a, int64_t) {
        return CompareRowPrefix(a, ids, arity()) < 0;
      });
  sorted_.insert(pos, static_cast<uint32_t>(row));
  return row;
}

void ColumnTable::EraseRow(int64_t row) {
  IPDB_CHECK_GE(row, 0);
  IPDB_CHECK_LT(row, num_rows());
  for (auto& column : columns_) {
    column.erase(column.begin() + static_cast<ptrdiff_t>(row));
  }
  probs_.erase(probs_.begin() + static_cast<ptrdiff_t>(row));
  // Drop the run entry for `row`; every index above it shifts down.
  auto out = sorted_.begin();
  for (uint32_t entry : sorted_) {
    if (static_cast<int64_t>(entry) == row) continue;
    *out++ = entry > static_cast<uint32_t>(row) ? entry - 1 : entry;
  }
  sorted_.pop_back();
  // Same renumbering for the exact side table.
  auto exact_out = exact_.begin();
  for (auto& entry : exact_) {
    if (static_cast<int64_t>(entry.first) == row) continue;
    if (entry.first > static_cast<uint32_t>(row)) --entry.first;
    *exact_out++ = std::move(entry);
  }
  exact_.erase(exact_out, exact_.end());
}

void ColumnTable::SetProbability(int64_t row, double prob) {
  IPDB_CHECK_GE(row, 0);
  IPDB_CHECK_LT(row, num_rows());
  probs_[static_cast<size_t>(row)] = prob;
}

void ColumnTable::SetExact(int64_t row, math::Rational value) {
  IPDB_CHECK_GE(row, 0);
  IPDB_CHECK_LT(row, num_rows());
  const uint32_t key = static_cast<uint32_t>(row);
  auto pos = std::lower_bound(
      exact_.begin(), exact_.end(), key,
      [](const auto& entry, uint32_t k) { return entry.first < k; });
  if (pos != exact_.end() && pos->first == key) {
    pos->second = std::move(value);
  } else {
    exact_.insert(pos, {key, std::move(value)});
  }
}

void ColumnTable::ClearExact(int64_t row) {
  const uint32_t key = static_cast<uint32_t>(row);
  auto pos = std::lower_bound(
      exact_.begin(), exact_.end(), key,
      [](const auto& entry, uint32_t k) { return entry.first < k; });
  if (pos != exact_.end() && pos->first == key) exact_.erase(pos);
}

const math::Rational* ColumnTable::ExactAt(int64_t row) const {
  const uint32_t key = static_cast<uint32_t>(row);
  auto pos = std::lower_bound(
      exact_.begin(), exact_.end(), key,
      [](const auto& entry, uint32_t k) { return entry.first < k; });
  if (pos != exact_.end() && pos->first == key) return &pos->second;
  return nullptr;
}

Status ColumnTable::RestoreRows(
    std::vector<std::vector<uint32_t>> columns, std::vector<double> probs,
    std::vector<uint32_t> sorted,
    std::vector<std::pair<uint32_t, math::Rational>> exact) {
  if (columns.size() != columns_.size()) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "restored table has " << columns.size() << " columns, schema says "
           << columns_.size();
  }
  const size_t n = probs.size();
  if (static_cast<int64_t>(n) > kMaxRows) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "restored table has " << n << " rows (cap " << kMaxRows << ")";
  }
  for (const auto& column : columns) {
    if (column.size() != n) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "restored column length " << column.size()
             << " disagrees with probability column length " << n;
    }
  }
  if (sorted.size() != n) {
    return IPDB_STATUS(StatusCode::kDataLoss)
           << "restored sorted run has " << sorted.size() << " entries for "
           << n << " rows";
  }
  // The run must be a permutation of [0, n) in lexicographic row order
  // with the build path's row-index tie-break; equal adjacent rows would
  // mean duplicate facts, which Finish/Insert never admit.
  const auto row_less = [&columns](uint32_t a, uint32_t b) {
    for (const auto& column : columns) {
      const uint32_t va = column[a];
      const uint32_t vb = column[b];
      if (va != vb) return va < vb;
    }
    return false;
  };
  std::vector<bool> seen(n, false);
  for (size_t k = 0; k < sorted.size(); ++k) {
    const uint32_t row = sorted[k];
    if (row >= n || seen[row]) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "restored sorted run is not a permutation at position " << k;
    }
    seen[row] = true;
    if (k > 0) {
      const uint32_t prev = sorted[k - 1];
      if (row_less(row, prev)) {
        return IPDB_STATUS(StatusCode::kDataLoss)
               << "restored sorted run out of order at position " << k;
      }
      if (!row_less(prev, row)) {
        if (prev >= row) {
          return IPDB_STATUS(StatusCode::kDataLoss)
                 << "restored table has duplicate rows " << prev << " and "
                 << row;
        }
      }
    }
  }
  for (size_t i = 0; i < exact.size(); ++i) {
    if (exact[i].first >= n) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "restored exact entry " << i << " names row " << exact[i].first
             << " of " << n;
    }
    if (i > 0 && exact[i - 1].first >= exact[i].first) {
      return IPDB_STATUS(StatusCode::kDataLoss)
             << "restored exact side table not strictly sorted at entry " << i;
    }
  }
  columns_ = std::move(columns);
  probs_ = std::move(probs);
  sorted_ = std::move(sorted);
  exact_ = std::move(exact);
  return Status::Ok();
}

void ColumnTable::ShrinkToFit() {
  for (auto& column : columns_) column.shrink_to_fit();
  probs_.shrink_to_fit();
  sorted_.shrink_to_fit();
  exact_.shrink_to_fit();
}

int64_t ColumnTable::ApproxBytes() const {
  int64_t bytes = 0;
  for (const auto& column : columns_) {
    bytes += static_cast<int64_t>(column.capacity() * sizeof(uint32_t));
  }
  bytes += static_cast<int64_t>(probs_.capacity() * sizeof(double));
  bytes += static_cast<int64_t>(sorted_.capacity() * sizeof(uint32_t));
  // The Rational payloads own heap BigInts; count the entry footprint
  // only — exactness is sparse by design.
  bytes += static_cast<int64_t>(exact_.capacity() *
                                sizeof(std::pair<uint32_t, math::Rational>));
  return bytes;
}

}  // namespace storage
}  // namespace ipdb
