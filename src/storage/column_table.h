#ifndef IPDB_STORAGE_COLUMN_TABLE_H_
#define IPDB_STORAGE_COLUMN_TABLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "math/rational.h"
#include "util/status.h"

namespace ipdb {
namespace storage {

/// Columnar storage for one relation: each argument position is a flat
/// `std::vector<uint32_t>` of dictionary ids, probabilities are a packed
/// `double` column, and exactness — needed only by the rational PDB
/// instantiations and by callers that demand exact marginals — lives in
/// a sparse side table keyed by row. A sorted permutation over the rows
/// (the "sorted run") provides binary-search point and prefix lookups
/// without disturbing row identity: row r keeps meaning "the r-th fact
/// appended", which is what lineage variables and probability vectors
/// index by.
///
/// Cost per fact: 4·arity bytes of ids + 8 bytes of probability +
/// 4 bytes of sorted-run entry — e.g. 24 bytes for a binary relation,
/// versus the hundreds of bytes and several pointer chases of the
/// object-per-tuple `std::vector<std::pair<rel::Fact, P>>` it replaces.
///
/// Build protocol: `AppendRow` n times (cheap, no ordering work), then
/// one `FinishBuild` (sort + duplicate detection). Afterwards the table
/// is *live*: `Insert`, `EraseRow` and `SetProbability` keep the sorted
/// run coherent. EraseRow renumbers the rows above the erased one —
/// callers that hand out row-based identities (TiStore) bump their
/// structure generation exactly because of this.
class ColumnTable {
 public:
  explicit ColumnTable(int arity);

  int arity() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return static_cast<int64_t>(probs_.size()); }

  /// Pre-sizes all columns for `rows` rows.
  void Reserve(int64_t rows);

  /// Appends one row (ids[0..arity)); no ordering maintenance — call
  /// FinishBuild before the first lookup.
  void AppendRow(const uint32_t* ids, double prob);

  /// Sorts the run and rejects duplicate rows. On a duplicate, fails
  /// with kInvalidArgument and reports one offending row index through
  /// `duplicate_row` (if non-null) so the caller can render the fact.
  Status FinishBuild(int64_t* duplicate_row = nullptr);

  /// Binary search for an exact row; -1 when absent.
  int64_t FindRow(const uint32_t* ids) const;

  /// Rows whose first `prefix_len` columns equal `prefix`, as the
  /// half-open range [begin, end) into the sorted run; enumerate the
  /// matching rows as sorted_row(k) for k in the range.
  std::pair<int64_t, int64_t> PrefixRange(const uint32_t* prefix,
                                          int prefix_len) const;

  /// The row at sorted-run position k.
  uint32_t sorted_row(int64_t k) const {
    return sorted_[static_cast<size_t>(k)];
  }

  /// Inserts a new row at index num_rows(); fails on duplicates.
  StatusOr<int64_t> Insert(const uint32_t* ids, double prob);

  /// Removes a row; every row index above it shifts down by one.
  void EraseRow(int64_t row);

  void SetProbability(int64_t row, double prob);

  /// Installs / clears / reads the exact-rational marginal of a row.
  void SetExact(int64_t row, math::Rational value);
  void ClearExact(int64_t row);
  /// Null when the row has no exact entry (its probability is the packed
  /// double).
  const math::Rational* ExactAt(int64_t row) const;
  int64_t num_exact() const { return static_cast<int64_t>(exact_.size()); }

  uint32_t id(int col, int64_t row) const {
    return columns_[static_cast<size_t>(col)][static_cast<size_t>(row)];
  }
  const std::vector<uint32_t>& column(int col) const {
    return columns_[static_cast<size_t>(col)];
  }
  double prob(int64_t row) const { return probs_[static_cast<size_t>(row)]; }
  const std::vector<double>& probs() const { return probs_; }
  /// The sorted permutation (row indices in lexicographic column order)
  /// and the sparse exact side table (sorted by row) — exposed whole for
  /// serialization, so a snapshot can persist them instead of re-sorting
  /// on restore.
  const std::vector<uint32_t>& sorted_run() const { return sorted_; }
  const std::vector<std::pair<uint32_t, math::Rational>>& exact_entries()
      const {
    return exact_;
  }

  /// Replaces the table's contents wholesale with deserialized state.
  /// Every invariant the build path establishes is re-validated here —
  /// column lengths agree, the sorted run is a strictly-increasing (in
  /// lexicographic row order) permutation, exact entries are sorted by
  /// row and in range — because the input comes from disk and must not
  /// be trusted. Returns kDataLoss on any violation, leaving the table
  /// unchanged.
  Status RestoreRows(std::vector<std::vector<uint32_t>> columns,
                     std::vector<double> probs, std::vector<uint32_t> sorted,
                     std::vector<std::pair<uint32_t, math::Rational>> exact);

  /// Releases over-allocation after a bulk build.
  void ShrinkToFit();

  int64_t ApproxBytes() const;

 private:
  /// Lexicographic row order over the id columns.
  bool RowLess(int64_t a, int64_t b) const;
  bool RowEquals(int64_t a, const uint32_t* ids) const;
  /// Three-way compare of row `a` against a key prefix.
  int CompareRowPrefix(int64_t a, const uint32_t* prefix,
                       int prefix_len) const;

  std::vector<std::vector<uint32_t>> columns_;
  std::vector<double> probs_;
  /// Row indices in lexicographic column order.
  std::vector<uint32_t> sorted_;
  /// Sparse exact marginals, sorted by row.
  std::vector<std::pair<uint32_t, math::Rational>> exact_;
};

}  // namespace storage
}  // namespace ipdb

#endif  // IPDB_STORAGE_COLUMN_TABLE_H_
