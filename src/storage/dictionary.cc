#include "storage/dictionary.h"

#include <functional>

#include "util/check.h"

namespace ipdb {
namespace storage {

namespace {

/// Mixes a 64-bit payload into a well-distributed hash (splitmix64
/// finalizer) — the open-addressed table has no bucket chains to absorb
/// clustering, so the hash has to do the work.
inline size_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<size_t>(x ^ (x >> 31));
}

}  // namespace

Dictionary::Dictionary() : buckets_(16, kNotFound) {}

size_t Dictionary::HashValue(const rel::Value& value) const {
  switch (value.kind()) {
    case rel::Value::Kind::kNull:
      return Mix(0);
    case rel::Value::Kind::kInt:
      return Mix(static_cast<uint64_t>(value.int_value()) ^ 0x1234567887654321ULL);
    case rel::Value::Kind::kSymbol:
      return Mix(std::hash<std::string>()(value.symbol()) ^ 0xabcdef0102030405ULL);
  }
  return 0;
}

size_t Dictionary::HashSlot(uint32_t id) const {
  const Slot& slot = slots_[id];
  switch (slot.kind) {
    case rel::Value::Kind::kNull:
      return Mix(0);
    case rel::Value::Kind::kInt:
      return Mix(static_cast<uint64_t>(slot.payload) ^ 0x1234567887654321ULL);
    case rel::Value::Kind::kSymbol:
      return Mix(std::hash<std::string>()(
                     symbols_[static_cast<size_t>(slot.payload)]) ^
                 0xabcdef0102030405ULL);
  }
  return 0;
}

bool Dictionary::SlotEquals(uint32_t id, const rel::Value& value) const {
  const Slot& slot = slots_[id];
  if (slot.kind != value.kind()) return false;
  switch (slot.kind) {
    case rel::Value::Kind::kNull:
      return true;
    case rel::Value::Kind::kInt:
      return slot.payload == value.int_value();
    case rel::Value::Kind::kSymbol:
      return symbols_[static_cast<size_t>(slot.payload)] == value.symbol();
  }
  return false;
}

void Dictionary::Rehash(size_t new_bucket_count) {
  buckets_.assign(new_bucket_count, kNotFound);
  const size_t mask = new_bucket_count - 1;
  for (uint32_t id = 0; id < slots_.size(); ++id) {
    size_t bucket = HashSlot(id) & mask;
    while (buckets_[bucket] != kNotFound) bucket = (bucket + 1) & mask;
    buckets_[bucket] = id;
  }
}

uint32_t Dictionary::Intern(const rel::Value& value) {
  const size_t mask = buckets_.size() - 1;
  size_t bucket = HashValue(value) & mask;
  while (buckets_[bucket] != kNotFound) {
    if (SlotEquals(buckets_[bucket], value)) return buckets_[bucket];
    bucket = (bucket + 1) & mask;
  }
  IPDB_CHECK_LT(slots_.size(), static_cast<size_t>(kNotFound))
      << "dictionary overflow: more than 2^32-1 distinct values";
  const uint32_t id = static_cast<uint32_t>(slots_.size());
  Slot slot;
  slot.kind = value.kind();
  if (value.is_symbol()) {
    slot.payload = static_cast<int64_t>(symbols_.size());
    symbols_.push_back(value.symbol());
  } else {
    slot.payload = value.is_int() ? value.int_value() : 0;
  }
  slots_.push_back(std::move(slot));
  buckets_[bucket] = id;
  // Keep the load factor at or below 1/2 so probe chains stay short.
  if (slots_.size() * 2 > buckets_.size()) Rehash(buckets_.size() * 2);
  return id;
}

uint32_t Dictionary::Find(const rel::Value& value) const {
  const size_t mask = buckets_.size() - 1;
  size_t bucket = HashValue(value) & mask;
  while (buckets_[bucket] != kNotFound) {
    if (SlotEquals(buckets_[bucket], value)) return buckets_[bucket];
    bucket = (bucket + 1) & mask;
  }
  return kNotFound;
}

rel::Value Dictionary::ValueAt(uint32_t id) const {
  IPDB_CHECK_LT(static_cast<size_t>(id), slots_.size());
  const Slot& slot = slots_[id];
  switch (slot.kind) {
    case rel::Value::Kind::kNull:
      return rel::Value::Null();
    case rel::Value::Kind::kInt:
      return rel::Value::Int(slot.payload);
    case rel::Value::Kind::kSymbol:
      return rel::Value::Symbol(symbols_[static_cast<size_t>(slot.payload)]);
  }
  return rel::Value::Null();
}

int64_t Dictionary::ApproxBytes() const {
  int64_t bytes = static_cast<int64_t>(slots_.capacity() * sizeof(Slot)) +
                  static_cast<int64_t>(buckets_.capacity() * sizeof(uint32_t));
  for (const std::string& s : symbols_) {
    bytes += static_cast<int64_t>(sizeof(std::string) + s.capacity());
  }
  return bytes;
}

}  // namespace storage
}  // namespace ipdb
