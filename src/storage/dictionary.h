#ifndef IPDB_STORAGE_DICTIONARY_H_
#define IPDB_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/value.h"

namespace ipdb {
namespace storage {

/// Interns `rel::Value` payloads to dense `uint32_t` ids, the encoding
/// that makes columnar fact storage possible: a fact's arguments become
/// a fixed-width row of ids, and value equality becomes integer
/// equality. Ids are assigned in interning order (0, 1, 2, …) and are
/// stable for the dictionary's lifetime — erasing is deliberately not
/// supported, so every column of every table sharing this dictionary
/// stays valid as new values arrive.
///
/// The representation is deliberately compact (the dictionary is part
/// of the ≤48 bytes/fact budget of the 10M-fact target): one 16-byte
/// slot per distinct value (kind + int payload or symbol-arena index)
/// plus an open-addressed id index at ≤50% load — no per-entry heap
/// nodes, no std::unordered_map buckets.
///
/// Not internally synchronized: concurrent readers are fine, writers
/// need external exclusion (the TiStore mutators that intern are
/// documented single-writer).
class Dictionary {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  Dictionary();

  /// The id of `value`, interning it if new. At most 2^32 − 1 distinct
  /// values are supported (checked).
  uint32_t Intern(const rel::Value& value);

  /// The id of `value`, or kNotFound — never interns. This is the probe
  /// used when resolving query constants: a constant outside the
  /// dictionary cannot match any stored fact.
  uint32_t Find(const rel::Value& value) const;

  /// Materializes the value behind an id; id must be < size().
  rel::Value ValueAt(uint32_t id) const;

  /// Number of distinct interned values.
  int64_t size() const { return static_cast<int64_t>(slots_.size()); }

  /// Estimated heap footprint (slots + index + symbol arena).
  int64_t ApproxBytes() const;

 private:
  /// One interned value: kNull/kInt keep the payload inline; kSymbol
  /// stores an index into the symbol arena.
  struct Slot {
    rel::Value::Kind kind;
    int64_t payload;
  };

  size_t HashValue(const rel::Value& value) const;
  size_t HashSlot(uint32_t id) const;
  bool SlotEquals(uint32_t id, const rel::Value& value) const;
  void Rehash(size_t new_bucket_count);

  std::vector<Slot> slots_;
  std::vector<std::string> symbols_;
  /// Open-addressed index: bucket -> id, kNotFound = empty. Size is a
  /// power of two, kept at least 2x the entry count.
  std::vector<uint32_t> buckets_;
};

}  // namespace storage
}  // namespace ipdb

#endif  // IPDB_STORAGE_DICTIONARY_H_
