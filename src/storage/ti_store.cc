#include "storage/ti_store.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ipdb {
namespace storage {

TiStore::Builder::Builder(rel::Schema schema)
    : store_(std::shared_ptr<TiStore>(new TiStore())) {
  store_->schema_ = std::move(schema);
  const int num_relations = store_->schema_.num_relations();
  store_->tables_.reserve(static_cast<size_t>(num_relations));
  for (rel::RelationId r = 0; r < num_relations; ++r) {
    store_->tables_.emplace_back(store_->schema_.arity(r));
  }
  store_->row_global_.resize(static_cast<size_t>(num_relations));
}

void TiStore::Builder::Reserve(int64_t n) {
  IPDB_CHECK(store_ != nullptr) << "Builder already finished";
  store_->fact_loc_.reserve(static_cast<size_t>(n));
}

void TiStore::Builder::Add(const rel::Fact& fact, double prob) {
  IPDB_CHECK(store_ != nullptr) << "Builder already finished";
  if (!deferred_error_.ok()) return;
  if (!fact.MatchesSchema(store_->schema_)) {
    deferred_error_ = InvalidArgumentError(
        "fact does not match the schema: " + fact.ToString(store_->schema_));
    return;
  }
  if (!(prob >= 0.0) || prob > 1.0 + 1e-12) {
    deferred_error_ =
        InvalidArgumentError("marginal probability outside [0, 1]");
    return;
  }
  const rel::RelationId r = fact.relation();
  ColumnTable& table = store_->tables_[static_cast<size_t>(r)];
  store_->InternArgs(fact, &scratch_ids_);
  const uint32_t row = static_cast<uint32_t>(table.num_rows());
  table.AppendRow(scratch_ids_.data(), std::min(prob, 1.0));
  store_->row_global_[static_cast<size_t>(r)].push_back(
      store_->num_facts());
  store_->fact_loc_.emplace_back(r, row);
}

void TiStore::Builder::AddExact(const rel::Fact& fact,
                                const math::Rational& prob) {
  IPDB_CHECK(store_ != nullptr) << "Builder already finished";
  if (!deferred_error_.ok()) return;
  if (prob.is_negative() || prob.ToDouble() > 1.0 + 1e-12) {
    deferred_error_ =
        InvalidArgumentError("marginal probability outside [0, 1]");
    return;
  }
  const int64_t before = store_->num_facts();
  Add(fact, std::min(prob.ToDouble(), 1.0));
  if (!deferred_error_.ok() || store_->num_facts() == before) return;
  const auto [r, row] = store_->fact_loc_.back();
  store_->tables_[static_cast<size_t>(r)].SetExact(row, prob);
}

StatusOr<std::shared_ptr<TiStore>> TiStore::Builder::Finish() {
  IPDB_CHECK(store_ != nullptr) << "Builder already finished";
  std::shared_ptr<TiStore> store = std::move(store_);
  if (!deferred_error_.ok()) return deferred_error_;
  for (rel::RelationId r = 0; r < store->schema_.num_relations(); ++r) {
    ColumnTable& table = store->tables_[static_cast<size_t>(r)];
    int64_t duplicate_row = -1;
    Status built = table.FinishBuild(&duplicate_row);
    if (!built.ok()) {
      if (duplicate_row >= 0) {
        const int64_t g = store->global_index(r, duplicate_row);
        return InvalidArgumentError("duplicate fact: " +
                                    store->FactAt(g).ToString(store->schema_));
      }
      return built;
    }
    table.ShrinkToFit();
    store->row_global_[static_cast<size_t>(r)].shrink_to_fit();
  }
  store->fact_loc_.shrink_to_fit();
  return store;
}

bool TiStore::InternArgs(const rel::Fact& fact, std::vector<uint32_t>* ids) {
  ids->clear();
  for (const rel::Value& v : fact.args()) ids->push_back(dict_.Intern(v));
  return true;
}

bool TiStore::ResolveArgs(const rel::Fact& fact,
                          std::vector<uint32_t>* ids) const {
  ids->clear();
  for (const rel::Value& v : fact.args()) {
    const uint32_t id = dict_.Find(v);
    if (id == Dictionary::kNotFound) return false;
    ids->push_back(id);
  }
  return true;
}

rel::Fact TiStore::FactAt(int64_t i) const {
  IPDB_CHECK_GE(i, 0);
  IPDB_CHECK_LT(i, num_facts());
  const auto [r, row] = fact_loc_[static_cast<size_t>(i)];
  const ColumnTable& table = tables_[static_cast<size_t>(r)];
  std::vector<rel::Value> args;
  args.reserve(static_cast<size_t>(table.arity()));
  for (int c = 0; c < table.arity(); ++c) {
    args.push_back(dict_.ValueAt(table.id(c, row)));
  }
  return rel::Fact(r, std::move(args));
}

double TiStore::ProbAt(int64_t i) const {
  const auto [r, row] = fact_loc_[static_cast<size_t>(i)];
  return tables_[static_cast<size_t>(r)].prob(row);
}

const math::Rational* TiStore::ExactAt(int64_t i) const {
  const auto [r, row] = fact_loc_[static_cast<size_t>(i)];
  return tables_[static_cast<size_t>(r)].ExactAt(row);
}

int64_t TiStore::FindFact(const rel::Fact& fact) const {
  if (!schema_.has_relation(fact.relation()) ||
      schema_.arity(fact.relation()) != fact.arity()) {
    return -1;
  }
  std::vector<uint32_t> ids;
  if (!ResolveArgs(fact, &ids)) return -1;
  const int64_t row =
      tables_[static_cast<size_t>(fact.relation())].FindRow(ids.data());
  if (row < 0) return -1;
  return global_index(fact.relation(), row);
}

double TiStore::Marginal(const rel::Fact& fact) const {
  const int64_t i = FindFact(fact);
  return i < 0 ? 0.0 : ProbAt(i);
}

std::vector<rel::Value> TiStore::SortedDomain() const {
  std::vector<rel::Value> domain;
  domain.reserve(static_cast<size_t>(dict_.size()));
  for (uint32_t id = 0; id < static_cast<uint32_t>(dict_.size()); ++id) {
    domain.push_back(dict_.ValueAt(id));
  }
  std::sort(domain.begin(), domain.end());
  return domain;
}

StatusOr<int64_t> TiStore::Insert(const rel::Fact& fact, double prob) {
  if (!fact.MatchesSchema(schema_)) {
    return InvalidArgumentError("fact does not match the schema: " +
                                fact.ToString(schema_));
  }
  if (!(prob >= 0.0) || prob > 1.0 + 1e-12) {
    return InvalidArgumentError("marginal probability outside [0, 1]");
  }
  std::vector<uint32_t> ids;
  InternArgs(fact, &ids);
  const rel::RelationId r = fact.relation();
  ColumnTable& table = tables_[static_cast<size_t>(r)];
  StatusOr<int64_t> row = table.Insert(ids.data(), std::min(prob, 1.0));
  if (!row.ok()) {
    return IPDB_STATUS_FORWARD(row.status())
           << "duplicate fact: " << fact.ToString(schema_);
  }
  const int64_t g = num_facts();
  row_global_[static_cast<size_t>(r)].push_back(g);
  fact_loc_.emplace_back(r, static_cast<uint32_t>(row.value()));
  BumpStructure();
  return g;
}

Status TiStore::Erase(const rel::Fact& fact) {
  const int64_t g = FindFact(fact);
  if (g < 0) {
    return InvalidArgumentError("fact not in the store: " +
                                fact.ToString(schema_));
  }
  const auto [r, row] = fact_loc_[static_cast<size_t>(g)];
  tables_[static_cast<size_t>(r)].EraseRow(row);
  // Rows of relation r above `row` shifted down; global indices above
  // `g` shift down. Renumber both maps in one pass each.
  std::vector<int64_t>& globals = row_global_[static_cast<size_t>(r)];
  globals.erase(globals.begin() + static_cast<ptrdiff_t>(row));
  fact_loc_.erase(fact_loc_.begin() + static_cast<ptrdiff_t>(g));
  for (auto& [rel_id, rel_row] : fact_loc_) {
    if (rel_id == r && rel_row > row) --rel_row;
  }
  for (std::vector<int64_t>& per_rel : row_global_) {
    for (int64_t& global : per_rel) {
      if (global > g) --global;
    }
  }
  BumpStructure();
  return Status::Ok();
}

Status TiStore::UpdateProbability(const rel::Fact& fact, double prob) {
  if (!(prob >= 0.0) || prob > 1.0 + 1e-12) {
    return InvalidArgumentError("marginal probability outside [0, 1]");
  }
  const int64_t g = FindFact(fact);
  if (g < 0) {
    return InvalidArgumentError("fact not in the store: " +
                                fact.ToString(schema_));
  }
  const auto [r, row] = fact_loc_[static_cast<size_t>(g)];
  ColumnTable& table = tables_[static_cast<size_t>(r)];
  table.SetProbability(row, std::min(prob, 1.0));
  table.ClearExact(row);
  probability_generation_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status TiStore::UpdateProbabilityExact(const rel::Fact& fact,
                                       const math::Rational& prob) {
  if (prob.is_negative() || prob.ToDouble() > 1.0 + 1e-12) {
    return InvalidArgumentError("marginal probability outside [0, 1]");
  }
  const int64_t g = FindFact(fact);
  if (g < 0) {
    return InvalidArgumentError("fact not in the store: " +
                                fact.ToString(schema_));
  }
  const auto [r, row] = fact_loc_[static_cast<size_t>(g)];
  ColumnTable& table = tables_[static_cast<size_t>(r)];
  table.SetProbability(row, std::min(prob.ToDouble(), 1.0));
  table.SetExact(row, prob);
  probability_generation_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

void TiStore::BumpStructure() {
  structure_generation_.fetch_add(1, std::memory_order_release);
  // Dependent compiled artifacts were fingerprinted from lineages over
  // the old fact set; hand them to the evictor outside the lock.
  std::vector<std::pair<uint64_t, uint64_t>> stale;
  std::function<void(uint64_t, uint64_t)> evictor;
  {
    std::lock_guard<std::mutex> lock(artifact_mutex_);
    stale.swap(dependent_artifacts_);
    evictor = artifact_evictor_;
  }
  if (evictor) {
    for (const auto& [hi, lo] : stale) evictor(hi, lo);
  }
}

void TiStore::RegisterDependentArtifact(uint64_t hi, uint64_t lo) const {
  std::lock_guard<std::mutex> lock(artifact_mutex_);
  for (const auto& [h, l] : dependent_artifacts_) {
    if (h == hi && l == lo) return;
  }
  dependent_artifacts_.emplace_back(hi, lo);
}

void TiStore::SetArtifactEvictor(
    std::function<void(uint64_t, uint64_t)> evictor) const {
  std::lock_guard<std::mutex> lock(artifact_mutex_);
  artifact_evictor_ = std::move(evictor);
}

int64_t TiStore::num_dependent_artifacts() const {
  std::lock_guard<std::mutex> lock(artifact_mutex_);
  return static_cast<int64_t>(dependent_artifacts_.size());
}

int64_t TiStore::ApproxBytes() const {
  int64_t bytes = dict_.ApproxBytes();
  for (const ColumnTable& table : tables_) bytes += table.ApproxBytes();
  bytes += static_cast<int64_t>(fact_loc_.capacity() *
                                sizeof(std::pair<rel::RelationId, uint32_t>));
  for (const std::vector<int64_t>& per_rel : row_global_) {
    bytes += static_cast<int64_t>(per_rel.capacity() * sizeof(int64_t));
  }
  return bytes;
}

}  // namespace storage
}  // namespace ipdb
