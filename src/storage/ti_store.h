#ifndef IPDB_STORAGE_TI_STORE_H_
#define IPDB_STORAGE_TI_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "math/rational.h"
#include "relational/fact.h"
#include "relational/schema.h"
#include "storage/column_table.h"
#include "storage/dictionary.h"
#include "util/status.h"

namespace ipdb {
namespace durability {
class SnapshotCodec;  // storage/../durability: snapshot (de)serialization
}  // namespace durability
namespace storage {

/// The columnar, dictionary-encoded representation of a finite
/// tuple-independent instance: one shared `Dictionary` interning every
/// argument value, one `ColumnTable` per relation, and a global fact
/// numbering (insertion order across relations) that lineage variables
/// and probability vectors index by — fact i lives at table
/// `fact_rel(i)`, row `fact_row(i)`.
///
/// Two generation counters expose mutation to dependents:
///
///  * `structure_generation()` bumps on Insert/Erase — the *fact set*
///    changed, so lineages grounded against this store (and the compiled
///    circuits fingerprinted from them) are stale. Every fingerprint
///    registered through `RegisterDependentArtifact` is handed to the
///    artifact evictor and the registry is cleared.
///  * `probability_generation()` bumps on UpdateProbability — the fact
///    set (hence every lineage fingerprint) is unchanged, so compiled
///    circuits stay valid and dependents only need to refresh marginals
///    and re-evaluate. This asymmetry is what makes incremental re-query
///    an order of magnitude cheaper than a cold recompile.
///
/// Thread model: concurrent readers are safe against each other; the
/// mutators are single-writer and must not race readers (the artifact
/// registry itself is internally locked, since registration happens from
/// query paths).
class TiStore {
 public:
  /// Accumulates facts and produces a validated store. Validation
  /// matches pdb::TiPdb::Create: facts must match the schema, marginals
  /// lie in [0, 1] (a 1e-12 tolerance above 1 is forgiven and clamped),
  /// and facts are pairwise distinct — duplicates are detected by the
  /// per-relation sort in Finish, not by a per-fact hash probe.
  class Builder {
   public:
    explicit Builder(rel::Schema schema);

    /// Pre-sizes the global index for `n` facts.
    void Reserve(int64_t n);

    /// Appends a fact with a double marginal. Errors (schema mismatch,
    /// out-of-range marginal) are recorded and reported by Finish, so
    /// bulk loads don't pay a Status check per fact.
    void Add(const rel::Fact& fact, double prob);

    /// Appends a fact with an exact marginal: the packed double column
    /// receives the approximation, the exact value goes to the side
    /// table.
    void AddExact(const rel::Fact& fact, const math::Rational& prob);

    /// Validates and freezes the store.
    StatusOr<std::shared_ptr<TiStore>> Finish();

   private:
    std::shared_ptr<TiStore> store_;
    Status deferred_error_;
    std::vector<uint32_t> scratch_ids_;
  };

  const rel::Schema& schema() const { return schema_; }
  const Dictionary& dictionary() const { return dict_; }
  int64_t num_facts() const { return static_cast<int64_t>(fact_loc_.size()); }

  const ColumnTable& table(rel::RelationId relation) const {
    return tables_[static_cast<size_t>(relation)];
  }

  rel::RelationId fact_rel(int64_t i) const {
    return fact_loc_[static_cast<size_t>(i)].first;
  }
  int64_t fact_row(int64_t i) const {
    return static_cast<int64_t>(fact_loc_[static_cast<size_t>(i)].second);
  }
  /// The global index of row `row` of `relation`'s table.
  int64_t global_index(rel::RelationId relation, int64_t row) const {
    return row_global_[static_cast<size_t>(relation)][static_cast<size_t>(row)];
  }

  /// Materializes fact i (allocates a rel::Fact — a compatibility
  /// accessor, not a scan primitive).
  rel::Fact FactAt(int64_t i) const;
  double ProbAt(int64_t i) const;
  /// Exact marginal of fact i, or null when only the double is stored.
  const math::Rational* ExactAt(int64_t i) const;

  /// Global index of a fact, or -1. O(arity · log n): dictionary probes
  /// plus one binary search.
  int64_t FindFact(const rel::Fact& fact) const;
  /// Marginal of a fact (0 for facts outside the store).
  double Marginal(const rel::Fact& fact) const;

  /// Every distinct argument value in the store, in rel::Value order —
  /// the active domain, precomputed for grounding.
  std::vector<rel::Value> SortedDomain() const;

  // --- Live mutators (single-writer) -------------------------------

  /// Adds a fact at global index num_facts(). Structural: bumps the
  /// structure generation and evicts dependent artifacts.
  StatusOr<int64_t> Insert(const rel::Fact& fact, double prob);

  /// Removes a fact; global indices above it shift down by one (O(n)).
  /// Structural: bumps the structure generation and evicts dependents.
  Status Erase(const rel::Fact& fact);

  /// Replaces a fact's marginal (clearing any exact entry). Bumps only
  /// the probability generation — lineage fingerprints and compiled
  /// circuits remain valid.
  Status UpdateProbability(const rel::Fact& fact, double prob);
  /// Exact variant: stores the double approximation plus the exact
  /// side-table entry.
  Status UpdateProbabilityExact(const rel::Fact& fact,
                                const math::Rational& prob);

  uint64_t structure_generation() const {
    return structure_generation_.load(std::memory_order_acquire);
  }
  uint64_t probability_generation() const {
    return probability_generation_.load(std::memory_order_acquire);
  }

  // --- Dependent-artifact registry ---------------------------------

  /// Records a compiled artifact's 128-bit lineage fingerprint as
  /// depending on this store's *structure*. Const (and locked): query
  /// paths register while holding only a const store.
  void RegisterDependentArtifact(uint64_t hi, uint64_t lo) const;

  /// Installs the callback invoked (outside the registry lock) with each
  /// registered fingerprint when a structural mutation lands. Typically
  /// wired to kc::CompiledQueryCache::EraseFingerprint by the pqe layer,
  /// keeping this storage layer free of a kc dependency.
  void SetArtifactEvictor(
      std::function<void(uint64_t, uint64_t)> evictor) const;

  /// Registered fingerprints not yet evicted (for tests/introspection).
  int64_t num_dependent_artifacts() const;

  /// Estimated heap footprint: dictionary + tables + global index. The
  /// ≤48 bytes/fact budget of the 10M-fact target is measured on this.
  int64_t ApproxBytes() const;

 private:
  friend class Builder;
  /// The snapshot codec rebuilds a store directly from deserialized
  /// columns (same global numbering, hence bit-identical lineage
  /// fingerprints) without re-running the Builder validation path.
  friend class ::ipdb::durability::SnapshotCodec;

  TiStore() = default;

  /// Interns `fact`'s args into scratch; returns false on arity mismatch.
  bool InternArgs(const rel::Fact& fact, std::vector<uint32_t>* ids);
  /// Read-only variant: resolves args without interning; false when any
  /// value is unknown to the dictionary (the fact cannot be stored).
  bool ResolveArgs(const rel::Fact& fact, std::vector<uint32_t>* ids) const;

  void BumpStructure();

  rel::Schema schema_;
  Dictionary dict_;
  std::vector<ColumnTable> tables_;  // indexed by RelationId
  /// Global fact index -> (relation, row).
  std::vector<std::pair<rel::RelationId, uint32_t>> fact_loc_;
  /// Per relation: row -> global fact index.
  std::vector<std::vector<int64_t>> row_global_;

  std::atomic<uint64_t> structure_generation_{0};
  std::atomic<uint64_t> probability_generation_{0};

  mutable std::mutex artifact_mutex_;
  mutable std::vector<std::pair<uint64_t, uint64_t>> dependent_artifacts_;
  mutable std::function<void(uint64_t, uint64_t)> artifact_evictor_;
};

}  // namespace storage
}  // namespace ipdb

#endif  // IPDB_STORAGE_TI_STORE_H_
