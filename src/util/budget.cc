#include "util/budget.h"

#include <string>

namespace ipdb {

Status ExecutionBudget::CheckTime(const char* what) const {
  if (cancel != nullptr && cancel->cancelled()) {
    return CancelledError(std::string(what) + " cancelled");
  }
  if (has_deadline() && Clock::now() >= deadline) {
    return DeadlineExceededError(std::string(what) +
                                 " exceeded the wall-clock deadline");
  }
  return Status::Ok();
}

BudgetMeter::BudgetMeter(const ExecutionBudget* budget, int64_t unit_cap,
                         const char* resource, int64_t poll_stride)
    : budget_(budget != nullptr && budget->unlimited() ? nullptr : budget),
      unit_cap_(unit_cap),
      resource_(resource),
      poll_stride_(poll_stride < 1 ? 1 : poll_stride) {}

}  // namespace ipdb
