#ifndef IPDB_UTIL_BUDGET_H_
#define IPDB_UTIL_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.h"

namespace ipdb {

/// Cooperative cancellation: the owner calls `Cancel()`, workers poll
/// `cancelled()` (one relaxed atomic load) at amortized checkpoints and
/// unwind with StatusCode::kCancelled. A token can be shared by any
/// number of concurrent computations and is reusable after `Reset()`.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  void Reset() { cancelled_.store(false, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resource limits for one query-pipeline computation. Exact inference
/// over lineages is worst-case exponential (d-DNNF compilation) and
/// exact weights grow without bound (Rational limbs), so a serving
/// system needs a vocabulary for "stop here and degrade" — this struct
/// is that vocabulary. A default-constructed budget is unlimited; every
/// cap uses 0 to mean "no limit".
///
/// Semantics of each field:
///  * `deadline` — steady-clock instant after which governed loops
///    return kDeadlineExceeded. Polled amortized (see BudgetMeter), so
///    overshoot is bounded by one poll stride of work, not one node.
///  * `max_circuit_nodes` — cap on d-DNNF circuit size during
///    kc::CompileLineage; exceeding it returns kResourceExhausted.
///  * `max_recursion_depth` — cap on the compiler's/solver's recursion
///    depth (guards pathological Shannon chains and the C++ stack).
///  * `max_bigint_limbs` — cap on exact-arithmetic operand width in
///    32-bit limbs (enforced by math::ScopedLimbCap inside the
///    multiply kernels; governed callers surface kResourceExhausted).
///  * `max_samples` — cap on Monte Carlo samples; the samplers clamp
///    their sample count to this and mark the estimate truncated.
///  * `cancel` — optional cooperative cancellation token, polled at the
///    same checkpoints as the deadline; triggers kCancelled.
struct ExecutionBudget {
  using Clock = std::chrono::steady_clock;

  Clock::time_point deadline = Clock::time_point::max();
  int64_t max_circuit_nodes = 0;
  int64_t max_recursion_depth = 0;
  int64_t max_bigint_limbs = 0;
  int64_t max_samples = 0;
  const CancelToken* cancel = nullptr;

  bool has_deadline() const { return deadline != Clock::time_point::max(); }

  bool unlimited() const {
    return !has_deadline() && max_circuit_nodes == 0 &&
           max_recursion_depth == 0 && max_bigint_limbs == 0 &&
           max_samples == 0 && cancel == nullptr;
  }

  /// A budget whose deadline is `timeout` from now (other caps unset).
  static ExecutionBudget WithTimeout(Clock::duration timeout) {
    ExecutionBudget budget;
    budget.deadline = Clock::now() + timeout;
    return budget;
  }

  /// Immediate deadline/cancellation check (no amortization): OK, or
  /// kDeadlineExceeded / kCancelled. `what` names the governed
  /// operation in the error message.
  Status CheckTime(const char* what) const;
};

/// True for the three codes a tripped ExecutionBudget produces — the
/// errors a degradation ladder treats as "try a cheaper strategy"
/// rather than "the query is broken".
inline bool IsBudgetError(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kCancelled;
}

/// Amortized budget enforcement for a hot loop. Construct one meter per
/// governed computation, then call `Charge(units)` as work proceeds:
///
///  * the unit cap (`unit_cap`, e.g. budget->max_circuit_nodes) is a
///    plain integer comparison on every call;
///  * the deadline and the cancel token are only polled every
///    `poll_stride` charged units, so the clock read stays off the hot
///    path (the observability overhead gate stays intact).
///
/// A null or unlimited budget makes `Charge` a single branch. Once a
/// meter reports an error it keeps reporting it (sticky), so callers
/// may keep charging while unwinding.
class BudgetMeter {
 public:
  /// `budget` may be null (unlimited). `unit_cap` is the cap to enforce
  /// on total charged units (0 = none) and `resource` names the capped
  /// resource in error messages.
  BudgetMeter(const ExecutionBudget* budget, int64_t unit_cap,
              const char* resource, int64_t poll_stride = 256);

  /// Charges `units` of work; returns non-OK when over budget.
  Status Charge(int64_t units = 1) {
    if (budget_ == nullptr) return Status::Ok();
    if (!error_.ok()) return error_;
    used_ += units;
    if (unit_cap_ > 0 && used_ > unit_cap_) {
      error_ = ResourceExhaustedError(std::string(resource_) + " cap of " +
                                      std::to_string(unit_cap_) +
                                      " exceeded");
      return error_;
    }
    if (used_ >= next_poll_) {
      next_poll_ = used_ + poll_stride_;
      error_ = budget_->CheckTime(resource_);
      return error_;
    }
    return Status::Ok();
  }

  /// Unamortized deadline/cancel check (e.g. at phase boundaries).
  Status CheckNow() {
    if (budget_ == nullptr) return Status::Ok();
    if (!error_.ok()) return error_;
    error_ = budget_->CheckTime(resource_);
    return error_;
  }

  int64_t used() const { return used_; }
  const Status& error() const { return error_; }

 private:
  const ExecutionBudget* budget_;
  int64_t unit_cap_;
  const char* resource_;
  int64_t poll_stride_;
  int64_t used_ = 0;
  int64_t next_poll_ = 0;
  Status error_;
};

}  // namespace ipdb

#endif  // IPDB_UTIL_BUDGET_H_
