#ifndef IPDB_UTIL_CHECK_H_
#define IPDB_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace ipdb {
namespace internal_check {

/// Accumulates the message of a failing IPDB_CHECK and aborts on
/// destruction. Not for direct use; see the IPDB_CHECK macros.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "IPDB_CHECK failed at " << file << ":" << line << ": "
            << condition << " ";
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Enables `Voidify() && stream` so the whole expression has type void and
/// can sit inside a ternary operator.
struct Voidify {
  template <typename T>
  void operator&&(const T&) const {}
};

}  // namespace internal_check
}  // namespace ipdb

/// Aborts with a message if `condition` is false. Additional context can be
/// streamed: `IPDB_CHECK(x > 0) << "x was " << x;`. Used for programming
/// errors (invariant violations), never for recoverable input errors.
#define IPDB_CHECK(condition)                                        \
  (condition)                                                        \
      ? (void)0                                                      \
      : ::ipdb::internal_check::Voidify() &&                         \
            ::ipdb::internal_check::CheckFailure(__FILE__, __LINE__, \
                                                 #condition)

#define IPDB_CHECK_EQ(a, b) IPDB_CHECK((a) == (b))
#define IPDB_CHECK_NE(a, b) IPDB_CHECK((a) != (b))
#define IPDB_CHECK_LT(a, b) IPDB_CHECK((a) < (b))
#define IPDB_CHECK_LE(a, b) IPDB_CHECK((a) <= (b))
#define IPDB_CHECK_GT(a, b) IPDB_CHECK((a) > (b))
#define IPDB_CHECK_GE(a, b) IPDB_CHECK((a) >= (b))

#endif  // IPDB_UTIL_CHECK_H_
