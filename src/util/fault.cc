#include "util/fault.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/check.h"

namespace ipdb {
namespace fault {

namespace {

/// The central site table. Every IPDB_FAULT_POINT / IPDB_FAULT_FIRED in
/// the library must name an entry here — the CI fault leg iterates this
/// list and drives each site to an error, and ShouldFail aborts on a
/// name that is missing (a typo'd site would otherwise test nothing).
/// Keep sorted.
const char* const kSites[] = {
    "dur.rename",             // durability: atomic snapshot rename
    "dur.snapshot.write",     // durability: snapshot temp-file write
    "dur.wal.append",         // durability: WAL record append
    "dur.wal.replay",         // durability: WAL replay on recovery
    "kc.cache.insert",        // artifact cache: before inserting a miss
    "kc.cache.lookup",        // artifact cache: probe entry
    "kc.compile.node_alloc",  // d-DNNF compiler: gate compilation
    "kc.compile.shannon",     // d-DNNF compiler: Shannon expansion
    "kc.evaluate.exact",      // exact circuit evaluation entry
    "pqe.ground",             // sentence grounding entry
    "pqe.lifted.evaluate",    // lifted safe-plan evaluation entry
    "pqe.mc.shard",           // Monte Carlo: per-shard body
    "pqe.query.fallback",     // degradation ladder: MC fallback branch
    "pqe.wmc.solve",          // legacy WMC solver entry
    "server.shutdown",        // query service: drain/stop path
    "util.pool.task",         // thread pool: per-index task wrapper
};

struct SiteState {
  int64_t fire_at = 0;  // 1-based hit index that fails; 0 = never
  int64_t hits = 0;
  int64_t fired = 0;
};

std::mutex& Mutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

}  // namespace

struct FaultPlanImpl {
  std::unordered_map<std::string, SiteState> sites;
};

namespace {

/// Active plans, innermost last. The IPDB_FAULTS environment plan (when
/// present) sits at index 0 and is never popped. Leaked on exit.
std::vector<std::shared_ptr<FaultPlanImpl>>& Stack() {
  static auto* stack = new std::vector<std::shared_ptr<FaultPlanImpl>>;
  return *stack;
}

/// Lock-free fast path: true iff any plan is installed.
std::atomic<bool> g_armed{false};

std::shared_ptr<FaultPlanImpl> ParseSpecs(
    const std::vector<FaultSpec>& specs) {
  auto plan = std::make_shared<FaultPlanImpl>();
  for (const FaultSpec& spec : specs) {
    IPDB_CHECK(IsKnownSite(spec.site))
        << "unknown fault site '" << spec.site
        << "' (see util/fault.cc kSites)";
    IPDB_CHECK_GE(spec.nth, 1) << "fault spec nth is 1-based";
    plan->sites[spec.site].fire_at = spec.nth;
  }
  return plan;
}

void LoadEnvPlanLocked() {
  const char* env = std::getenv("IPDB_FAULTS");
  if (env == nullptr || *env == '\0') return;
  std::vector<FaultSpec> specs;
  std::string text(env);
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    std::string entry = text.substr(start, end - start);
    const bool at_end = end == text.size();
    start = end + 1;
    if (!entry.empty()) {
      FaultSpec spec;
      size_t colon = entry.rfind(':');
      if (colon == std::string::npos) {
        spec.site = entry;
      } else {
        spec.site = entry.substr(0, colon);
        spec.nth = std::strtoll(entry.c_str() + colon + 1, nullptr, 10);
        if (spec.nth < 1) spec.nth = 1;
      }
      specs.push_back(std::move(spec));
    }
    if (at_end) break;
  }
  if (specs.empty()) return;
  Stack().insert(Stack().begin(), ParseSpecs(specs));
  g_armed.store(true, std::memory_order_release);
}

void EnsureEnvPlanLoaded() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::lock_guard<std::mutex> lock(Mutex());
    LoadEnvPlanLocked();
  });
}

}  // namespace

bool CompiledIn() {
#if defined(IPDB_FAULT_INJECTION)
  return true;
#else
  return false;
#endif
}

const std::vector<std::string>& KnownSites() {
  static const auto* sites = new std::vector<std::string>(
      std::begin(kSites), std::end(kSites));
  return *sites;
}

const std::vector<std::string>& RegisteredSites() { return KnownSites(); }

bool IsKnownSite(const std::string& site) {
  const std::vector<std::string>& sites = KnownSites();
  return std::binary_search(sites.begin(), sites.end(), site);
}

bool ShouldFail(const char* site) {
  EnsureEnvPlanLoaded();
  if (!g_armed.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(Mutex());
  IPDB_CHECK(IsKnownSite(site))
      << "unregistered fault site '" << site << "'";
  bool fail = false;
  for (const std::shared_ptr<FaultPlanImpl>& plan : Stack()) {
    auto it = plan->sites.find(site);
    if (it == plan->sites.end()) continue;
    SiteState& state = it->second;
    ++state.hits;
    if (state.fire_at != 0 && state.hits == state.fire_at) {
      ++state.fired;
      fail = true;
    }
  }
  return fail;
}

Status InjectedFault(const char* site) {
  return InternalError(std::string("injected fault at ") + site);
}

int64_t HitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  int64_t hits = 0;
  for (const std::shared_ptr<FaultPlanImpl>& plan : Stack()) {
    auto it = plan->sites.find(site);
    if (it != plan->sites.end()) hits += it->second.hits;
  }
  return hits;
}

ScopedFaultPlan::ScopedFaultPlan(std::vector<FaultSpec> specs) {
  EnsureEnvPlanLoaded();
  plan_ = ParseSpecs(specs);
  std::lock_guard<std::mutex> lock(Mutex());
  Stack().push_back(plan_);
  g_armed.store(true, std::memory_order_release);
}

ScopedFaultPlan::~ScopedFaultPlan() {
  std::lock_guard<std::mutex> lock(Mutex());
  std::vector<std::shared_ptr<FaultPlanImpl>>& stack = Stack();
  stack.erase(std::remove(stack.begin(), stack.end(), plan_), stack.end());
  if (stack.empty()) g_armed.store(false, std::memory_order_release);
}

int64_t ScopedFaultPlan::triggered(const std::string& site) const {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = plan_->sites.find(site);
  return it == plan_->sites.end() ? 0 : it->second.fired;
}

}  // namespace fault
}  // namespace ipdb
