#ifndef IPDB_UTIL_FAULT_H_
#define IPDB_UTIL_FAULT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace ipdb {
namespace fault {

/// Deterministic fault injection for the query pipeline.
///
/// Error paths are the least-travelled code in a serving system, so they
/// are exercised on purpose: the library's fallible functions declare
/// *fault points* — named sites where an injected error Status can be
/// made to surface — and the CI fault leg arms every site in turn under
/// ASan, proving each failure unwinds cleanly (clean Status, no abort,
/// no leak).
///
/// Usage at a site (inside a function returning Status or StatusOr<T>):
///
///   Status DoWork() {
///     IPDB_FAULT_POINT("kc.cache.insert");
///     ...
///   }
///
/// or, where control flow cannot early-return directly:
///
///   if (IPDB_FAULT_FIRED("kc.compile.node_alloc")) {
///     error_ = fault::InjectedFault("kc.compile.node_alloc");
///   }
///
/// Sites are compiled out entirely unless the build defines
/// IPDB_FAULT_INJECTION (CMake -DIPDB_FAULT_INJECTION=ON; CI only), so
/// production binaries pay nothing. With injection compiled in, sites
/// are still inert until a plan arms them:
///
///  * env var IPDB_FAULTS="site:nth[,site:nth...]" — site fires on
///    exactly its nth dynamic hit process-wide (nth >= 1), or
///  * a test-scoped ScopedFaultPlan, active for its lifetime. Plans
///    stack additively: every installed plan counts hits independently
///    and a site fails when any plan says it is due.
///
/// Every site name must be registered in the central site table
/// (KnownSites() / fault.cc); this is what lets the CI leg enumerate and
/// drive them all, and it catches typos at test time.

/// One armed site: fire on exactly the `nth` dynamic hit (1-based).
struct FaultSpec {
  std::string site;
  int64_t nth = 1;
};

/// True when the build compiled fault points in (IPDB_FAULT_INJECTION).
bool CompiledIn();

/// All site names declared in the library (sorted, duplicate-free).
/// Available regardless of whether injection is compiled in.
const std::vector<std::string>& KnownSites();

/// Alias of KnownSites() under the name tooling expects: the registered
/// fault-site table that coverage audits (tests/fault_test, the ci.sh
/// ASan fault leg) enumerate to prove every site is still reachable.
const std::vector<std::string>& RegisteredSites();

/// True when `site` appears in KnownSites().
bool IsKnownSite(const std::string& site);

/// Hook behind IPDB_FAULT_FIRED / IPDB_FAULT_POINT: counts the hit and
/// reports whether the active plan says this hit should fail.
/// Thread-safe; false whenever no plan arms the site.
bool ShouldFail(const char* site);

/// The Status an armed site surfaces: kInternal with a message
/// containing "injected fault" and the site name.
Status InjectedFault(const char* site);

/// Dynamic hits recorded for `site` since its plan was installed (for
/// tests asserting a site was actually reached).
int64_t HitCount(const std::string& site);

/// Installs `specs` as an active plan for this scope and removes it
/// (with its hit counts) on destruction. Unknown site names abort (a
/// typo would silently test nothing). Plans stack additively; concurrent
/// workers may hit armed sites (counters are internally synchronized),
/// but installation itself is not meant to race with in-flight queries.
struct FaultPlanImpl;

class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(std::vector<FaultSpec> specs);
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
  ~ScopedFaultPlan();

  /// Times the named site actually fired under this plan.
  int64_t triggered(const std::string& site) const;

 private:
  std::shared_ptr<FaultPlanImpl> plan_;
};

}  // namespace fault
}  // namespace ipdb

#if defined(IPDB_FAULT_INJECTION)

/// Declares a fault site; returns an injected error Status from the
/// enclosing function when the site is armed and due.
#define IPDB_FAULT_POINT(site)                   \
  do {                                           \
    if (::ipdb::fault::ShouldFail(site)) {       \
      return ::ipdb::fault::InjectedFault(site); \
    }                                            \
  } while (0)

/// Expression form for call sites that cannot early-return a Status
/// directly (e.g. setting a member error field).
#define IPDB_FAULT_FIRED(site) (::ipdb::fault::ShouldFail(site))

#else  // !IPDB_FAULT_INJECTION

#define IPDB_FAULT_POINT(site) \
  do {                         \
  } while (0)
#define IPDB_FAULT_FIRED(site) (false)

#endif  // IPDB_FAULT_INJECTION

#endif  // IPDB_UTIL_FAULT_H_
