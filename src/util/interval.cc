#include "util/interval.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace ipdb {

Interval::Interval(double lo, double hi) : lo_(lo), hi_(hi) {
  IPDB_CHECK(!(std::isnan(lo) || std::isnan(hi))) << "NaN interval bound";
  IPDB_CHECK_LE(lo, hi) << "inverted interval [" << lo << ", " << hi << "]";
}

Interval Interval::operator+(const Interval& other) const {
  return Interval(lo_ + other.lo_, hi_ + other.hi_);
}

Interval Interval::operator-(const Interval& other) const {
  return Interval(lo_ - other.hi_, hi_ - other.lo_);
}

Interval Interval::operator*(const Interval& other) const {
  // General sign-aware product; infinities propagate through std::max
  // (0 * inf is avoided by callers keeping operands finite or
  // non-negative).
  double candidates[4] = {lo_ * other.lo_, lo_ * other.hi_, hi_ * other.lo_,
                          hi_ * other.hi_};
  double lo = candidates[0];
  double hi = candidates[0];
  for (double c : candidates) {
    IPDB_CHECK(!std::isnan(c)) << "indeterminate interval product";
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  return Interval(lo, hi);
}

Interval Interval::ScaleNonNegative(double c) const {
  IPDB_CHECK_GE(c, 0.0);
  return Interval(lo_ * c, hi_ * c);
}

std::string Interval::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Interval& interval) {
  os << "[" << interval.lo() << ", ";
  if (interval.is_finite()) {
    os << interval.hi();
  } else {
    os << "inf";
  }
  os << "]";
  return os;
}

}  // namespace ipdb
