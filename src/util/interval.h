#ifndef IPDB_UTIL_INTERVAL_H_
#define IPDB_UTIL_INTERVAL_H_

#include <iosfwd>
#include <limits>
#include <string>

namespace ipdb {

/// A closed real interval [lo, hi] used to report certified enclosures of
/// quantities about infinite objects (series sums, moments, probabilities).
///
/// Arithmetic is *not* outward-rounded at the ULP level; enclosures are
/// certified at the level of the mathematical tail bounds that produce
/// them, with floating-point error assumed negligible relative to the
/// bound widths used in this library (documented in DESIGN.md).
/// `hi == kInfinity` expresses "possibly infinite / unbounded above".
class Interval {
 public:
  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

  /// The degenerate interval [x, x].
  static Interval Point(double x) { return Interval(x, x); }

  /// [lo, +inf): lower bound only.
  static Interval AtLeast(double lo) { return Interval(lo, kInfinity); }

  /// Constructs [lo, hi]; requires lo <= hi.
  Interval(double lo, double hi);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double width() const { return hi_ - lo_; }
  double midpoint() const { return (lo_ + hi_) / 2.0; }

  bool is_point() const { return lo_ == hi_; }
  bool is_finite() const { return hi_ < kInfinity; }

  /// True if x lies in [lo, hi].
  bool Contains(double x) const { return lo_ <= x && x <= hi_; }

  /// True iff every point of this interval is strictly below x
  /// (a certified comparison).
  bool CertainlyBelow(double x) const { return hi_ < x; }

  /// True iff every point of this interval is strictly above x.
  bool CertainlyAbove(double x) const { return lo_ > x; }

  Interval operator+(const Interval& other) const;
  Interval operator-(const Interval& other) const;
  Interval operator*(const Interval& other) const;

  /// Scales by a non-negative constant.
  Interval ScaleNonNegative(double c) const;

  std::string ToString() const;

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  double lo_;
  double hi_;
};

std::ostream& operator<<(std::ostream& os, const Interval& interval);

}  // namespace ipdb

#endif  // IPDB_UTIL_INTERVAL_H_
