#include "util/parallel.h"

#include <algorithm>
#include <atomic>

#include "obs/context.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/fault.h"

namespace ipdb {

namespace {

/// Shared state for one TryParallelFor batch: a lock-free "someone
/// failed, start draining" flag plus the lowest-index error seen among
/// indices that actually executed (lowest index so a deterministic fn
/// yields a deterministic error regardless of scheduling).
struct TryBatchState {
  std::atomic<bool> failed{false};
  std::mutex mu;
  Status first_error;
  int64_t first_error_index = -1;

  void Record(int64_t index, Status status) {
    std::lock_guard<std::mutex> lock(mu);
    if (first_error_index < 0 || index < first_error_index) {
      first_error_index = index;
      first_error = std::move(status);
    }
    failed.store(true, std::memory_order_release);
  }

  /// Wraps the Status-returning fn into the void task the pool runs.
  std::function<void(int64_t)> Wrap(
      const std::function<Status(int64_t)>& fn, const CancelToken* cancel) {
    return [this, &fn, cancel](int64_t i) {
      // Drain mode: after the first error the batch still claims every
      // remaining index (the pool's completion count needs them) but
      // skips the work.
      if (failed.load(std::memory_order_acquire)) return;
      if (cancel != nullptr && cancel->cancelled()) {
        Record(i, CancelledError("parallel batch cancelled"));
        return;
      }
      if (IPDB_FAULT_FIRED("util.pool.task")) {
        Record(i, fault::InjectedFault("util.pool.task"));
        return;
      }
      Status status = fn(i);
      if (!status.ok()) Record(i, std::move(status));
    };
  }

  Status Result(const CancelToken* cancel) {
    std::lock_guard<std::mutex> lock(mu);
    if (first_error_index >= 0) return first_error;
    if (cancel != nullptr && cancel->cancelled()) {
      return CancelledError("parallel batch cancelled");
    }
    return Status::Ok();
  }
};

}  // namespace

int HardwareThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// Per-batch state. Heap-allocated and shared so that a worker which
/// wakes up late (after the batch already completed and a new one was
/// posted) still claims against the *old* exhausted counter and retires
/// harmlessly instead of stealing indices from the new batch.
struct ThreadPool::Batch {
  std::atomic<int64_t> next{0};
  int64_t size = 0;
  const std::function<void(int64_t)>* fn = nullptr;
  int64_t completed = 0;  // guarded by the pool's mu_
  // The submitter's trace context at ParallelFor time; workers install
  // it for the duration of their claim loop so spans opened inside fn
  // attach to the submitting request's span tree.
  obs::TraceContext context;
};

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = HardwareThreadCount();
  // The calling thread participates, so spawn threads - 1 workers.
  int workers = std::max(0, threads - 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    std::function<void()> task;
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || epoch_ != seen_epoch || !tasks_.empty();
      });
      if (!tasks_.empty()) {
        // Posted tasks take priority over batch participation and are
        // drained even while stopping: a task accepted by Post must run.
        task = std::move(tasks_.front());
        tasks_.pop_front();
        ++running_tasks_;
      } else if (stop_) {
        return;
      } else {
        seen_epoch = epoch_;
        batch = current_;
      }
    }
    if (task) {
      task();
      std::lock_guard<std::mutex> lock(mu_);
      --running_tasks_;
      if (tasks_.empty() && running_tasks_ == 0) tasks_cv_.notify_all();
    } else if (batch != nullptr) {
      RunBatch(batch.get());
    }
  }
}

void ThreadPool::Post(std::function<void()> task) {
  IPDB_OBS_COUNT("util.pool.tasks", 1);
  if (workers_.empty()) {
    // A one-thread pool has nobody to hand the task to; run it inline
    // so Post keeps its "the task will run" contract. The submitter's
    // trace context is already current, so no capture is needed.
    task();
    return;
  }
  const obs::TraceContext context = obs::CurrentTraceContext();
  if (context.active()) {
    // Carry the submitter's request context into the worker so spans
    // opened by the task land in the same span tree.
    task = [context, inner = std::move(task)]() {
      obs::ScopedTraceContext scope(context);
      inner();
    };
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
    IPDB_OBS_GAUGE_SET("util.pool.task_queue_depth",
                       static_cast<int64_t>(tasks_.size()) + running_tasks_);
  }
  work_cv_.notify_one();
}

int64_t ThreadPool::pending_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(tasks_.size()) + running_tasks_;
}

void ThreadPool::DrainTasks() {
  std::unique_lock<std::mutex> lock(mu_);
  tasks_cv_.wait(lock, [&] { return tasks_.empty() && running_tasks_ == 0; });
  IPDB_OBS_GAUGE_SET("util.pool.task_queue_depth", 0);
}

void ThreadPool::RunBatch(Batch* batch) {
  // Inactive contexts install as a no-op; the submitter re-installing
  // its own context is equally harmless (saved and restored around the
  // claim loop).
  obs::ScopedTraceContext scope(batch->context);
  int64_t done = 0;
  for (;;) {
    int64_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->size) break;
    (*batch->fn)(i);
    ++done;
  }
  if (done > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    batch->completed += done;
    if (batch->completed == batch->size) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  IPDB_OBS_COUNT("util.pool.batches", 1);
  IPDB_OBS_COUNT("util.pool.indices", n);
  if (workers_.empty() || n == 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::shared_ptr<Batch> batch = std::make_shared<Batch>();
  batch->size = n;
  batch->fn = &fn;
  batch->context = obs::CurrentTraceContext();
  {
    std::lock_guard<std::mutex> lock(mu_);
    IPDB_CHECK(current_ == nullptr)
        << "ThreadPool::ParallelFor is not reentrant";
    current_ = batch;
    ++epoch_;
  }
  // Queue depth at batch granularity: the whole batch is outstanding
  // while it runs, 0 when the pool is idle (per-index updates would put
  // an atomic write in the work-claiming hot loop).
  IPDB_OBS_GAUGE_SET("util.pool.queue_depth", n);
  work_cv_.notify_all();
  RunBatch(batch.get());
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch->completed == batch->size; });
    current_.reset();
  }
  IPDB_OBS_GAUGE_SET("util.pool.queue_depth", 0);
}

Status ThreadPool::TryParallelFor(int64_t n,
                                  const std::function<Status(int64_t)>& fn,
                                  const CancelToken* cancel) {
  if (n <= 0) return Status::Ok();
  TryBatchState state;
  std::function<void(int64_t)> task = state.Wrap(fn, cancel);
  ParallelFor(n, task);
  return state.Result(cancel);
}

void ParallelFor(int threads, int64_t n,
                 const std::function<void(int64_t)>& fn) {
  if (threads <= 0) threads = HardwareThreadCount();
  if (threads == 1 || n <= 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(static_cast<int>(std::min<int64_t>(threads, n)));
  pool.ParallelFor(n, fn);
}

Status TryParallelFor(int threads, int64_t n,
                      const std::function<Status(int64_t)>& fn,
                      const CancelToken* cancel) {
  if (n <= 0) return Status::Ok();
  if (threads <= 0) threads = HardwareThreadCount();
  if (threads == 1 || n <= 1) {
    for (int64_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        return CancelledError("parallel batch cancelled");
      }
      if (IPDB_FAULT_FIRED("util.pool.task")) {
        return fault::InjectedFault("util.pool.task");
      }
      IPDB_RETURN_IF_ERROR(fn(i));
    }
    return Status::Ok();
  }
  ThreadPool pool(static_cast<int>(std::min<int64_t>(threads, n)));
  return pool.TryParallelFor(n, fn, cancel);
}

}  // namespace ipdb
