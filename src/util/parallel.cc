#include "util/parallel.h"

#include <algorithm>
#include <atomic>

#include "obs/obs.h"
#include "util/check.h"

namespace ipdb {

int HardwareThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// Per-batch state. Heap-allocated and shared so that a worker which
/// wakes up late (after the batch already completed and a new one was
/// posted) still claims against the *old* exhausted counter and retires
/// harmlessly instead of stealing indices from the new batch.
struct ThreadPool::Batch {
  std::atomic<int64_t> next{0};
  int64_t size = 0;
  const std::function<void(int64_t)>* fn = nullptr;
  int64_t completed = 0;  // guarded by the pool's mu_
};

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = HardwareThreadCount();
  // The calling thread participates, so spawn threads - 1 workers.
  int workers = std::max(0, threads - 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      batch = current_;
    }
    if (batch != nullptr) RunBatch(batch.get());
  }
}

void ThreadPool::RunBatch(Batch* batch) {
  int64_t done = 0;
  for (;;) {
    int64_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->size) break;
    (*batch->fn)(i);
    ++done;
  }
  if (done > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    batch->completed += done;
    if (batch->completed == batch->size) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  IPDB_OBS_COUNT("util.pool.batches", 1);
  IPDB_OBS_COUNT("util.pool.indices", n);
  if (workers_.empty() || n == 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::shared_ptr<Batch> batch = std::make_shared<Batch>();
  batch->size = n;
  batch->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    IPDB_CHECK(current_ == nullptr)
        << "ThreadPool::ParallelFor is not reentrant";
    current_ = batch;
    ++epoch_;
  }
  // Queue depth at batch granularity: the whole batch is outstanding
  // while it runs, 0 when the pool is idle (per-index updates would put
  // an atomic write in the work-claiming hot loop).
  IPDB_OBS_GAUGE_SET("util.pool.queue_depth", n);
  work_cv_.notify_all();
  RunBatch(batch.get());
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch->completed == batch->size; });
    current_.reset();
  }
  IPDB_OBS_GAUGE_SET("util.pool.queue_depth", 0);
}

void ParallelFor(int threads, int64_t n,
                 const std::function<void(int64_t)>& fn) {
  if (threads <= 0) threads = HardwareThreadCount();
  if (threads == 1 || n <= 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(static_cast<int>(std::min<int64_t>(threads, n)));
  pool.ParallelFor(n, fn);
}

}  // namespace ipdb
