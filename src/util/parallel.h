#ifndef IPDB_UTIL_PARALLEL_H_
#define IPDB_UTIL_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/budget.h"
#include "util/status.h"

namespace ipdb {

/// Number of hardware threads (always >= 1; falls back to 1 when the
/// platform reports nothing).
int HardwareThreadCount();

/// A small fixed-size pool of worker threads executing index-range
/// batches. The pool exists so that the Monte Carlo hot paths
/// (pdb::Accumulate, pqe::EstimateQueryProbability) can fan work out
/// without paying thread creation per call; later sharding/batching
/// layers build on the same primitive.
///
/// Determinism: the pool schedules *which thread* runs which index
/// non-deterministically, so callers that need reproducible results must
/// make each index's work a pure function of the index (e.g. one RNG
/// substream per index, see Pcg32::Split) and combine per-index results
/// in index order. ParallelFor itself guarantees only that every index
/// in [0, n) runs exactly once and has completed when the call returns.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; `threads <= 0` means
  /// HardwareThreadCount(). The calling thread participates in
  /// ParallelFor batches, so the pool runs work on `threads` threads
  /// total.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Threads participating in a batch (workers plus the caller).
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n); blocks until all indices complete.
  /// Indices are claimed dynamically (an atomic counter), so fn must be
  /// safe to call concurrently from multiple threads. Not reentrant: do
  /// not call ParallelFor from inside fn or from two threads at once.
  ///
  /// The caller's obs::TraceContext is captured into the batch and
  /// installed on every participating thread for the duration of its
  /// claim loop, so spans opened inside fn join the submitting request's
  /// span tree.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// Error-propagating ParallelFor. Runs fn(i) for i in [0, n) until the
  /// first error: once any index returns non-OK (or `cancel` trips), the
  /// remaining unstarted indices are *drained* — claimed but not
  /// executed — so the batch still completes promptly and the pool is
  /// reusable afterwards. In-flight indices on other threads run to
  /// completion; fn is never interrupted mid-call.
  ///
  /// Returns OK when every index ran and succeeded; otherwise the error
  /// of the lowest-numbered failed index that actually executed (so a
  /// deterministic fn yields a deterministic error), or kCancelled when
  /// the token tripped before any index failed. `cancel` may be null.
  Status TryParallelFor(int64_t n, const std::function<Status(int64_t)>& fn,
                        const CancelToken* cancel = nullptr);

  /// Enqueues a one-off task for the worker threads and returns
  /// immediately. Tasks run concurrently with each other (and with
  /// ParallelFor batches) on whichever worker picks them up first, in
  /// FIFO claim order; they are the serving layer's unit of work (one
  /// posted task per admitted query). On a pool with no workers
  /// (`threads == 1`) the task runs inline before Post returns.
  ///
  /// Tasks posted before the destructor runs are drained, not dropped:
  /// the pool joins only after the queue is empty.
  ///
  /// When the posting thread carries an active obs::TraceContext it is
  /// captured into the task closure and restored around the task's
  /// execution in the worker (request-scoped tracing across the
  /// queue-hop).
  void Post(std::function<void()> task);

  /// Posted tasks not yet finished (queued plus running).
  int64_t pending_tasks() const;

  /// Blocks until every posted task has finished — including tasks
  /// posted by other threads while the wait is in progress. The serving
  /// layer's shutdown drain.
  void DrainTasks();

 private:
  struct Batch;

  void WorkerLoop();
  void RunBatch(Batch* batch);

  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::condition_variable tasks_cv_;
  uint64_t epoch_ = 0;               // bumped when a new batch is posted
  std::shared_ptr<Batch> current_;   // null when no batch is in flight
  std::deque<std::function<void()>> tasks_;  // posted, not yet claimed
  int64_t running_tasks_ = 0;        // claimed, not yet finished
  bool stop_ = false;
};

/// One-shot ParallelFor over a transient pool: runs fn(i) for i in [0, n)
/// on up to `threads` threads (including the caller). threads == 1 (or
/// n <= 1) degrades to a plain sequential loop with zero threading
/// overhead; threads <= 0 means HardwareThreadCount().
void ParallelFor(int threads, int64_t n,
                 const std::function<void(int64_t)>& fn);

/// One-shot TryParallelFor over a transient pool; same error/drain
/// semantics as ThreadPool::TryParallelFor. threads == 1 (or n <= 1)
/// degrades to a sequential loop that stops at the first error.
Status TryParallelFor(int threads, int64_t n,
                      const std::function<Status(int64_t)>& fn,
                      const CancelToken* cancel = nullptr);

}  // namespace ipdb

#endif  // IPDB_UTIL_PARALLEL_H_
