#include "util/random.h"

#include "util/check.h"

namespace ipdb {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  NextU32();
  state_ += seed;
  NextU32();
}

uint32_t Pcg32::NextU32() {
  uint64_t old_state = state_;
  state_ = old_state * 6364136223846793005ULL + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((old_state >> 18u) ^ old_state) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old_state >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Pcg32::NextU64() {
  uint64_t hi = NextU32();
  uint64_t lo = NextU32();
  return (hi << 32) | lo;
}

double Pcg32::NextDouble() {
  // 53 random bits scaled into [0, 1).
  uint64_t bits = NextU64() >> 11;
  return static_cast<double>(bits) * 0x1.0p-53;
}

bool Pcg32::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint32_t Pcg32::NextBounded(uint32_t bound) {
  IPDB_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method.
  uint64_t product = static_cast<uint64_t>(NextU32()) * bound;
  uint32_t low = static_cast<uint32_t>(product);
  if (low < bound) {
    uint32_t threshold = -bound % bound;
    while (low < threshold) {
      product = static_cast<uint64_t>(NextU32()) * bound;
      low = static_cast<uint32_t>(product);
    }
  }
  return static_cast<uint32_t>(product >> 32);
}

size_t Pcg32::NextDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    IPDB_CHECK_GE(w, 0.0);
    total += w;
  }
  IPDB_CHECK_GT(total, 0.0) << "all discrete weights are zero";
  double x = NextDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (x < cumulative) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace ipdb
