#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace ipdb {

namespace {

/// SplitMix64 finalizer (Steele, Lea, Flood 2014): a bijective mixer
/// that sends nearby inputs to well-separated outputs.
uint64_t SplitMix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Pcg32::Pcg32(uint64_t seed, uint64_t stream)
    : seed_(seed), stream_(stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  NextU32();
  state_ += seed;
  NextU32();
}

Pcg32 Pcg32::Split(uint64_t worker_index) const {
  // Children differ from the parent and from each other in both the PCG
  // stream selector (distinct `stream` => distinct inc => a different
  // orbit of the underlying LCG) and the starting state. The mixed
  // offset keeps consecutive worker indices far apart in state space;
  // `stream_ + worker_index + 1` keeps the streams pairwise distinct and
  // distinct from the parent's.
  uint64_t mixed = SplitMix64(worker_index);
  return Pcg32(seed_ ^ mixed, stream_ + worker_index + 1);
}

uint32_t Pcg32::NextU32() {
  uint64_t old_state = state_;
  state_ = old_state * 6364136223846793005ULL + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((old_state >> 18u) ^ old_state) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old_state >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Pcg32::NextU64() {
  uint64_t hi = NextU32();
  uint64_t lo = NextU32();
  return (hi << 32) | lo;
}

double Pcg32::NextDouble() {
  // 53 random bits scaled into [0, 1).
  uint64_t bits = NextU64() >> 11;
  return static_cast<double>(bits) * 0x1.0p-53;
}

bool Pcg32::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint32_t Pcg32::NextBounded(uint32_t bound) {
  IPDB_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method.
  uint64_t product = static_cast<uint64_t>(NextU32()) * bound;
  uint32_t low = static_cast<uint32_t>(product);
  if (low < bound) {
    uint32_t threshold = -bound % bound;
    while (low < threshold) {
      product = static_cast<uint64_t>(NextU32()) * bound;
      low = static_cast<uint32_t>(product);
    }
  }
  return static_cast<uint32_t>(product >> 32);
}

StatusOr<size_t> Pcg32::NextDiscrete(const std::vector<double>& weights) {
  if (weights.empty()) {
    return InvalidArgumentError("discrete draw needs at least one weight");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      return InvalidArgumentError(
          "discrete weights must be finite and non-negative");
    }
    total += w;
  }
  if (!(total > 0.0)) {
    return InvalidArgumentError("all discrete weights are zero");
  }
  double x = NextDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (x < cumulative) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace ipdb
