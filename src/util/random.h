#ifndef IPDB_UTIL_RANDOM_H_
#define IPDB_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace ipdb {

/// A PCG32 pseudo-random generator (O'Neill 2014, pcg32 variant
/// XSH-RR 64/32). Deterministic given a seed; suitable for reproducible
/// Monte Carlo verification of the paper's constructions. Not
/// cryptographic.
class Pcg32 {
 public:
  /// Seeds the generator. `seed` selects the starting state, `stream`
  /// selects one of 2^63 independent sequences.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Derives an independent child generator for the logical worker (or
  /// shard) `worker_index`: a deterministic function of this generator's
  /// *seeding* (seed, stream) — not of how many draws have been made —
  /// and of the index. Distinct indices select distinct PCG streams with
  /// decorrelated starting states, so parallel samplers can give each
  /// shard `base.Split(shard)` and get reproducible, independent draws
  /// regardless of which thread runs which shard.
  Pcg32 Split(uint64_t worker_index) const;

  /// Uniform 32-bit output.
  uint32_t NextU32();

  /// Uniform 64-bit output (two 32-bit draws).
  uint64_t NextU64();

  /// Uniformly distributed double in [0, 1) with 53 random bits.
  double NextDouble();

  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  uint32_t NextBounded(uint32_t bound);

  /// Draws an index according to the (not necessarily normalized)
  /// non-negative weights. Returns InvalidArgument if `weights` is
  /// empty, contains a negative or non-finite weight, or sums to zero;
  /// the generator state is only advanced when the draw succeeds.
  StatusOr<size_t> NextDiscrete(const std::vector<double>& weights);

 private:
  uint64_t state_;
  uint64_t inc_;
  // The seeding values, retained so Split() can derive substreams that
  // are independent of the parent's draw position.
  uint64_t seed_;
  uint64_t stream_;
};

}  // namespace ipdb

#endif  // IPDB_UTIL_RANDOM_H_
