#include "util/series.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace ipdb {

std::string SumAnalysis::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kConverged:
      os << "converged to " << enclosure;
      break;
    case Kind::kDiverged:
      os << "diverges (certified)";
      break;
    case Kind::kDivergedWitness:
      os << "diverges (witness: partial sum " << partial_sum << ")";
      break;
    case Kind::kInconclusive:
      os << "inconclusive (partial sum " << partial_sum << ")";
      break;
  }
  os << " after " << terms_used << " terms";
  return os.str();
}

SumAnalysis AnalyzeSum(const Series& series, const SumOptions& options) {
  IPDB_CHECK(series.term != nullptr) << "series has no term function";
  SumAnalysis result;
  double partial = 0.0;

  // Check divergence certificate up front (tail from 0).
  if (series.tail_lower_bound) {
    double lower = series.tail_lower_bound(0);
    if (std::isinf(lower)) {
      result.kind = SumAnalysis::Kind::kDiverged;
      result.enclosure = Interval::AtLeast(0.0);
      return result;
    }
  }

  int64_t i = 0;
  for (; i < options.max_terms; ++i) {
    double a = series.term(i);
    IPDB_CHECK_GE(a, 0.0) << "negative series term at index " << i;
    partial += a;

    if (series.tail_upper_bound) {
      double tail = series.tail_upper_bound(i + 1);
      if (std::isfinite(tail) && tail <= options.target_width) {
        result.kind = SumAnalysis::Kind::kConverged;
        result.enclosure = Interval(partial, partial + tail);
        result.partial_sum = partial;
        result.terms_used = i + 1;
        return result;
      }
    }
    if (partial > options.divergence_witness_threshold) {
      result.kind = SumAnalysis::Kind::kDivergedWitness;
      result.enclosure = Interval::AtLeast(partial);
      result.partial_sum = partial;
      result.terms_used = i + 1;
      return result;
    }
  }

  result.partial_sum = partial;
  result.terms_used = i;

  // Budget exhausted: report the best certificate we still have.
  if (series.tail_upper_bound) {
    double tail = series.tail_upper_bound(i);
    if (std::isfinite(tail)) {
      result.kind = SumAnalysis::Kind::kConverged;
      result.enclosure = Interval(partial, partial + tail);
      return result;
    }
  }
  if (series.tail_lower_bound) {
    double lower = series.tail_lower_bound(i);
    if (std::isinf(lower)) {
      result.kind = SumAnalysis::Kind::kDiverged;
      result.enclosure = Interval::AtLeast(partial);
      return result;
    }
  }
  result.kind = SumAnalysis::Kind::kInconclusive;
  result.enclosure = Interval::AtLeast(partial);
  return result;
}

double GeometricTailUpper(double c, double r, int64_t N) {
  IPDB_CHECK_GE(c, 0.0);
  IPDB_CHECK_GE(r, 0.0);
  IPDB_CHECK_LT(r, 1.0);
  return c * std::pow(r, static_cast<double>(N)) / (1.0 - r);
}

double PowerTailUpper(double c, double p, int64_t N) {
  IPDB_CHECK_GE(c, 0.0);
  IPDB_CHECK_GT(p, 1.0);
  IPDB_CHECK_GE(N, 1);
  double n = static_cast<double>(N);
  return c * (std::pow(n, -p) + std::pow(n, 1.0 - p) / (p - 1.0));
}

double PowerTailLower(double c, double p, int64_t N) {
  IPDB_CHECK_GE(c, 0.0);
  if (c == 0.0) return 0.0;
  if (p <= 1.0) return Interval::kInfinity;
  double n = static_cast<double>(N + 1);
  return c * std::pow(n, 1.0 - p) / (p - 1.0);
}

Series PowerSeries(double c, double p) {
  Series series;
  series.term = [c, p](int64_t i) {
    if (i == 0) return 0.0;
    return c * std::pow(static_cast<double>(i), -p);
  };
  if (p > 1.0) {
    series.tail_upper_bound = [c, p](int64_t N) {
      return PowerTailUpper(c, p, N < 1 ? 1 : N);
    };
  }
  series.tail_lower_bound = [c, p](int64_t N) {
    return PowerTailLower(c, p, N < 1 ? 1 : N);
  };
  std::ostringstream os;
  os << "sum_{i>=1} " << c << " * i^-" << p;
  series.description = os.str();
  return series;
}

Series GeometricSeries(double c, double r) {
  IPDB_CHECK_GE(r, 0.0);
  IPDB_CHECK_LT(r, 1.0);
  Series series;
  series.term = [c, r](int64_t i) {
    return c * std::pow(r, static_cast<double>(i));
  };
  series.tail_upper_bound = [c, r](int64_t N) {
    return GeometricTailUpper(c, r, N);
  };
  series.tail_lower_bound = [](int64_t) { return 0.0; };
  std::ostringstream os;
  os << "sum_{i>=0} " << c << " * " << r << "^i";
  series.description = os.str();
  return series;
}

}  // namespace ipdb
