#ifndef IPDB_UTIL_SERIES_H_
#define IPDB_UTIL_SERIES_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/interval.h"

namespace ipdb {

/// A non-negative real series sum_{i >= 0} a_i together with optional
/// certificates about its tail.
///
/// Infinite PDBs in this library carry their convergence statements
/// (Theorems 2.4/2.6, the moment sums of Section 3, the growth criterion of
/// Theorem 5.3) as `Series` objects: the term function gives the summands
/// and the certificates make statements about `T(N) := sum_{i >= N} a_i`.
///
/// * `tail_upper_bound(N)` must satisfy `T(N) <= tail_upper_bound(N)`; it
///   lets `AnalyzeSum` certify convergence with an interval enclosure.
/// * `tail_lower_bound(N)` must satisfy `T(N) >= tail_lower_bound(N)`;
///   returning `Interval::kInfinity` certifies divergence.
///
/// Both certificates are optional. Without them, `AnalyzeSum` can only
/// report partial sums (kInconclusive) or a threshold-crossing divergence
/// *witness* (kDivergedWitness).
struct Series {
  /// Term function; must return a_i >= 0 for all i >= 0.
  std::function<double(int64_t)> term;

  /// Optional: N -> upper bound on the tail sum starting at N.
  std::function<double(int64_t)> tail_upper_bound;

  /// Optional: N -> lower bound on the tail sum starting at N (may return
  /// Interval::kInfinity to certify divergence).
  std::function<double(int64_t)> tail_lower_bound;

  /// Human-readable description used in reports.
  std::string description;
};

/// Options controlling `AnalyzeSum`.
struct SumOptions {
  /// Maximum number of leading terms to add up.
  int64_t max_terms = 1 << 20;

  /// Stop early once the certified enclosure width drops below this.
  double target_width = 1e-12;

  /// Partial sums exceeding this value are reported as a divergence
  /// witness when no certificate decides the series.
  double divergence_witness_threshold = 1e12;
};

/// Outcome of analyzing a series.
struct SumAnalysis {
  enum class Kind {
    kConverged,        // certified: sum lies in `enclosure`
    kDiverged,         // certified: tail lower bound is infinite
    kDivergedWitness,  // uncertified: partial sums crossed the threshold
    kInconclusive,     // no certificate, threshold not crossed
  };

  Kind kind = Kind::kInconclusive;

  /// For kConverged: certified enclosure of the sum. Otherwise the
  /// interval [partial_sum, +inf).
  Interval enclosure = Interval::Point(0.0);

  /// Sum of the first `terms_used` terms.
  double partial_sum = 0.0;
  int64_t terms_used = 0;

  std::string ToString() const;
};

/// Computes partial sums of `series` and applies its certificates.
/// The term function is evaluated for i in [0, terms_used).
SumAnalysis AnalyzeSum(const Series& series, const SumOptions& options = {});

/// Tail bound helpers (all for sums starting at index N >= 1):

/// Upper bound for a geometrically dominated tail: if a_i <= c * r^i for
/// all i >= N with 0 <= r < 1, then T(N) <= c * r^N / (1 - r).
double GeometricTailUpper(double c, double r, int64_t N);

/// Upper bound by the integral test for a_i = c * i^{-p}, p > 1, N >= 1:
/// T(N) <= c * ( N^{-p} + N^{1-p} / (p-1) ).
double PowerTailUpper(double c, double p, int64_t N);

/// Lower bound by the integral test for a_i = c * i^{-p} with p <= 1 the
/// tail diverges; returns +infinity. For p > 1 returns
/// c * (N+1)^{1-p} / (p-1) (integral from N+1).
double PowerTailLower(double c, double p, int64_t N);

/// Convenience constructor: the series with terms c * i^{-p} for i >= 1
/// (term(0) == 0) with both integral-test certificates attached.
Series PowerSeries(double c, double p);

/// Convenience constructor: the series with terms c * r^i, 0 <= r < 1,
/// with geometric certificates attached.
Series GeometricSeries(double c, double r);

}  // namespace ipdb

#endif  // IPDB_UTIL_SERIES_H_
