#ifndef IPDB_UTIL_STATUS_H_
#define IPDB_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace ipdb {

/// Error categories used throughout the library. The library does not use
/// C++ exceptions; fallible operations return `Status` or `StatusOr<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kFailedPrecondition,// object state does not admit the operation
  kOutOfRange,        // index/parameter outside the valid range
  kUnimplemented,     // feature intentionally not supported
  kInternal,          // invariant violation that was recoverable
  kDiverged,          // a series/criterion was certified to diverge
  kInconclusive,      // a numeric criterion could not be decided at the
                      // requested precision/prefix length
};

/// Human-readable name of a StatusCode (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

/// A lightweight absl::Status-style error carrier.
///
/// `Status::Ok()` is the success value. All other statuses carry a code and
/// a message. Statuses are cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A code of
  /// `kOk` must not carry a message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE_NAME: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Convenience constructors mirroring absl's.
Status InvalidArgumentError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DivergedError(std::string message);
Status InconclusiveError(std::string message);

/// Either a value of type T or a non-OK Status.
///
/// Accessing `value()` on a non-OK StatusOr aborts; check `ok()` first.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversion from a value (success) or from a Status (failure),
  /// mirroring absl::StatusOr; marked non-explicit deliberately.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    IPDB_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    IPDB_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    IPDB_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    IPDB_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Implementation details only below here.

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDiverged: return "DIVERGED";
    case StatusCode::kInconclusive: return "INCONCLUSIVE";
  }
  return "UNKNOWN";
}

inline std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status DivergedError(std::string message) {
  return Status(StatusCode::kDiverged, std::move(message));
}
inline Status InconclusiveError(std::string message) {
  return Status(StatusCode::kInconclusive, std::move(message));
}

}  // namespace ipdb

#endif  // IPDB_UTIL_STATUS_H_
