#ifndef IPDB_UTIL_STATUS_H_
#define IPDB_UTIL_STATUS_H_

#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "util/check.h"

namespace ipdb {

/// Error categories used throughout the library. The library does not use
/// C++ exceptions; fallible operations return `Status` or `StatusOr<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kFailedPrecondition,// object state does not admit the operation
  kOutOfRange,        // index/parameter outside the valid range
  kUnimplemented,     // feature intentionally not supported
  kInternal,          // invariant violation that was recoverable
  kDiverged,          // a series/criterion was certified to diverge
  kInconclusive,      // a numeric criterion could not be decided at the
                      // requested precision/prefix length
  kResourceExhausted, // an ExecutionBudget cap (nodes, limbs, samples)
                      // was hit before the computation finished
  kDeadlineExceeded,  // the ExecutionBudget wall-clock deadline passed
  kCancelled,         // a CancelToken was triggered mid-computation
  kUnavailable,       // the service refused the work right now (admission
                      // shed, shutdown in progress); safe to retry later
  kDataLoss,          // persisted bytes failed validation (bad magic/CRC,
                      // truncated section); the on-disk artifact is not
                      // trustworthy as written
};

/// Human-readable name of a StatusCode (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

/// A lightweight absl::Status-style error carrier.
///
/// `Status::Ok()` is the success value. All other statuses carry a code and
/// a message, and optionally the `file:line` of the call site that created
/// them (set by the IPDB_STATUS macro / StatusBuilder). Statuses are cheap
/// to copy; the location strings are string literals and are never owned.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A code of
  /// `kOk` must not carry a message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Source location of the error, when known. `file()` is nullptr (and
  /// `line()` 0) for statuses built without location context.
  const char* file() const { return file_; }
  int line() const { return line_; }

  /// Attaches the creating call site; returns *this for chaining. `file`
  /// must outlive the status (it is __FILE__ in practice).
  Status& WithSourceLocation(const char* file, int line) {
    file_ = file;
    line_ = line;
    return *this;
  }

  /// Appends further context to the message, separated by "; " — the
  /// StatusBuilder-style enrichment used when a Status propagates up
  /// through layers that each know a bit more about the operation.
  Status& Append(const std::string& context) {
    if (!context.empty()) {
      if (!message_.empty()) message_ += "; ";
      message_ += context;
    }
    return *this;
  }

  /// "OK" or "CODE_NAME: message [file:line]".
  std::string ToString() const;

  /// Equality compares code and message only — two statuses reporting the
  /// same error from different call sites are equal.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
  const char* file_ = nullptr;
  int line_ = 0;
};

/// Convenience constructors mirroring absl's.
Status InvalidArgumentError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DivergedError(std::string message);
Status InconclusiveError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);

/// Either a value of type T or a non-OK Status.
///
/// Accessing `value()` on a non-OK StatusOr aborts; check `ok()` first.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversion from a value (success) or from a Status (failure),
  /// mirroring absl::StatusOr; marked non-explicit deliberately.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    IPDB_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    IPDB_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    IPDB_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    IPDB_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Builds a Status with streamed message context and automatic source
/// location, absl::StatusBuilder-style. Use through IPDB_STATUS:
///
///   return IPDB_STATUS(StatusCode::kResourceExhausted)
///          << "circuit node cap " << cap << " exceeded";
///
/// An existing Status can also be enriched while it propagates:
///
///   return IPDB_STATUS_FORWARD(status) << "while compiling " << name;
///
/// The builder converts implicitly to Status and to any StatusOr<T>.
class StatusBuilder {
 public:
  StatusBuilder(StatusCode code, const char* file, int line)
      : code_(code), file_(file), line_(line) {}

  StatusBuilder(Status status, const char* file, int line)
      : code_(status.code()),
        base_message_(status.message()),
        file_(status.file() != nullptr ? status.file() : file),
        line_(status.file() != nullptr ? status.line() : line) {}

  template <typename T>
  StatusBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  Status Build() const {
    std::string message = base_message_;
    const std::string extra = stream_.str();
    if (!extra.empty()) {
      if (!message.empty()) message += "; ";
      message += extra;
    }
    Status status(code_, std::move(message));
    status.WithSourceLocation(file_, line_);
    return status;
  }

  operator Status() const { return Build(); }  // NOLINT

  template <typename T>
  operator StatusOr<T>() const {  // NOLINT
    return StatusOr<T>(Build());
  }

 private:
  StatusCode code_;
  std::string base_message_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// A StatusBuilder for a fresh error with the current source location.
#define IPDB_STATUS(code) ::ipdb::StatusBuilder((code), __FILE__, __LINE__)

/// A StatusBuilder that enriches an existing non-OK Status, keeping its
/// original source location when it has one.
#define IPDB_STATUS_FORWARD(status) \
  ::ipdb::StatusBuilder((status), __FILE__, __LINE__)

/// Evaluates `expr` (a Status or StatusOr-typed expression is not
/// accepted — pass a Status) and returns it from the enclosing function
/// if it is an error.
#define IPDB_RETURN_IF_ERROR(expr)                    \
  do {                                                \
    ::ipdb::Status ipdb_return_if_error_st = (expr);  \
    if (!ipdb_return_if_error_st.ok()) {              \
      return ipdb_return_if_error_st;                 \
    }                                                 \
  } while (0)

// Implementation details only below here.

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDiverged: return "DIVERGED";
    case StatusCode::kInconclusive: return "INCONCLUSIVE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

inline std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  if (file_ != nullptr) {
    out += " [";
    out += file_;
    out += ":";
    out += std::to_string(line_);
    out += "]";
  }
  return out;
}

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status DivergedError(std::string message) {
  return Status(StatusCode::kDiverged, std::move(message));
}
inline Status InconclusiveError(std::string message) {
  return Status(StatusCode::kInconclusive, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
inline Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

}  // namespace ipdb

#endif  // IPDB_UTIL_STATUS_H_
