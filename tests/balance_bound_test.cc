#include "core/balance_bound.h"

#include <gtest/gtest.h>

#include "core/paper_examples.h"

namespace ipdb {
namespace core {
namespace {

TEST(BalanceBoundTest, Lemma37BoundFormula) {
  // d_n = 0: bound 1 (no constraint).
  EXPECT_DOUBLE_EQ(Lemma37Bound(0.5, 0, 3), 1.0);
  // r = 1: d (a)^d.
  EXPECT_DOUBLE_EQ(Lemma37Bound(0.5, 2, 1), 2.0 * 0.25);
  // r = 2, d = 4: 4 (a·4)^2.
  EXPECT_DOUBLE_EQ(Lemma37Bound(0.1, 4, 2), 4.0 * 0.16);
}

TEST(BalanceBoundTest, Example39EventuallyViolatesForSmallR) {
  // For r = 1 the violation threshold is small; sweep past it and check
  // that (†) fails everywhere in the tail — the Example 3.9
  // non-representability evidence.
  const double c = 6.0 / (M_PI * M_PI);
  int64_t threshold = Example39ViolationThreshold(1, c);
  BalanceReport report = SweepBalanceBound(
      [](int64_t n) { return Example39Probability(n); },
      [](int64_t n) { return Example39AdomSize(n); },
      [](int64_t n) { return 1.0 / static_cast<double>(n); },
      /*r=*/1, /*n_begin=*/threshold, /*n_end=*/threshold + 2000,
      /*stride=*/500, /*tail_from=*/threshold);
  EXPECT_TRUE(report.tail_all_violated) << report.ToString();
  EXPECT_EQ(report.last_satisfied, -1);
}

TEST(BalanceBoundTest, Example39ThresholdFormulaIsCorrectPointwise) {
  // At the analytic threshold the paper's inequality chain applies: the
  // bound is strictly below the probability (spot check r = 1, 2).
  const double c = 6.0 / (M_PI * M_PI);
  for (int r = 1; r <= 2; ++r) {
    int64_t n = Example39ViolationThreshold(r, c);
    double bound = Lemma37Bound(1.0 / static_cast<double>(n),
                                Example39AdomSize(n), r);
    EXPECT_LT(bound, Example39Probability(n)) << "r=" << r << " n=" << n;
  }
}

TEST(BalanceBoundTest, RepresentablePdbSatisfiesBoundInfinitelyOften) {
  // Sanity inverse: Example 5.5 IS in FO(TI); with r = 1 and a_n = 1/n,
  // the (†) inequality holds for all large n (probabilities 2^{-n²}
  // crash much faster than the bound n(1/n)^n — no obstruction).
  auto prob = [](int64_t n) {
    // Example 5.5 probabilities, unnormalized scale is irrelevant for
    // large n behaviour; use the exact form with x ≈ 0.5156.
    return std::pow(2.0, -static_cast<double>(n) * n) / 0.51562;
  };
  BalanceReport report = SweepBalanceBound(
      prob, [](int64_t n) { return n; },
      [](int64_t n) { return 1.0 / static_cast<double>(n); },
      /*r=*/1, /*n_begin=*/4, /*n_end=*/40, /*stride=*/4,
      /*tail_from=*/4);
  // (†) holds at every index here: no contradiction for this PDB.
  EXPECT_FALSE(report.tail_all_violated);
  EXPECT_EQ(report.last_satisfied, 39);
}

TEST(BalanceBoundTest, ThresholdGrowsWithR) {
  const double c = 6.0 / (M_PI * M_PI);
  EXPECT_LT(Example39ViolationThreshold(1, c),
            Example39ViolationThreshold(2, c));
  EXPECT_LT(Example39ViolationThreshold(2, c),
            Example39ViolationThreshold(3, c));
}

}  // namespace
}  // namespace core
}  // namespace ipdb
