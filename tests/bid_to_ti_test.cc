#include "core/bid_to_ti.h"

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "logic/classify.h"
#include "util/random.h"

namespace ipdb {
namespace core {
namespace {

using math::Rational;

rel::Fact U(int64_t v) { return rel::Fact(0, {rel::Value::Int(v)}); }

TEST(BidToTiTest, ExampleB2Exact) {
  // The canonical non-TI BID-PDB: one block, two facts at 1/2, residual 0.
  pdb::BidPdb<Rational> bid = ExampleB2();
  auto built = BuildBidToTi(bid);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  // Residual 0 ⇒ marginals p/(1+p) = (1/2)/(3/2) = 1/3.
  EXPECT_EQ(built.value().ti.facts()[0].second, Rational::Ratio(1, 3));
  auto tv = VerifyBidToTi(bid, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(BidToTiTest, PositiveResidualBlocks) {
  rel::Schema schema({{"U", 1}});
  pdb::BidPdb<Rational> bid = pdb::BidPdb<Rational>::CreateOrDie(
      schema,
      {{{U(1), Rational::Ratio(1, 3)}, {U(2), Rational::Ratio(1, 3)}},
       {{U(3), Rational::Ratio(1, 4)}}});
  auto built = BuildBidToTi(bid);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  // Block 0 residual 1/3: q = (1/3)/(1/3 + 1/3) = 1/2.
  EXPECT_EQ(built.value().ti.facts()[0].second, Rational::Ratio(1, 2));
  // Block 1 residual 3/4: q = (1/4)/(3/4 + 1/4) = 1/4.
  EXPECT_EQ(built.value().ti.facts()[2].second, Rational::Ratio(1, 4));
  auto tv = VerifyBidToTi(bid, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(BidToTiTest, MixedResidualsExact) {
  // One residual-0 block, one positive-residual block: exercises both
  // marginal formulas and the hard-coded "exactly one" conjunct.
  rel::Schema schema({{"U", 1}});
  pdb::BidPdb<Rational> bid = pdb::BidPdb<Rational>::CreateOrDie(
      schema,
      {{{U(1), Rational::Ratio(2, 3)}, {U(2), Rational::Ratio(1, 3)}},
       {{U(3), Rational::Ratio(1, 2)}}});
  auto built = BuildBidToTi(bid);
  ASSERT_TRUE(built.ok());
  auto tv = VerifyBidToTi(bid, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(BidToTiTest, MultiRelationBlocks) {
  // Blocks spanning different relations (mutual exclusion across
  // relation symbols).
  rel::Schema schema({{"A", 1}, {"B", 2}});
  rel::Fact a(0, {rel::Value::Int(1)});
  rel::Fact b(1, {rel::Value::Int(1), rel::Value::Int(2)});
  pdb::BidPdb<Rational> bid = pdb::BidPdb<Rational>::CreateOrDie(
      schema,
      {{{a, Rational::Ratio(1, 2)}, {b, Rational::Ratio(1, 2)}}});
  auto built = BuildBidToTi(bid);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto tv = VerifyBidToTi(bid, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(BidToTiTest, ViewIsProjection) {
  pdb::BidPdb<Rational> bid = ExampleB2();
  auto built = BuildBidToTi(bid);
  ASSERT_TRUE(built.ok());
  // The extraction view is a CQ (existential projection), matching the
  // paper's Φ; only the condition needs full FO.
  EXPECT_TRUE(logic::IsCqView(built.value().view));
}

TEST(BidToTiTest, CountableFamilyFromPropositionD3) {
  // Lemma 5.7 on the full countable Proposition D.3 BID-PDB. Every block
  // has residual 1 - 1/(i²+1) >= 1/2, so rho = 1/2 works.
  pdb::CountableBidPdb bid = PropositionD3Bid();
  auto built = BuildBidToTiFamily(bid, 0.5);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SumAnalysis well_defined = built.value().CheckWellDefined();
  EXPECT_EQ(well_defined.kind, SumAnalysis::Kind::kConverged)
      << well_defined.ToString();

  // Family marginals equal the finite construction's on a truncation.
  pdb::BidPdb<double> prefix = bid.Truncate(3);
  auto finite = BuildBidToTi(prefix);
  ASSERT_TRUE(finite.ok());
  for (int k = 0; k < 6; ++k) {  // 2 facts per block × 3 blocks
    EXPECT_NEAR(built.value().MarginalAt(k),
                finite.value().ti.facts()[k].second, 1e-12)
        << k;
    EXPECT_EQ(built.value().FactAt(k), finite.value().ti.facts()[k].first)
        << k;
  }

  // Sampling respects the augmented schema.
  Pcg32 rng(223);
  auto sample = built.value().Sample(&rng, 1e-4);
  ASSERT_TRUE(sample.ok());
  EXPECT_TRUE(sample.value().MatchesSchema(built.value().schema()));
}

TEST(BidToTiTest, CountableFamilyValidation) {
  pdb::CountableBidPdb bid = PropositionD3Bid();
  EXPECT_FALSE(BuildBidToTiFamily(bid, 0.0).ok());
  EXPECT_FALSE(BuildBidToTiFamily(bid, 1.5).ok());
}

TEST(BidToTiTest, DoublePath) {
  rel::Schema schema({{"U", 1}});
  pdb::BidPdb<double> bid = pdb::BidPdb<double>::CreateOrDie(
      schema, {{{U(1), 0.25}, {U(2), 0.5}}, {{U(3), 0.125}}});
  auto built = BuildBidToTi(bid);
  ASSERT_TRUE(built.ok());
  auto tv = VerifyBidToTi(bid, built.value());
  ASSERT_TRUE(tv.ok());
  EXPECT_NEAR(tv.value(), 0.0, 1e-12);
}

}  // namespace
}  // namespace core
}  // namespace ipdb
