#include "math/bigint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "util/random.h"

namespace ipdb {
namespace math {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.ToString(), "0");
}

TEST(BigIntTest, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{-123456789}, INT64_MAX, INT64_MIN}) {
    BigInt big(v);
    auto back = big.ToInt64();
    ASSERT_TRUE(back.ok()) << v;
    EXPECT_EQ(back.value(), v);
  }
}

TEST(BigIntTest, ToStringMatchesInt64) {
  EXPECT_EQ(BigInt(9223372036854775807LL).ToString(), "9223372036854775807");
  EXPECT_EQ(BigInt(-42).ToString(), "-42");
  EXPECT_EQ(BigInt(1000000000).ToString(), "1000000000");
}

TEST(BigIntTest, FromStringRoundTrip) {
  const char* cases[] = {"0", "1", "-1", "999999999999999999999999999",
                         "-123456789012345678901234567890"};
  for (const char* text : cases) {
    auto value = BigInt::FromString(text);
    ASSERT_TRUE(value.ok()) << text;
    EXPECT_EQ(value.value().ToString(), text);
  }
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12x3").ok());
  EXPECT_FALSE(BigInt::FromString("1.5").ok());
}

TEST(BigIntTest, AdditionCarries) {
  BigInt a = BigInt::FromString("999999999999999999999999").value();
  BigInt one(1);
  EXPECT_EQ((a + one).ToString(), "1000000000000000000000000");
}

TEST(BigIntTest, SubtractionSigns) {
  EXPECT_EQ((BigInt(5) - BigInt(7)).ToString(), "-2");
  EXPECT_EQ((BigInt(-5) - BigInt(-7)).ToString(), "2");
  EXPECT_EQ((BigInt(5) - BigInt(5)).ToString(), "0");
}

TEST(BigIntTest, MultiplicationLarge) {
  BigInt a = BigInt::FromString("123456789012345678901234567890").value();
  BigInt b = BigInt::FromString("987654321098765432109876543210").value();
  EXPECT_EQ((a * b).ToString(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToString(), "3");
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToString(), "-3");
  EXPECT_EQ((BigInt(7) % BigInt(2)).ToString(), "1");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToString(), "-1");
}

TEST(BigIntTest, MultiLimbDivision) {
  BigInt a = BigInt::FromString("340282366920938463463374607431768211456")
                 .value();  // 2^128
  BigInt b = BigInt::FromString("18446744073709551616").value();  // 2^64
  EXPECT_EQ((a / b).ToString(), "18446744073709551616");
  EXPECT_TRUE((a % b).is_zero());
}

TEST(BigIntTest, DivisionRandomizedAgainstInt128) {
  Pcg32 rng(7);
  for (int i = 0; i < 2000; ++i) {
    __int128 x = (static_cast<__int128>(rng.NextU64() >> 1) << 30) ^
                 rng.NextU32();
    uint64_t y64 = (rng.NextU64() >> 20) | 1;
    __int128 y = static_cast<__int128>(y64);
    if (rng.NextBernoulli(0.5)) x = -x;
    BigInt a = BigInt::FromString([&] {
                 // Render the __int128 via decomposition.
                 bool negative = x < 0;
                 unsigned __int128 m =
                     negative ? -static_cast<unsigned __int128>(x)
                              : static_cast<unsigned __int128>(x);
                 std::string digits;
                 if (m == 0) digits = "0";
                 while (m != 0) {
                   digits.insert(digits.begin(),
                                 static_cast<char>('0' + static_cast<int>(m % 10)));
                   m /= 10;
                 }
                 return (negative ? "-" : "") + digits;
               }())
                   .value();
    BigInt b(static_cast<int64_t>(y64));
    __int128 q = x / y;
    __int128 r = x % y;
    BigInt quotient;
    BigInt remainder;
    BigInt::DivMod(a, b, &quotient, &remainder);
    EXPECT_EQ((quotient * b + remainder).ToString(), a.ToString());
    // Compare against the native result via reconstruction.
    EXPECT_EQ(quotient.ToString(),
              (BigInt(static_cast<int64_t>(q >> 62)) * BigInt(int64_t{1} << 62) +
               BigInt(static_cast<int64_t>(q & ((int64_t{1} << 62) - 1))))
                  .ToString());
    (void)r;
  }
}

TEST(BigIntTest, GcdAndPow) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(36)).ToString(), "12");
  EXPECT_EQ(BigInt::Gcd(BigInt(-48), BigInt(36)).ToString(), "12");
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToString(), "5");
  EXPECT_EQ(BigInt(2).Pow(100).ToString(), "1267650600228229401496703205376");
  EXPECT_EQ(BigInt(7).Pow(0).ToString(), "1");
  EXPECT_EQ(BigInt::TwoToThe(100), BigInt(2).Pow(100));
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-3), BigInt(2));
  EXPECT_LT(BigInt(2), BigInt(3));
  EXPECT_LT(BigInt(-3), BigInt(-2));
  EXPECT_LE(BigInt(2), BigInt(2));
  EXPECT_GT(BigInt::FromString("100000000000000000000").value(),
            BigInt(INT64_MAX));
}

TEST(BigIntTest, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(1000).ToDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(BigInt(-1000).ToDouble(), -1000.0);
  EXPECT_NEAR(BigInt(2).Pow(70).ToDouble(), std::pow(2.0, 70), 1e3);
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt::TwoToThe(100).BitLength(), 101u);
}

TEST(BigIntTest, ToInt64OverflowDetected) {
  EXPECT_FALSE(BigInt::TwoToThe(64).ToInt64().ok());
  EXPECT_TRUE(BigInt(INT64_MIN).ToInt64().ok());
}

}  // namespace
}  // namespace math
}  // namespace ipdb
