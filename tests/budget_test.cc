#include "util/budget.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "kc/cache.h"
#include "kc/compile.h"
#include "kc/evaluate.h"
#include "logic/parser.h"
#include "math/bigint.h"
#include "math/rational.h"
#include "obs/obs.h"
#include "pqe/lineage.h"
#include "pqe/monte_carlo.h"
#include "pqe/wmc.h"
#include "util/random.h"

namespace ipdb {
namespace {

using std::chrono::milliseconds;

/// A budget whose deadline is already in the past.
ExecutionBudget ExpiredBudget() {
  ExecutionBudget budget;
  budget.deadline = ExecutionBudget::Clock::now() - milliseconds(10);
  return budget;
}

/// A variable-connected lineage that forces Shannon expansion: the path
/// disjunction (x0 ∧ x1) ∨ (x1 ∧ x2) ∨ ... over `n` variables.
pqe::NodeId PathLineage(pqe::Lineage* lineage, int n) {
  std::vector<pqe::NodeId> terms;
  for (int i = 0; i + 1 < n; ++i) {
    terms.push_back(
        lineage->MakeAnd({lineage->Var(i), lineage->Var(i + 1)}));
  }
  return lineage->MakeOr(std::move(terms));
}

pdb::TiPdb<double> PathTi() {
  rel::Schema schema({{"R", 2}, {"S", 1}});
  auto r = [](int64_t a, int64_t b) {
    return rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)});
  };
  return pdb::TiPdb<double>::CreateOrDie(
      schema, {{r(1, 2), 0.5},
               {r(2, 3), 0.25},
               {r(1, 3), 0.75},
               {rel::Fact(1, {rel::Value::Int(2)}), 0.4}});
}

TEST(CancelTokenTest, CancelAndReset) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(ExecutionBudgetTest, DefaultIsUnlimited) {
  ExecutionBudget budget;
  EXPECT_TRUE(budget.unlimited());
  EXPECT_FALSE(budget.has_deadline());
  EXPECT_TRUE(budget.CheckTime("test").ok());
}

TEST(ExecutionBudgetTest, ExpiredDeadlineTrips) {
  ExecutionBudget budget = ExpiredBudget();
  EXPECT_FALSE(budget.unlimited());
  Status status = budget.CheckTime("compile");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("compile"), std::string::npos);
}

TEST(ExecutionBudgetTest, FutureDeadlinePasses) {
  ExecutionBudget budget =
      ExecutionBudget::WithTimeout(std::chrono::hours(1));
  EXPECT_TRUE(budget.has_deadline());
  EXPECT_TRUE(budget.CheckTime("test").ok());
}

TEST(ExecutionBudgetTest, CancelTokenTrips) {
  CancelToken token;
  ExecutionBudget budget;
  budget.cancel = &token;
  EXPECT_TRUE(budget.CheckTime("solve").ok());
  token.Cancel();
  Status status = budget.CheckTime("solve");
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.message().find("solve"), std::string::npos);
}

TEST(IsBudgetErrorTest, ExactlyTheThreeBudgetCodes) {
  EXPECT_TRUE(IsBudgetError(ResourceExhaustedError("x")));
  EXPECT_TRUE(IsBudgetError(DeadlineExceededError("x")));
  EXPECT_TRUE(IsBudgetError(CancelledError("x")));
  EXPECT_FALSE(IsBudgetError(Status::Ok()));
  EXPECT_FALSE(IsBudgetError(InvalidArgumentError("x")));
  EXPECT_FALSE(IsBudgetError(InternalError("x")));
}

TEST(BudgetMeterTest, NullBudgetChargesFreely) {
  BudgetMeter meter(nullptr, 5, "test");
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(meter.Charge().ok());
  EXPECT_TRUE(meter.error().ok());
}

TEST(BudgetMeterTest, UnitCapTripsAndSticks) {
  ExecutionBudget budget;
  budget.max_circuit_nodes = 3;
  BudgetMeter meter(&budget, budget.max_circuit_nodes, "test unit");
  EXPECT_TRUE(meter.Charge().ok());
  EXPECT_TRUE(meter.Charge().ok());
  EXPECT_TRUE(meter.Charge().ok());
  Status status = meter.Charge();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("test unit"), std::string::npos);
  // Sticky: unwinding callers may keep charging and keep seeing it.
  EXPECT_EQ(meter.Charge().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(meter.error().code(), StatusCode::kResourceExhausted);
}

TEST(BudgetMeterTest, DeadlineCaughtWithinOneStride) {
  ExecutionBudget budget = ExpiredBudget();
  BudgetMeter meter(&budget, 0, "test", /*poll_stride=*/8);
  // The deadline is only polled every poll_stride units, so the error
  // must surface within one stride of charges.
  Status status;
  for (int i = 0; i < 9 && status.ok(); ++i) status = meter.Charge();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(BudgetMeterTest, CheckNowBypassesAmortization) {
  ExecutionBudget budget = ExpiredBudget();
  BudgetMeter meter(&budget, 0, "test");
  EXPECT_EQ(meter.CheckNow().code(), StatusCode::kDeadlineExceeded);
}

math::BigInt PowerOfTwo(int bits) {
  math::BigInt two(2);
  math::BigInt result(1);
  for (int i = 0; i < bits; ++i) result = result * two;
  return result;
}

TEST(ScopedLimbCapTest, SuppressesOverCapProducts) {
  math::BigInt big = PowerOfTwo(512);  // 16 limbs
  {
    math::ScopedLimbCap cap(8);
    EXPECT_FALSE(cap.exceeded());
    math::BigInt product = big * big;
    EXPECT_TRUE(cap.exceeded());
    // The placeholder magnitude is 1, never 0, so a suppressed
    // denominator cannot become a zero divisor while unwinding.
    EXPECT_EQ(product, math::BigInt(1));
    Status status = cap.ToStatus("test op");
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_NE(status.message().find("test op"), std::string::npos);
  }
  // Outside the scope the same product is exact again.
  EXPECT_EQ(big * big, PowerOfTwo(1024));
}

TEST(ScopedLimbCapTest, UnderCapProductsAreExact) {
  math::ScopedLimbCap cap(64);
  math::BigInt big = PowerOfTwo(512);
  EXPECT_EQ(big * big, PowerOfTwo(1024));
  EXPECT_FALSE(cap.exceeded());
  EXPECT_TRUE(cap.ToStatus("test").ok());
}

TEST(ScopedLimbCapTest, NestedScopesRestoreOuterState) {
  math::BigInt big = PowerOfTwo(512);
  math::ScopedLimbCap outer(8);
  math::BigInt ignored = big * big;
  EXPECT_TRUE(outer.exceeded());
  {
    // An inner scope starts clean and does not disturb the outer flag.
    math::ScopedLimbCap inner(1024);
    EXPECT_FALSE(inner.exceeded());
    math::BigInt fine = big * big;
    EXPECT_EQ(fine, PowerOfTwo(1024));
    EXPECT_FALSE(inner.exceeded());
  }
  EXPECT_TRUE(outer.exceeded());
}

TEST(CompileBudgetTest, NodeCapAborts) {
  pqe::Lineage lineage;
  pqe::NodeId root = PathLineage(&lineage, 12);
  ExecutionBudget budget;
  budget.max_circuit_nodes = 1;
  kc::CompileOptions options;
  options.budget = &budget;
  StatusOr<kc::CompiledQuery> compiled =
      kc::CompileLineage(&lineage, root, options);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kResourceExhausted);
}

TEST(CompileBudgetTest, DepthCapAborts) {
  pqe::Lineage lineage;
  pqe::NodeId root = PathLineage(&lineage, 12);
  ExecutionBudget budget;
  budget.max_recursion_depth = 1;
  kc::CompileOptions options;
  options.budget = &budget;
  StatusOr<kc::CompiledQuery> compiled =
      kc::CompileLineage(&lineage, root, options);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kResourceExhausted);
}

TEST(CompileBudgetTest, ExpiredDeadlineAborts) {
  pqe::Lineage lineage;
  pqe::NodeId root = PathLineage(&lineage, 12);
  ExecutionBudget budget = ExpiredBudget();
  kc::CompileOptions options;
  options.budget = &budget;
  StatusOr<kc::CompiledQuery> compiled =
      kc::CompileLineage(&lineage, root, options);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(CompileBudgetTest, CancelledTokenAborts) {
  pqe::Lineage lineage;
  pqe::NodeId root = PathLineage(&lineage, 12);
  CancelToken token;
  token.Cancel();
  ExecutionBudget budget;
  budget.cancel = &token;
  kc::CompileOptions options;
  options.budget = &budget;
  StatusOr<kc::CompiledQuery> compiled =
      kc::CompileLineage(&lineage, root, options);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kCancelled);
}

TEST(CompileBudgetTest, GenerousBudgetMatchesUngoverned) {
  pqe::Lineage a;
  pqe::NodeId root_a = PathLineage(&a, 10);
  StatusOr<kc::CompiledQuery> plain = kc::CompileLineage(&a, root_a);
  ASSERT_TRUE(plain.ok());

  pqe::Lineage b;
  pqe::NodeId root_b = PathLineage(&b, 10);
  ExecutionBudget budget = ExecutionBudget::WithTimeout(std::chrono::hours(1));
  budget.max_circuit_nodes = 1 << 20;
  budget.max_recursion_depth = 1 << 20;
  kc::CompileOptions options;
  options.budget = &budget;
  StatusOr<kc::CompiledQuery> governed =
      kc::CompileLineage(&b, root_b, options);
  ASSERT_TRUE(governed.ok());
  EXPECT_EQ(plain.value().circuit.size(), governed.value().circuit.size());

  std::vector<double> probs(10, 0.5);
  StatusOr<double> p_plain = kc::EvaluateCircuit<double>(
      plain.value().circuit, plain.value().root, probs);
  StatusOr<double> p_governed = kc::EvaluateCircuit<double>(
      governed.value().circuit, governed.value().root, probs);
  ASSERT_TRUE(p_plain.ok());
  ASSERT_TRUE(p_governed.ok());
  EXPECT_DOUBLE_EQ(p_plain.value(), p_governed.value());
}

TEST(EvaluateExactBudgetTest, LimbCapAbortsAndGenerousCapMatches) {
  pqe::Lineage lineage;
  pqe::NodeId root = PathLineage(&lineage, 8);
  StatusOr<kc::CompiledQuery> compiled = kc::CompileLineage(&lineage, root);
  ASSERT_TRUE(compiled.ok());
  // A large prime denominator defeats reduction and the inline-int64
  // fast path (which is deliberately unguarded): common denominators
  // overflow into limb form within a few gates, where the cap bites.
  std::vector<math::Rational> probs(8,
                                    math::Rational::Ratio(1, 2147483647));

  StatusOr<math::Rational> exact = kc::EvaluateCircuitExact(
      compiled.value().circuit, compiled.value().root, probs);
  ASSERT_TRUE(exact.ok());

  ExecutionBudget tiny;
  tiny.max_bigint_limbs = 1;
  StatusOr<math::Rational> capped = kc::EvaluateCircuitExact(
      compiled.value().circuit, compiled.value().root, probs, &tiny);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted);

  ExecutionBudget roomy;
  roomy.max_bigint_limbs = 1 << 20;
  StatusOr<math::Rational> governed = kc::EvaluateCircuitExact(
      compiled.value().circuit, compiled.value().root, probs, &roomy);
  ASSERT_TRUE(governed.ok());
  EXPECT_EQ(governed.value(), exact.value());
}

TEST(WmcBudgetTest, ComputeProbabilityDepthCapAborts) {
  pqe::Lineage lineage;
  pqe::NodeId root = PathLineage(&lineage, 12);
  std::vector<double> probs(12, 0.5);
  ExecutionBudget budget;
  budget.max_recursion_depth = 1;
  pqe::WmcOptions options;
  options.budget = &budget;
  StatusOr<double> result =
      pqe::ComputeProbability(&lineage, root, probs, nullptr, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(WmcBudgetTest, ComputeProbabilityGenerousBudgetMatches) {
  pqe::Lineage a;
  pqe::NodeId root_a = PathLineage(&a, 10);
  std::vector<double> probs(10, 0.3);
  StatusOr<double> plain = pqe::ComputeProbability(&a, root_a, probs);
  ASSERT_TRUE(plain.ok());

  pqe::Lineage b;
  pqe::NodeId root_b = PathLineage(&b, 10);
  ExecutionBudget budget;
  budget.max_circuit_nodes = 1 << 20;
  budget.max_recursion_depth = 1 << 20;
  pqe::WmcOptions options;
  options.budget = &budget;
  StatusOr<double> governed =
      pqe::ComputeProbability(&b, root_b, probs, nullptr, options);
  ASSERT_TRUE(governed.ok());
  EXPECT_DOUBLE_EQ(plain.value(), governed.value());
}

TEST(MonteCarloBudgetTest, SampleCapTruncatesSequentialEstimate) {
  pdb::TiPdb<double> ti = PathTi();
  logic::Formula sentence =
      logic::ParseSentence("exists x y. R(x, y) & S(y)", ti.schema())
          .value();
  ExecutionBudget budget;
  budget.max_samples = 100;
  Pcg32 rng(7);
  StatusOr<pqe::MonteCarloEstimate> estimate =
      pqe::EstimateQueryProbability(ti, sentence, 1000, &rng, 0.95,
                                    &budget);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate.value().samples, 100);
  EXPECT_TRUE(estimate.value().truncated);
  // The certified interval covers the samples actually drawn.
  Pcg32 rng2(7);
  StatusOr<pqe::MonteCarloEstimate> direct =
      pqe::EstimateQueryProbability(ti, sentence, 100, &rng2, 0.95);
  ASSERT_TRUE(direct.ok());
  EXPECT_DOUBLE_EQ(estimate.value().half_width, direct.value().half_width);
  EXPECT_DOUBLE_EQ(estimate.value().estimate, direct.value().estimate);
  EXPECT_FALSE(direct.value().truncated);
}

TEST(MonteCarloBudgetTest, ExpiredDeadlineDrawsNothing) {
  pdb::TiPdb<double> ti = PathTi();
  logic::Formula sentence =
      logic::ParseSentence("exists x y. R(x, y) & S(y)", ti.schema())
          .value();
  ExecutionBudget budget = ExpiredBudget();
  Pcg32 rng(7);
  StatusOr<pqe::MonteCarloEstimate> estimate =
      pqe::EstimateQueryProbability(ti, sentence, 1000, &rng, 0.95,
                                    &budget);
  ASSERT_FALSE(estimate.ok());
  EXPECT_TRUE(IsBudgetError(estimate.status()));
}

TEST(MonteCarloBudgetTest, ParallelTruncationIsDeterministic) {
  pdb::TiPdb<double> ti = PathTi();
  logic::Formula sentence =
      logic::ParseSentence("exists x y. R(x, y) & S(y)", ti.schema())
          .value();
  ExecutionBudget budget;
  budget.max_samples = 128;
  pdb::SamplingOptions options;
  options.threads = 2;
  options.shards = 4;
  options.budget = &budget;
  Pcg32 base(99);
  StatusOr<pqe::MonteCarloEstimate> first = pqe::EstimateQueryProbability(
      ti, sentence, 1 << 20, base, options, 0.95);
  StatusOr<pqe::MonteCarloEstimate> second = pqe::EstimateQueryProbability(
      ti, sentence, 1 << 20, base, options, 0.95);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().samples, 128);
  EXPECT_TRUE(first.value().truncated);
  EXPECT_DOUBLE_EQ(first.value().estimate, second.value().estimate);
  EXPECT_DOUBLE_EQ(first.value().half_width, second.value().half_width);
}

TEST(QueryDegradationTest, UnlimitedBudgetStaysExact) {
  pdb::TiPdb<double> ti = PathTi();
  logic::Formula sentence =
      logic::ParseSentence("exists x y. R(x, y) & S(y)", ti.schema())
          .value();
  StatusOr<double> plain = pqe::QueryProbability(ti, sentence);
  ASSERT_TRUE(plain.ok());
  pqe::QueryOptions options;  // null budget
  StatusOr<pqe::QueryAnswer> answer =
      pqe::QueryProbability(ti, sentence, options);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value().quality, pqe::AnswerQuality::kExact);
  EXPECT_DOUBLE_EQ(answer.value().probability, plain.value());
  EXPECT_DOUBLE_EQ(answer.value().half_width, 0.0);
  EXPECT_DOUBLE_EQ(answer.value().confidence, 1.0);
  EXPECT_TRUE(answer.value().exact_error.ok());
}

// The end-to-end acceptance scenario: a node cap the compiler must
// exceed degrades the query to a certified Monte Carlo interval that
// contains the true probability — no abort, answer now.
TEST(QueryDegradationTest, NodeCapFallsBackToCertifiedInterval) {
  pdb::TiPdb<double> ti = PathTi();
  logic::Formula sentence =
      logic::ParseSentence("exists x y. R(x, y) & S(y)", ti.schema())
          .value();
  StatusOr<double> truth = pqe::QueryProbabilityBruteForce(ti, sentence);
  ASSERT_TRUE(truth.ok());
  // A cached artifact would satisfy the query without compiling (hits
  // are budget-free by design); clear it so the node cap must bite.
  kc::GlobalCompiledQueryCache().Clear();

#if !defined(IPDB_OBSERVABILITY_DISABLED)
  const int64_t fallback_queries_before =
      obs::GlobalMetrics().GetCounter("pqe.fallback.queries").Value();
  const int64_t interval_answers_before =
      obs::GlobalMetrics().GetCounter("pqe.fallback.interval_answers")
          .Value();
#endif

  ExecutionBudget budget;
  budget.max_circuit_nodes = 1;
  pqe::QueryOptions options;
  // The query is safe, so the default ladder would answer it exactly on
  // the lifted rung; force the circuit rung so the node cap can bite.
  options.lifted = false;
  options.budget = &budget;
  options.fallback_samples = 20000;
  options.fallback_confidence = 0.999;
  StatusOr<pqe::QueryAnswer> answer =
      pqe::QueryProbability(ti, sentence, options);
  ASSERT_TRUE(answer.ok());
  const pqe::QueryAnswer& a = answer.value();
  EXPECT_EQ(a.quality, pqe::AnswerQuality::kInterval);
  EXPECT_GT(a.samples, 0);
  EXPECT_GT(a.half_width, 0.0);
  EXPECT_DOUBLE_EQ(a.confidence, 0.999);
  EXPECT_EQ(a.exact_error.code(), StatusCode::kResourceExhausted);
  // The certified interval contains the brute-force truth.
  EXPECT_LE(truth.value(), a.probability + a.half_width);
  EXPECT_GE(truth.value(), a.probability - a.half_width);

#if !defined(IPDB_OBSERVABILITY_DISABLED)
  EXPECT_EQ(
      obs::GlobalMetrics().GetCounter("pqe.fallback.queries").Value(),
      fallback_queries_before + 1);
  EXPECT_EQ(obs::GlobalMetrics()
                .GetCounter("pqe.fallback.interval_answers")
                .Value(),
            interval_answers_before + 1);
#endif
}

TEST(QueryDegradationTest, FallbackDisabledPropagatesBudgetError) {
  pdb::TiPdb<double> ti = PathTi();
  logic::Formula sentence =
      logic::ParseSentence("exists x y. R(x, y) & S(y)", ti.schema())
          .value();
  kc::GlobalCompiledQueryCache().Clear();
  ExecutionBudget budget;
  budget.max_circuit_nodes = 1;
  pqe::QueryOptions options;
  options.lifted = false;  // force the circuit rung (see above)
  options.budget = &budget;
  options.fallback = false;
  StatusOr<pqe::QueryAnswer> answer =
      pqe::QueryProbability(ti, sentence, options);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted);
}

TEST(QueryDegradationTest, ExhaustedLadderReportsFailedAnswer) {
  pdb::TiPdb<double> ti = PathTi();
  logic::Formula sentence =
      logic::ParseSentence("exists x y. R(x, y) & S(y)", ti.schema())
          .value();
  // An expired deadline kills the exact rung at its first check and the
  // fallback before it draws a single sample: the ladder is exhausted
  // and the failure comes back as a value, not an abort.
  ExecutionBudget budget = ExpiredBudget();
  pqe::QueryOptions options;
  options.budget = &budget;
  StatusOr<pqe::QueryAnswer> answer =
      pqe::QueryProbability(ti, sentence, options);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value().quality, pqe::AnswerQuality::kFailed);
  EXPECT_FALSE(answer.value().exact_error.ok());
  EXPECT_EQ(answer.value().samples, 0);
}

TEST(QueryDegradationTest, CancellationDegradesMidLadder) {
  pdb::TiPdb<double> ti = PathTi();
  logic::Formula sentence =
      logic::ParseSentence("exists x y. R(x, y) & S(y)", ti.schema())
          .value();
  CancelToken token;
  token.Cancel();
  ExecutionBudget budget;
  budget.cancel = &token;
  pqe::QueryOptions options;
  options.budget = &budget;
  StatusOr<pqe::QueryAnswer> answer =
      pqe::QueryProbability(ti, sentence, options);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer.value().quality, pqe::AnswerQuality::kFailed);
  EXPECT_EQ(answer.value().exact_error.code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace ipdb
