#include "pdb/combinators.h"

#include <gtest/gtest.h>

#include "pqe/monte_carlo.h"
#include "pqe/wmc.h"

#include "core/paper_examples.h"
#include "logic/parser.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace pdb {
namespace {

using math::Rational;

rel::Schema UnarySchema() { return rel::Schema({{"U", 1}}); }

rel::Fact U(int64_t v) { return rel::Fact(0, {rel::Value::Int(v)}); }

TEST(CombinatorsTest, IndependentProductMultiplies) {
  rel::Schema schema = UnarySchema();
  FinitePdb<Rational> a = FinitePdb<Rational>::CreateOrDie(
      schema, {{rel::Instance(), Rational::Ratio(1, 3)},
               {rel::Instance({U(1)}), Rational::Ratio(2, 3)}});
  FinitePdb<Rational> b = FinitePdb<Rational>::CreateOrDie(
      schema, {{rel::Instance(), Rational::Ratio(1, 4)},
               {rel::Instance({U(2)}), Rational::Ratio(3, 4)}});
  auto product = IndependentProduct(a, b);
  ASSERT_TRUE(product.ok());
  EXPECT_EQ(product.value().num_worlds(), 4);
  EXPECT_EQ(product.value().Probability(rel::Instance({U(1), U(2)})),
            Rational::Ratio(2, 3) * Rational::Ratio(3, 4));
  // The parts remain independent in the product.
  EXPECT_EQ(product.value().Marginal(U(1)), Rational::Ratio(2, 3));
  EXPECT_EQ(product.value().Marginal(U(2)), Rational::Ratio(3, 4));
}

TEST(CombinatorsTest, ProductRejectsOverlap) {
  rel::Schema schema = UnarySchema();
  FinitePdb<Rational> a = FinitePdb<Rational>::CreateOrDie(
      schema, {{rel::Instance({U(1)}), Rational(1)}});
  EXPECT_FALSE(IndependentProduct(a, a).ok());
}

TEST(CombinatorsTest, TiUnionMatchesProductOfExpansions) {
  rel::Schema schema = UnarySchema();
  TiPdb<Rational> a = TiPdb<Rational>::CreateOrDie(
      schema, {{U(1), Rational::Ratio(1, 2)}});
  TiPdb<Rational> b = TiPdb<Rational>::CreateOrDie(
      schema, {{U(2), Rational::Ratio(1, 3)}});
  auto united = TiUnion(a, b);
  ASSERT_TRUE(united.ok());
  auto product = IndependentProduct(a.Expand(), b.Expand());
  ASSERT_TRUE(product.ok());
  EXPECT_DOUBLE_EQ(
      TotalVariationDistance(united.value().Expand(), product.value()),
      0.0);
  // Duplicate facts rejected.
  EXPECT_FALSE(TiUnion(a, a).ok());
}

TEST(CombinatorsTest, BidUnionConcatenatesBlocks) {
  rel::Schema schema = UnarySchema();
  BidPdb<Rational> a = BidPdb<Rational>::CreateOrDie(
      schema, {{{U(1), Rational::Ratio(1, 2)},
                {U(2), Rational::Ratio(1, 2)}}});
  BidPdb<Rational> b = BidPdb<Rational>::CreateOrDie(
      schema, {{{U(3), Rational::Ratio(1, 4)}}});
  auto united = BidUnion(a, b);
  ASSERT_TRUE(united.ok());
  EXPECT_EQ(united.value().num_blocks(), 2);
  EXPECT_EQ(united.value().Residual(1), Rational::Ratio(3, 4));
}

TEST(CombinatorsTest, MixtureBreaksIndependence) {
  // Mixing two deterministic worlds produces the classic correlated
  // PDB — valid, but no longer TI (the Section 2 motivation for
  // representation systems beyond raw world lists).
  rel::Schema schema = UnarySchema();
  FinitePdb<Rational> both = FinitePdb<Rational>::CreateOrDie(
      schema, {{rel::Instance({U(1), U(2)}), Rational(1)}});
  FinitePdb<Rational> neither = FinitePdb<Rational>::CreateOrDie(
      schema, {{rel::Instance(), Rational(1)}});
  auto mixture = Mixture(both, neither, Rational::Ratio(1, 2));
  ASSERT_TRUE(mixture.ok());
  EXPECT_EQ(mixture.value().num_worlds(), 2);
  EXPECT_FALSE(mixture.value().IsTupleIndependent());
  EXPECT_EQ(mixture.value().Marginal(U(1)), Rational::Ratio(1, 2));
  // Lambda validation.
  EXPECT_FALSE(Mixture(both, neither, Rational::Ratio(3, 2)).ok());
}

TEST(MonteCarloTest, FiniteEstimateWithinInterval) {
  rel::Schema schema({{"R", 2}});
  auto r = [](int64_t a, int64_t b) {
    return rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)});
  };
  TiPdb<double> ti = TiPdb<double>::CreateOrDie(
      schema, {{r(1, 2), 0.5}, {r(2, 3), 0.25}, {r(1, 3), 0.75}});
  logic::Formula query =
      logic::ParseSentence("exists x y z. R(x, y) & R(y, z)", schema)
          .value();
  double exact = pqe::QueryProbability(ti, query).value();
  Pcg32 rng(601);
  auto estimate =
      pqe::EstimateQueryProbability(ti, query, 20000, &rng, 0.999);
  ASSERT_TRUE(estimate.ok());
  EXPECT_LE(std::abs(estimate.value().estimate - exact),
            estimate.value().half_width);
  EXPECT_DOUBLE_EQ(estimate.value().sampler_bias, 0.0);
}

TEST(MonteCarloTest, CountableEstimate) {
  // Pr(U(1) present) in Example 5.6 is exactly 1/2.
  pdb::CountableTiPdb ti = core::Example56Ti();
  logic::Formula query =
      logic::ParseSentence("U(1)", ti.schema()).value();
  Pcg32 rng(607);
  auto estimate = pqe::EstimateQueryProbability(ti, query, 4000, &rng,
                                                0.999, 1e-4);
  ASSERT_TRUE(estimate.ok());
  EXPECT_LE(std::abs(estimate.value().estimate - 0.5),
            estimate.value().half_width + estimate.value().sampler_bias);
  EXPECT_DOUBLE_EQ(estimate.value().sampler_bias, 1e-4);
}

TEST(MonteCarloTest, Validation) {
  rel::Schema schema = UnarySchema();
  TiPdb<double> ti =
      TiPdb<double>::CreateOrDie(schema, {{U(1), 0.5}});
  logic::Formula query = logic::ParseSentence("U(1)", schema).value();
  Pcg32 rng(613);
  EXPECT_FALSE(
      pqe::EstimateQueryProbability(ti, query, 0, &rng).ok());
  EXPECT_FALSE(
      pqe::EstimateQueryProbability(ti, query, 10, &rng, 1.5).ok());
  logic::Formula open = logic::ParseFormula("U(x)", schema).value();
  EXPECT_FALSE(
      pqe::EstimateQueryProbability(ti, open, 10, &rng).ok());
}

}  // namespace
}  // namespace pdb
}  // namespace ipdb
