#include "core/conditional_views.h"

#include <gtest/gtest.h>

#include "logic/evaluator.h"
#include "logic/parser.h"
#include "pdb/pushforward.h"
#include "util/random.h"

namespace ipdb {
namespace core {
namespace {

using math::Rational;

rel::Schema UnarySchema() { return rel::Schema({{"U", 1}}); }

rel::Fact U(int64_t v) { return rel::Fact(0, {rel::Value::Int(v)}); }

TEST(CharacterizePreimageTest, MatchesExactImage) {
  // φ₀ must hold on exactly the instances mapping to D₀.
  rel::Schema schema = UnarySchema();
  logic::FoView identity = logic::FoView::Identity(schema);
  rel::Instance d0({U(1)});
  logic::Formula phi0 = CharacterizeViewPreimage(identity, d0);
  EXPECT_TRUE(logic::Satisfies(rel::Instance({U(1)}), schema, phi0));
  EXPECT_FALSE(logic::Satisfies(rel::Instance(), schema, phi0));
  EXPECT_FALSE(logic::Satisfies(rel::Instance({U(1), U(2)}), schema, phi0));
  EXPECT_FALSE(logic::Satisfies(rel::Instance({U(2)}), schema, phi0));
}

TEST(CharacterizePreimageTest, NonInjectiveView) {
  rel::Schema in = UnarySchema();
  rel::Schema out({{"NonEmpty", 0}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.body = logic::ParseFormula("exists x. U(x)", in).value();
  logic::FoView view = logic::FoView::Create(in, out, {def}).value();
  rel::Instance empty_output;
  logic::Formula phi0 = CharacterizeViewPreimage(view, empty_output);
  // Preimage of the empty output = the empty instance only.
  EXPECT_TRUE(logic::Satisfies(rel::Instance(), in, phi0));
  EXPECT_FALSE(logic::Satisfies(rel::Instance({U(3)}), in, phi0));
}

TEST(ConditionalViewsTest, IdentityViewWithCondition) {
  // I = two independent facts; condition: at least one fact present.
  rel::Schema schema = UnarySchema();
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      schema,
      {{U(1), Rational::Ratio(1, 2)}, {U(2), Rational::Ratio(1, 3)}});
  logic::FoView identity = logic::FoView::Identity(schema);
  logic::Formula phi =
      logic::ParseSentence("exists x. U(x)", schema).value();

  auto built = EliminateCondition(ti, identity, phi);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_GE(built.value().k, 1);
  auto tv = VerifyConditionElimination(built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(ConditionalViewsTest, ProjectionViewWithCondition) {
  // Binary facts, projection view, conditioning on a universal sentence.
  rel::Schema in({{"R", 2}});
  rel::Schema out({{"T", 1}});
  rel::Fact r12(0, {rel::Value::Int(1), rel::Value::Int(2)});
  rel::Fact r21(0, {rel::Value::Int(2), rel::Value::Int(1)});
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      in, {{r12, Rational::Ratio(1, 2)}, {r21, Rational::Ratio(1, 4)}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x"};
  def.body = logic::ParseFormula("exists y. R(x, y)", in).value();
  logic::FoView view = logic::FoView::Create(in, out, {def}).value();
  // Condition: R is not symmetric somewhere (i.e. not both facts).
  logic::Formula phi =
      logic::ParseSentence("!(R(1, 2) & R(2, 1))", in).value();

  auto built = EliminateCondition(ti, view, phi);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto tv = VerifyConditionElimination(built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(ConditionalViewsTest, DegeneratePointMass) {
  // Conditioning pins the PDB to a single world: p₀ = 1 short-circuit.
  rel::Schema schema = UnarySchema();
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      schema, {{U(1), Rational::Ratio(1, 2)}});
  logic::FoView identity = logic::FoView::Identity(schema);
  logic::Formula phi = logic::ParseSentence("U(1)", schema).value();
  auto built = EliminateCondition(ti, identity, phi);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().k, 0);
  auto tv = VerifyConditionElimination(built.value());
  ASSERT_TRUE(tv.ok());
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(ConditionalViewsTest, ZeroProbabilityConditionFails) {
  rel::Schema schema = UnarySchema();
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      schema, {{U(1), Rational::Ratio(1, 2)}});
  logic::FoView identity = logic::FoView::Identity(schema);
  logic::Formula phi = logic::ParseSentence("U(99)", schema).value();
  EXPECT_FALSE(EliminateCondition(ti, identity, phi).ok());
}

TEST(ConditionalViewsTest, KGrowsWhenD0IsRare) {
  // With a flat distribution p₀ is small, forcing k > 1.
  rel::Schema schema = UnarySchema();
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      schema,
      {{U(1), Rational::Ratio(1, 2)}, {U(2), Rational::Ratio(1, 2)}});
  logic::FoView identity = logic::FoView::Identity(schema);
  // Condition is vacuous: the target is the full uniform TI itself.
  logic::Formula phi = logic::Truth();
  auto built = EliminateCondition(ti, identity, phi);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_GE(built.value().k, 2);
  auto tv = VerifyConditionElimination(built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

}  // namespace
}  // namespace core
}  // namespace ipdb
