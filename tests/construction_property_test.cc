// Randomized property sweeps over the paper's constructions: every
// random instance of the input class must be represented exactly (or to
// float tolerance for the segmented-fact construction). These are the
// strongest end-to-end checks in the suite — each iteration exercises
// formula construction, infinite-universe model checking, conditioning,
// view application and exact arithmetic together.

#include <gtest/gtest.h>

#include <set>

#include "core/bid_to_ti.h"
#include "core/conditional_views.h"
#include "core/segment_construction.h"
#include "logic/parser.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace {

using math::Rational;

class ConstructionSweep : public ::testing::TestWithParam<int> {};

/// A random BID-PDB with rational marginals: 2 blocks, 1-2 facts each.
pdb::BidPdb<Rational> RandomBid(Pcg32* rng) {
  rel::Schema schema({{"U", 1}});
  std::vector<pdb::BidPdb<Rational>::Block> blocks;
  int64_t next_value = 0;
  for (int b = 0; b < 2; ++b) {
    pdb::BidPdb<Rational>::Block block;
    int facts = 1 + rng->NextBounded(2);
    // Random weights w_i out of denominator 12, total <= 12.
    int budget = 12;
    for (int f = 0; f < facts; ++f) {
      int w = 1 + rng->NextBounded(budget / facts);
      budget -= w;
      block.emplace_back(
          rel::Fact(0, {rel::Value::Int(next_value++)}),
          Rational::Ratio(w, 12));
    }
    blocks.push_back(std::move(block));
  }
  return pdb::BidPdb<Rational>::CreateOrDie(schema, std::move(blocks));
}

TEST_P(ConstructionSweep, BidToTiExactOnRandomBids) {
  Pcg32 rng(9000 + GetParam());
  pdb::BidPdb<Rational> bid = RandomBid(&rng);
  auto built = core::BuildBidToTi(bid);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto tv = core::VerifyBidToTi(bid, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0) << bid.ToString();
}

TEST_P(ConstructionSweep, ConditionEliminationExactOnRandomInputs) {
  Pcg32 rng(9100 + GetParam());
  rel::Schema schema({{"U", 1}});
  // Random 2-fact TI with rational marginals.
  pdb::TiPdb<Rational> ti =
      testing_util::RandomRationalTi(schema, 2, 4, 6, &rng);
  logic::FoView identity = logic::FoView::Identity(schema);
  const char* conditions[] = {
      "exists x. U(x)",
      "!(forall x. U(x) -> false) | true",  // tautology
      "!(U(0) & U(1))",
  };
  logic::Formula phi =
      logic::ParseSentence(conditions[GetParam() % 3], schema).value();
  auto built = core::EliminateCondition(ti, identity, phi);
  if (!built.ok()) {
    // Zero-probability conditions are legitimately rejected.
    EXPECT_EQ(built.status().code(), StatusCode::kFailedPrecondition)
        << built.status().ToString();
    return;
  }
  auto tv = core::VerifyConditionElimination(built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST_P(ConstructionSweep, SegmentConstructionOnRandomPdbs) {
  Pcg32 rng(9200 + GetParam());
  rel::Schema schema({{"U", 1}});
  // Random 2-3 distinct worlds of sizes 0..3 with double probabilities.
  int num_worlds = 2 + rng.NextBounded(2);
  std::set<rel::Instance> seen;
  pdb::FinitePdb<double>::WorldList worlds;
  double remaining = 1.0;
  int64_t base = 0;
  for (int w = 0; w < num_worlds; ++w) {
    int size = rng.NextBounded(4);
    std::vector<rel::Fact> facts;
    for (int f = 0; f < size; ++f) {
      facts.emplace_back(0,
                         std::vector<rel::Value>{rel::Value::Int(base++)});
    }
    rel::Instance world(std::move(facts));
    if (!seen.insert(world).second) continue;
    double p = w + 1 == num_worlds
                   ? remaining
                   : remaining * (0.3 + 0.4 * rng.NextDouble());
    remaining -= (w + 1 == num_worlds) ? 0.0 : p;
    worlds.emplace_back(std::move(world), p);
  }
  // Patch up mass (duplicates skipped rarely).
  double mass = 0.0;
  for (auto& [world, p] : worlds) mass += p;
  for (auto& [world, p] : worlds) p /= mass;
  pdb::FinitePdb<double> input =
      pdb::FinitePdb<double>::CreateOrDie(schema, std::move(worlds));

  int c = 1 + rng.NextBounded(2);
  auto built = core::BuildSegmentConstruction(input, c);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  if (built.value().ti.num_facts() > 12) return;  // keep expansion cheap
  auto tv = core::VerifySegmentConstruction(input, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_NEAR(tv.value(), 0.0, 1e-11) << input.ToString() << " c=" << c;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstructionSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace ipdb
