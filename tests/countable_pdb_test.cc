#include "pdb/countable_pdb.h"

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "util/random.h"

namespace ipdb {
namespace pdb {
namespace {

TEST(CountablePdbTest, Example35Normalizes) {
  CountablePdb pdb = core::Example35();
  SumAnalysis mass = AnalyzeSum(pdb.ProbabilitySeries());
  ASSERT_EQ(mass.kind, SumAnalysis::Kind::kConverged);
  EXPECT_TRUE(mass.enclosure.Contains(1.0));
}

TEST(CountablePdbTest, Example35WorldsAreDisjointAndSized) {
  CountablePdb pdb = core::Example35();
  for (int64_t j = 0; j < 6; ++j) {
    rel::Instance world = pdb.WorldAt(j);
    EXPECT_EQ(world.size(), pdb.SizeAt(j));
    EXPECT_EQ(world.size(), int64_t{1} << (j + 1));
    for (int64_t j2 = 0; j2 < j; ++j2) {
      EXPECT_TRUE(rel::Instance::Intersection(world, pdb.WorldAt(j2))
                      .empty());
    }
  }
}

TEST(CountablePdbTest, Example39Normalizes) {
  CountablePdb pdb = core::Example39();
  SumAnalysis mass = AnalyzeSum(pdb.ProbabilitySeries());
  ASSERT_EQ(mass.kind, SumAnalysis::Kind::kConverged);
  EXPECT_TRUE(mass.enclosure.Contains(1.0));
}

TEST(CountablePdbTest, Example55Normalizes) {
  CountablePdb pdb = core::Example55();
  SumAnalysis mass = AnalyzeSum(pdb.ProbabilitySeries());
  ASSERT_EQ(mass.kind, SumAnalysis::Kind::kConverged);
  EXPECT_TRUE(mass.enclosure.Contains(1.0));
}

TEST(CountablePdbTest, SampleIndexMatchesProbabilities) {
  CountablePdb pdb = core::Example35();
  Pcg32 rng(61);
  const int64_t samples = 50000;
  int64_t count0 = 0;
  for (int64_t i = 0; i < samples; ++i) {
    auto index = pdb.SampleIndex(&rng, 1e-9);
    ASSERT_TRUE(index.ok());
    if (index.value() == 0) ++count0;
  }
  EXPECT_NEAR(count0 / static_cast<double>(samples), 0.75, 0.01);
}

TEST(CountablePdbTest, TruncateAndRenormalize) {
  CountablePdb pdb = core::Example55();
  auto prefix = pdb.TruncateAndRenormalize(4);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix.value().num_worlds(), 4);
  double total = 0.0;
  for (const auto& [world, probability] : prefix.value().worlds()) {
    total += probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Relative probabilities preserved.
  EXPECT_NEAR(prefix.value().Probability(pdb.WorldAt(0)) /
                  prefix.value().Probability(pdb.WorldAt(1)),
              pdb.ProbAt(0) / pdb.ProbAt(1), 1e-9);
}

TEST(CountablePdbTest, CreateRequiresFunctions) {
  CountablePdb::Family family;
  EXPECT_FALSE(CountablePdb::Create(std::move(family)).ok());
}

}  // namespace
}  // namespace pdb
}  // namespace ipdb
