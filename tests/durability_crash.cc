/// Crash-recovery helper for the CI fault leg (not a ctest test). Each
/// mode operates on the instance "db" under a state directory and
/// prints the recovered state as comparable lines:
///
///   FINGERPRINT <hi> <lo>   deep grounding fingerprint of the path
///                           query (bit-identical iff the store is)
///   MARGINAL <a/b>          exact Rational answer of a join query
///   FACTS <n>               global fact count
///   TRUNCATED <0|1>         recovery cut a torn WAL tail (recover)
///
/// Modes:
///   prepare <dir>     create the instance from a fixed seed store
///   mutate <dir>      recover, commit a fixed batch, Sync — the CI leg
///                     arms IPDB_FAULTS to make this fail mid-commit
///   kill9 <dir>       recover, commit batch A, Flush, print the state,
///                     buffer batch B unflushed, raise SIGKILL: batch A
///                     must survive the kill, batch B must vanish
///   checkpoint <dir>  recover, Checkpoint (snapshot + WAL truncate)
///   garble <dir>      append garbage to the WAL (a torn tail)
///   recover <dir>     recover and print, nothing else
///
/// Every failure path exits 1 with the Status on stderr — a crash or
/// abort here is a bug the leg catches by exit code.

#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "durability/manager.h"
#include "kc/compile.h"
#include "kc/evaluate.h"
#include "logic/parser.h"
#include "math/rational.h"
#include "pqe/lineage.h"
#include "storage/ti_store.h"
#include "util/status.h"

namespace ipdb {
namespace {

rel::Fact R(int64_t a, int64_t b) {
  return rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)});
}
rel::Fact S(int64_t a) { return rel::Fact(1, {rel::Value::Int(a)}); }

/// The fixed seed instance: a two-relation store with exact and double
/// marginals, big enough that the path query has nontrivial lineage.
std::shared_ptr<storage::TiStore> SeedStore() {
  storage::TiStore::Builder builder(rel::Schema({{"R", 2}, {"S", 1}}));
  for (int64_t i = 0; i < 24; ++i) {
    builder.Add(R(i, i + 1), 0.25 + 0.5 * static_cast<double>(i % 3) / 4.0);
  }
  for (int64_t i = 0; i < 8; ++i) {
    builder.AddExact(S(i), math::Rational::Ratio(i + 1, 2 * i + 3));
  }
  auto store = builder.Finish();
  if (!store.ok()) {
    std::cerr << "seed store: " << store.status().ToString() << "\n";
    std::exit(1);
  }
  return store.value();
}

int Fail(const Status& status) {
  std::cerr << status.ToString() << "\n";
  return 1;
}

/// FINGERPRINT + MARGINAL + FACTS for `store`.
int PrintState(const storage::TiStore& store) {
  StatusOr<logic::Formula> path = logic::ParseSentence(
      "exists x y z. R(x, y) & R(y, z)", store.schema());
  if (!path.ok()) return Fail(path.status());
  pqe::Lineage lineage;
  StatusOr<pqe::NodeId> root =
      pqe::GroundSentence(store, path.value(), &lineage);
  if (!root.ok()) return Fail(root.status());
  const std::pair<uint64_t, uint64_t> fp =
      kc::LineageFingerprint(lineage, root.value());
  std::cout << "FINGERPRINT " << fp.first << " " << fp.second << "\n";

  StatusOr<logic::Formula> join = logic::ParseSentence(
      "exists x y. R(x, y) & S(y)", store.schema());
  if (!join.ok()) return Fail(join.status());
  pqe::Lineage join_lineage;
  StatusOr<pqe::NodeId> join_root =
      pqe::GroundSentence(store, join.value(), &join_lineage);
  if (!join_root.ok()) return Fail(join_root.status());
  StatusOr<kc::CompiledQuery> compiled =
      kc::CompileLineage(&join_lineage, join_root.value());
  if (!compiled.ok()) return Fail(compiled.status());
  std::vector<math::Rational> probs;
  for (int64_t i = 0; i < store.num_facts(); ++i) {
    const math::Rational* exact = store.ExactAt(i);
    probs.push_back(exact != nullptr
                        ? *exact
                        : math::Rational::Ratio(
                              static_cast<int64_t>(store.ProbAt(i) * 1024),
                              1024));
  }
  StatusOr<math::Rational> answer = kc::EvaluateCircuitExact(
      compiled.value().circuit, compiled.value().root, probs);
  if (!answer.ok()) return Fail(answer.status());
  std::cout << "MARGINAL " << answer.value().ToString() << "\n";
  std::cout << "FACTS " << store.num_facts() << "\n";
  return 0;
}

/// The fixed mutation batch `mutate` commits (and batch A of kill9).
Status BatchA(durability::DurableStore* store) {
  IPDB_RETURN_IF_ERROR(store->Insert(R(100, 101), 0.375).status());
  IPDB_RETURN_IF_ERROR(store->UpdateProbability(R(1, 2), 0.8125));
  IPDB_RETURN_IF_ERROR(
      store->UpdateProbabilityExact(S(3), math::Rational::Ratio(3, 7)));
  IPDB_RETURN_IF_ERROR(store->Erase(R(5, 6)));
  return Status::Ok();
}

/// kill9's unflushed batch: must NOT appear after recovery.
Status BatchB(durability::DurableStore* store) {
  IPDB_RETURN_IF_ERROR(store->Insert(R(200, 201), 0.5).status());
  IPDB_RETURN_IF_ERROR(store->Erase(R(0, 1)));
  return Status::Ok();
}

int Run(const std::string& mode, const std::string& dir) {
  durability::Manager manager(dir);

  if (mode == "prepare") {
    StatusOr<std::unique_ptr<durability::DurableStore>> created =
        manager.Create("db", SeedStore());
    if (!created.ok()) return Fail(created.status());
    return PrintState(created.value()->store());
  }

  if (mode == "garble") {
    std::ofstream torn(manager.WalPath("db"),
                       std::ios::binary | std::ios::app);
    if (!torn) {
      std::cerr << "cannot open " << manager.WalPath("db") << "\n";
      return 1;
    }
    torn.write("\x40\x00\x00\x00torn-tail-garbage", 21);
    std::cout << "GARBLED\n";
    return 0;
  }

  StatusOr<std::unique_ptr<durability::DurableStore>> loaded =
      manager.Load("db");
  if (!loaded.ok()) return Fail(loaded.status());
  std::unique_ptr<durability::DurableStore> store =
      std::move(loaded).value();

  if (mode == "recover") {
    std::cout << "TRUNCATED " << (store->recovery_stats().tail_truncated ? 1 : 0)
              << "\n";
    return PrintState(store->store());
  }
  if (mode == "mutate") {
    Status status = BatchA(store.get());
    if (!status.ok()) return Fail(status);
    status = store->Sync();
    if (!status.ok()) return Fail(status);
    return PrintState(store->store());
  }
  if (mode == "checkpoint") {
    Status status = store->Checkpoint();
    if (!status.ok()) return Fail(status);
    return PrintState(store->store());
  }
  if (mode == "kill9") {
    Status status = BatchA(store.get());
    if (!status.ok()) return Fail(status);
    status = store->Flush();  // batch A reaches the page cache
    if (!status.ok()) return Fail(status);
    if (PrintState(store->store()) != 0) return 1;
    std::cout.flush();
    status = BatchB(store.get());  // buffered in user space only
    if (!status.ok()) return Fail(status);
    ::raise(SIGKILL);  // no destructors, no flush — a real crash
    return 1;          // unreachable
  }
  std::cerr << "unknown mode '" << mode << "'\n";
  return 2;
}

}  // namespace
}  // namespace ipdb

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: durability_crash "
                 "<prepare|mutate|kill9|checkpoint|garble|recover> <dir>\n";
    return 2;
  }
  return ipdb::Run(argv[1], argv[2]);
}
