/// Tests for the durability subsystem: snapshot round trips (bit-
/// identical grounding fingerprints, EXPECT_EQ-exact Rational
/// marginals), corrupt-input rejection as kDataLoss, WAL append/replay
/// equivalence, torn-tail truncation, checkpoint compaction, the
/// Manager recovery path, mutation edge cases both live and through
/// replay, and fault-injected unwinding at every dur.* site.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "durability/crc32c.h"
#include "durability/io.h"
#include "durability/manager.h"
#include "durability/snapshot.h"
#include "durability/wal.h"
#include "kc/compile.h"
#include "kc/evaluate.h"
#include "logic/parser.h"
#include "math/rational.h"
#include "pqe/lineage.h"
#include "storage/ti_store.h"
#include "util/fault.h"

namespace ipdb {
namespace durability {
namespace {

rel::Fact R(int64_t a, int64_t b) {
  return rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)});
}
rel::Fact S(const std::string& name) {
  return rel::Fact(1, {rel::Value::Symbol(name)});
}

/// A store mixing int and symbol values, double and exact marginals.
std::shared_ptr<storage::TiStore> SampleStore() {
  storage::TiStore::Builder builder(rel::Schema({{"R", 2}, {"S", 1}}));
  builder.Add(R(1, 2), 0.5);
  builder.Add(R(2, 3), 0.25);
  builder.Add(R(1, 3), 0.75);
  builder.AddExact(S("alice"), math::Rational::Ratio(2, 5));
  builder.Add(S("bob"), 0.125);
  auto store = builder.Finish();
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return store.value();
}

/// Grounding fingerprint of the two-hop path query over `store` — the
/// bit-identity witness: it depends on dictionary ids, row order and
/// global fact numbering, so it only matches when the restored store is
/// structurally identical.
std::pair<uint64_t, uint64_t> Fingerprint(const storage::TiStore& store) {
  StatusOr<logic::Formula> sentence = logic::ParseSentence(
      "exists x y z. R(x, y) & R(y, z)", store.schema());
  EXPECT_TRUE(sentence.ok());
  pqe::Lineage lineage;
  StatusOr<pqe::NodeId> root =
      pqe::GroundSentence(store, sentence.value(), &lineage);
  EXPECT_TRUE(root.ok()) << root.status().ToString();
  return kc::LineageFingerprint(lineage, root.value());
}

/// Exact query probability computed from the store's own marginals
/// (exact where the side table has one, dyadic double elsewhere).
math::Rational ExactAnswer(const storage::TiStore& store) {
  StatusOr<logic::Formula> sentence = logic::ParseSentence(
      "exists x y. R(x, y) & S(y)", store.schema());
  EXPECT_TRUE(sentence.ok());
  pqe::Lineage lineage;
  StatusOr<pqe::NodeId> root =
      pqe::GroundSentence(store, sentence.value(), &lineage);
  EXPECT_TRUE(root.ok());
  StatusOr<kc::CompiledQuery> compiled =
      kc::CompileLineage(&lineage, root.value());
  EXPECT_TRUE(compiled.ok());
  std::vector<math::Rational> probs;
  for (int64_t i = 0; i < store.num_facts(); ++i) {
    const math::Rational* exact = store.ExactAt(i);
    probs.push_back(exact != nullptr
                        ? *exact
                        : math::Rational::Ratio(
                              static_cast<int64_t>(store.ProbAt(i) * 1024),
                              1024));
  }
  StatusOr<math::Rational> answer = kc::EvaluateCircuitExact(
      compiled.value().circuit, compiled.value().root, probs);
  EXPECT_TRUE(answer.ok());
  return answer.value();
}

/// Full structural + probabilistic equality of two stores: counts,
/// bitwise doubles, EXPECT_EQ-exact Rationals, grounding fingerprint.
void ExpectStoresIdentical(const storage::TiStore& a,
                           const storage::TiStore& b) {
  ASSERT_EQ(a.num_facts(), b.num_facts());
  ASSERT_EQ(a.schema().num_relations(), b.schema().num_relations());
  for (int64_t i = 0; i < a.num_facts(); ++i) {
    EXPECT_EQ(a.FactAt(i), b.FactAt(i)) << "fact " << i;
    // Bitwise, not approximate: the packed column is restored verbatim.
    EXPECT_EQ(a.ProbAt(i), b.ProbAt(i)) << "prob " << i;
    const math::Rational* ea = a.ExactAt(i);
    const math::Rational* eb = b.ExactAt(i);
    ASSERT_EQ(ea != nullptr, eb != nullptr) << "exact presence " << i;
    if (ea != nullptr) {
      EXPECT_EQ(*ea, *eb) << "exact " << i;
    }
  }
  EXPECT_EQ(Fingerprint(a), Fingerprint(b));
  EXPECT_EQ(ExactAnswer(a), ExactAnswer(b));
}

/// Self-deleting scratch directory (fixed instance layout, like the
/// fault workload's).
class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char name[] = "/tmp/ipdb_dur_XXXXXX";
    ASSERT_NE(::mkdtemp(name), nullptr);
    dir_ = name;
  }
  void TearDown() override {
    for (const std::string& instance : {std::string("db"), std::string("x")}) {
      for (const char* file :
           {"/snapshot.ipdb", "/snapshot.ipdb.tmp", "/wal.log"}) {
        ::unlink((dir_ + "/" + instance + file).c_str());
      }
      ::rmdir((dir_ + "/" + instance).c_str());
    }
    ::unlink((dir_ + "/snap").c_str());
    ::unlink((dir_ + "/snap.tmp").c_str());
    ::unlink((dir_ + "/wal").c_str());
    ::rmdir(dir_.c_str());
  }

  std::string dir_;
};

// ---------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------

TEST_F(DurabilityTest, SnapshotRoundTripIsBitIdentical) {
  std::shared_ptr<storage::TiStore> store = SampleStore();
  StatusOr<std::string> bytes = SnapshotCodec::Encode(*store, 42);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  StatusOr<SnapshotResult> decoded = SnapshotCodec::Decode(bytes.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().last_lsn, 42u);
  ExpectStoresIdentical(*store, *decoded.value().store);
}

TEST_F(DurabilityTest, SnapshotRoundTripsAnEmptyRelation) {
  storage::TiStore::Builder builder(rel::Schema({{"R", 2}, {"S", 1}}));
  builder.Add(R(1, 2), 0.5);  // S stays empty
  auto store = builder.Finish();
  ASSERT_TRUE(store.ok());
  StatusOr<std::string> bytes = SnapshotCodec::Encode(*store.value(), 0);
  ASSERT_TRUE(bytes.ok());
  StatusOr<SnapshotResult> decoded = SnapshotCodec::Decode(bytes.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().store->table(1).num_rows(), 0);
  ExpectStoresIdentical(*store.value(), *decoded.value().store);
}

TEST_F(DurabilityTest, SnapshotDecodeRejectsCorruptBytes) {
  StatusOr<std::string> bytes = SnapshotCodec::Encode(*SampleStore(), 7);
  ASSERT_TRUE(bytes.ok());
  const std::string& good = bytes.value();

  // Truncated at every prefix length: kDataLoss, never an abort.
  for (size_t len : {size_t{0}, size_t{4}, size_t{23}, good.size() - 1}) {
    StatusOr<SnapshotResult> r = SnapshotCodec::Decode(good.substr(0, len));
    ASSERT_FALSE(r.ok()) << "prefix " << len;
    EXPECT_EQ(r.status().code(), StatusCode::kDataLoss) << "prefix " << len;
  }
  // Bad magic.
  std::string bad = good;
  bad[0] = 'X';
  EXPECT_EQ(SnapshotCodec::Decode(bad).status().code(), StatusCode::kDataLoss);
  // Unsupported version.
  bad = good;
  bad[8] = static_cast<char>(0x7F);
  EXPECT_EQ(SnapshotCodec::Decode(bad).status().code(), StatusCode::kDataLoss);
  // A flipped header byte (inside last_lsn) fails the header CRC —
  // a silently wrong last_lsn would change which WAL records replay.
  bad = good;
  bad[20] = static_cast<char>(bad[20] ^ 0x40);
  EXPECT_EQ(SnapshotCodec::Decode(bad).status().code(), StatusCode::kDataLoss);
  // A flipped payload byte fails its section CRC.
  bad = good;
  bad[good.size() / 2] = static_cast<char>(bad[good.size() / 2] ^ 0x40);
  StatusOr<SnapshotResult> flipped = SnapshotCodec::Decode(bad);
  ASSERT_FALSE(flipped.ok());
  EXPECT_EQ(flipped.status().code(), StatusCode::kDataLoss);
  // Trailing garbage after the last section.
  bad = good + "junk";
  EXPECT_EQ(SnapshotCodec::Decode(bad).status().code(), StatusCode::kDataLoss);
}

TEST_F(DurabilityTest, WriteSnapshotIsAtomicAndReadable) {
  const std::string path = dir_ + "/snap";
  std::shared_ptr<storage::TiStore> store = SampleStore();
  ASSERT_TRUE(WriteSnapshot(*store, 3, path).ok());
  EXPECT_FALSE(FileExists(path + ".tmp"));  // temp renamed away
  StatusOr<SnapshotResult> read = ReadSnapshot(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().last_lsn, 3u);
  ExpectStoresIdentical(*store, *read.value().store);
  EXPECT_EQ(ReadSnapshot(dir_ + "/absent").status().code(),
            StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------

std::vector<WalRecord> AllOpsRecords() {
  std::vector<WalRecord> records;
  WalRecord insert;
  insert.lsn = 1;
  insert.op = WalOp::kInsert;
  insert.fact = R(9, 9);
  insert.prob = 0.625;
  records.push_back(insert);
  WalRecord update;
  update.lsn = 2;
  update.op = WalOp::kUpdateProbability;
  update.fact = R(9, 9);
  update.prob = 0.25;
  records.push_back(update);
  WalRecord exact;
  exact.lsn = 3;
  exact.op = WalOp::kUpdateProbabilityExact;
  exact.fact = S("alice");
  exact.prob = 1.0 / 3.0;
  exact.exact = math::Rational::Ratio(1, 3);
  records.push_back(exact);
  WalRecord erase;
  erase.lsn = 4;
  erase.op = WalOp::kErase;
  erase.fact = R(9, 9);
  records.push_back(erase);
  return records;
}

TEST_F(DurabilityTest, WalPayloadRoundTripsEveryOp) {
  for (const WalRecord& record : AllOpsRecords()) {
    std::string payload;
    EncodeWalPayload(record, &payload);
    WalRecord back;
    ASSERT_TRUE(DecodeWalPayload(payload.data(), payload.size(), &back));
    EXPECT_EQ(back.lsn, record.lsn);
    EXPECT_EQ(back.op, record.op);
    EXPECT_EQ(back.fact, record.fact);
    EXPECT_EQ(back.prob, record.prob);  // bitwise
    if (record.op == WalOp::kUpdateProbabilityExact) {
      EXPECT_EQ(back.exact, record.exact);
    }
    // Truncated payloads never decode.
    EXPECT_FALSE(DecodeWalPayload(payload.data(), payload.size() - 1, &back));
  }
}

TEST_F(DurabilityTest, WalAppendFlushReplayRoundTrip) {
  const std::string path = dir_ + "/wal";
  StatusOr<std::unique_ptr<Wal>> wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  for (const WalRecord& record : AllOpsRecords()) {
    ASSERT_TRUE(wal.value()->Append(record).ok());
  }
  ASSERT_TRUE(wal.value()->Sync().ok());
  wal.value().reset();

  StatusOr<std::unique_ptr<Wal>> reopened = Wal::Open(path);
  ASSERT_TRUE(reopened.ok());
  std::vector<WalRecord> replayed;
  ReplayStats stats;
  Status status = reopened.value()->Replay(
      /*min_lsn=*/0,
      [&](const WalRecord& record) {
        replayed.push_back(record);
        return Status::Ok();
      },
      &stats);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(stats.applied, 4);
  EXPECT_EQ(stats.skipped, 0);
  EXPECT_FALSE(stats.tail_truncated);
  EXPECT_EQ(stats.last_lsn, 4u);
  ASSERT_EQ(replayed.size(), 4u);
  const std::vector<WalRecord> expected = AllOpsRecords();
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(replayed[i].lsn, expected[i].lsn);
    EXPECT_EQ(replayed[i].op, expected[i].op);
    EXPECT_EQ(replayed[i].fact, expected[i].fact);
  }
}

TEST_F(DurabilityTest, WalReplaySkipsRecordsTheSnapshotCovers) {
  const std::string path = dir_ + "/wal";
  StatusOr<std::unique_ptr<Wal>> wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  for (const WalRecord& record : AllOpsRecords()) {
    ASSERT_TRUE(wal.value()->Append(record).ok());
  }
  ASSERT_TRUE(wal.value()->Flush().ok());
  ReplayStats stats;
  int applied = 0;
  ASSERT_TRUE(wal.value()
                  ->Replay(
                      /*min_lsn=*/2,
                      [&](const WalRecord& record) {
                        EXPECT_GT(record.lsn, 2u);
                        ++applied;
                        return Status::Ok();
                      },
                      &stats)
                  .ok());
  EXPECT_EQ(applied, 2);
  EXPECT_EQ(stats.applied, 2);
  EXPECT_EQ(stats.skipped, 2);
  EXPECT_EQ(stats.last_lsn, 4u);
}

TEST_F(DurabilityTest, WalTornTailIsTruncatedNotFatal) {
  const std::string path = dir_ + "/wal";
  {
    StatusOr<std::unique_ptr<Wal>> wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    for (const WalRecord& record : AllOpsRecords()) {
      ASSERT_TRUE(wal.value()->Append(record).ok());
    }
    ASSERT_TRUE(wal.value()->Flush().ok());
  }
  // A crash mid-append: garbage bytes after the last complete frame.
  {
    std::ofstream torn(path, std::ios::binary | std::ios::app);
    torn.write("\x13\x00\x00\x00garbage-torn-tail", 21);
  }
  StatusOr<std::unique_ptr<Wal>> wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  ReplayStats stats;
  int applied = 0;
  Status status = wal.value()->Replay(
      0,
      [&](const WalRecord&) {
        ++applied;
        return Status::Ok();
      },
      &stats);
  ASSERT_TRUE(status.ok()) << status.ToString();  // torn != corrupt
  EXPECT_EQ(applied, 4);
  EXPECT_TRUE(stats.tail_truncated);

  // The truncation repaired the file in place: a second replay is clean
  // and appends land after the last good record.
  StatusOr<std::unique_ptr<Wal>> again = Wal::Open(path);
  ASSERT_TRUE(again.ok());
  ReplayStats clean;
  ASSERT_TRUE(
      again.value()
          ->Replay(0, [](const WalRecord&) { return Status::Ok(); }, &clean)
          .ok());
  EXPECT_FALSE(clean.tail_truncated);
  EXPECT_EQ(clean.applied, 4);
}

TEST_F(DurabilityTest, WalCrcValidGarbageIsDataLoss) {
  const std::string path = dir_ + "/wal";
  {
    StatusOr<std::unique_ptr<Wal>> wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Flush().ok());
  }
  // A frame whose CRC matches its payload but whose payload is not a
  // record: real corruption, not a torn tail.
  {
    const std::string payload = "not-a-wal-record";
    std::string frame;
    const uint32_t len = static_cast<uint32_t>(payload.size());
    const uint32_t crc = Crc32c(payload.data(), payload.size());
    frame.append(reinterpret_cast<const char*>(&len), 4);
    frame.append(reinterpret_cast<const char*>(&crc), 4);
    frame += payload;
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  }
  StatusOr<std::unique_ptr<Wal>> wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  ReplayStats stats;
  Status status = wal.value()->Replay(
      0, [](const WalRecord&) { return Status::Ok(); }, &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST_F(DurabilityTest, WalOpenRejectsForeignHeader) {
  const std::string path = dir_ + "/wal";
  ASSERT_TRUE(WriteFileSync(path, "NOTAWAL0morebytes").ok());
  StatusOr<std::unique_ptr<Wal>> wal = Wal::Open(path);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kDataLoss);
}

TEST_F(DurabilityTest, WalRollbackDiscardsBufferedAppend) {
  const std::string path = dir_ + "/wal";
  StatusOr<std::unique_ptr<Wal>> wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  WalRecord record = AllOpsRecords()[0];
  const size_t mark = wal.value()->mark();
  ASSERT_TRUE(wal.value()->Append(record).ok());
  EXPECT_GT(wal.value()->pending_bytes(), 0u);
  wal.value()->RollbackTo(mark);
  EXPECT_EQ(wal.value()->pending_bytes(), 0u);
  ASSERT_TRUE(wal.value()->Flush().ok());
  ReplayStats stats;
  ASSERT_TRUE(
      wal.value()
          ->Replay(0, [](const WalRecord&) { return Status::Ok(); }, &stats)
          .ok());
  EXPECT_EQ(stats.applied, 0);
}

// ---------------------------------------------------------------------
// Manager: create / mutate / recover
// ---------------------------------------------------------------------

TEST_F(DurabilityTest, ManagerRecoversJournaledMutations) {
  Manager manager(dir_);
  StatusOr<std::unique_ptr<DurableStore>> created =
      manager.Create("db", SampleStore());
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<DurableStore> live = std::move(created).value();

  ASSERT_TRUE(live->Insert(R(3, 1), 0.875).ok());
  ASSERT_TRUE(live->UpdateProbability(R(1, 2), 0.375).ok());
  ASSERT_TRUE(
      live->UpdateProbabilityExact(S("bob"), math::Rational::Ratio(1, 7))
          .ok());
  ASSERT_TRUE(live->Erase(R(2, 3)).ok());
  ASSERT_TRUE(live->Flush().ok());
  EXPECT_EQ(live->last_lsn(), 4u);

  StatusOr<std::unique_ptr<DurableStore>> recovered = manager.Load("db");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->recovery_stats().applied, 4);
  EXPECT_EQ(recovered.value()->last_lsn(), 4u);
  ExpectStoresIdentical(live->store(), recovered.value()->store());
  // The exact update survives replay with EXPECT_EQ equality.
  const int64_t bob = recovered.value()->store().FindFact(S("bob"));
  ASSERT_GE(bob, 0);
  const math::Rational* exact = recovered.value()->store().ExactAt(bob);
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(*exact, math::Rational::Ratio(1, 7));
}

TEST_F(DurabilityTest, CheckpointTruncatesWalAndStaysRecoverable) {
  Manager manager(dir_);
  StatusOr<std::unique_ptr<DurableStore>> created =
      manager.Create("db", SampleStore());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<DurableStore> live = std::move(created).value();
  ASSERT_TRUE(live->Insert(R(5, 5), 0.5).ok());
  ASSERT_TRUE(live->Checkpoint().ok());
  // Post-checkpoint mutations start a fresh log.
  ASSERT_TRUE(live->UpdateProbability(R(5, 5), 0.75).ok());
  ASSERT_TRUE(live->Flush().ok());

  StatusOr<std::unique_ptr<DurableStore>> recovered = manager.Load("db");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  // Only the post-checkpoint record replays; the insert came from the
  // snapshot.
  EXPECT_EQ(recovered.value()->recovery_stats().applied, 1);
  EXPECT_EQ(recovered.value()->recovery_stats().skipped, 0);
  ExpectStoresIdentical(live->store(), recovered.value()->store());
}

TEST_F(DurabilityTest, ReplayAfterCheckpointSkipsCoveredRecords) {
  // The crash-between-checkpoint-steps case: snapshot written, WAL NOT
  // truncated. Replay must skip every record the snapshot already
  // folded in (lsn <= last_lsn) instead of double-applying.
  Manager manager(dir_);
  StatusOr<std::unique_ptr<DurableStore>> created =
      manager.Create("db", SampleStore());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<DurableStore> live = std::move(created).value();
  ASSERT_TRUE(live->Insert(R(5, 5), 0.5).ok());
  ASSERT_TRUE(live->Sync().ok());
  // Snapshot at the current LSN without truncating the log — exactly
  // the state a crash between WriteSnapshot and TruncateAll leaves.
  ASSERT_TRUE(
      WriteSnapshot(live->store(), live->last_lsn(),
                    manager.SnapshotPath("db"))
          .ok());
  StatusOr<std::unique_ptr<DurableStore>> recovered = manager.Load("db");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->recovery_stats().applied, 0);
  EXPECT_EQ(recovered.value()->recovery_stats().skipped, 1);
  ExpectStoresIdentical(live->store(), recovered.value()->store());
}

TEST_F(DurabilityTest, CreateDiscardsAStaleWal) {
  Manager manager(dir_);
  {
    StatusOr<std::unique_ptr<DurableStore>> first =
        manager.Create("db", SampleStore());
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(first.value()->Insert(R(7, 7), 0.5).ok());
    ASSERT_TRUE(first.value()->Flush().ok());
  }
  // Re-creating the instance must not replay the old instance's log.
  storage::TiStore::Builder builder(rel::Schema({{"R", 2}, {"S", 1}}));
  builder.Add(R(1, 1), 0.5);
  auto fresh = builder.Finish();
  ASSERT_TRUE(fresh.ok());
  {
    StatusOr<std::unique_ptr<DurableStore>> second =
        manager.Create("db", fresh.value());
    ASSERT_TRUE(second.ok());
  }
  StatusOr<std::unique_ptr<DurableStore>> recovered = manager.Load("db");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->recovery_stats().applied, 0);
  EXPECT_EQ(recovered.value()->store().num_facts(), 1);
}

TEST_F(DurabilityTest, ManagerValidatesNamesAndLists) {
  Manager manager(dir_);
  EXPECT_FALSE(Manager::ValidateName("").ok());
  EXPECT_FALSE(Manager::ValidateName("..").ok());
  EXPECT_FALSE(Manager::ValidateName("a/b").ok());
  EXPECT_TRUE(Manager::ValidateName("prod-db_1.2").ok());
  EXPECT_FALSE(manager.Exists("db"));
  StatusOr<std::vector<std::string>> empty = manager.List();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
  ASSERT_TRUE(manager.Create("db", SampleStore()).ok());
  ASSERT_TRUE(manager.Create("x", SampleStore()).ok());
  EXPECT_TRUE(manager.Exists("db"));
  StatusOr<std::vector<std::string>> names = manager.List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"db", "x"}));
  EXPECT_EQ(manager.Load("absent").status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------
// Mutation edge cases, live and through replay (satellite 4)
// ---------------------------------------------------------------------

TEST_F(DurabilityTest, EraseOfRelationsLastFactSurvivesReplay) {
  Manager manager(dir_);
  StatusOr<std::unique_ptr<DurableStore>> created =
      manager.Create("db", SampleStore());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<DurableStore> live = std::move(created).value();
  // S has two facts; erase both — the relation ends up empty.
  ASSERT_TRUE(live->Erase(S("alice")).ok());
  ASSERT_TRUE(live->Erase(S("bob")).ok());
  EXPECT_EQ(live->store().table(1).num_rows(), 0);
  ASSERT_TRUE(live->Flush().ok());
  StatusOr<std::unique_ptr<DurableStore>> recovered = manager.Load("db");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->store().table(1).num_rows(), 0);
  ExpectStoresIdentical(live->store(), recovered.value()->store());
}

TEST_F(DurabilityTest, UpdateAfterEraseFailsWithoutJournalingIt) {
  Manager manager(dir_);
  StatusOr<std::unique_ptr<DurableStore>> created =
      manager.Create("db", SampleStore());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<DurableStore> live = std::move(created).value();
  ASSERT_TRUE(live->Erase(R(1, 2)).ok());
  // The rejected apply rolls its WAL record back: the LSN does not
  // advance and replay sees only the erase.
  EXPECT_FALSE(live->UpdateProbability(R(1, 2), 0.9).ok());
  EXPECT_FALSE(
      live->UpdateProbabilityExact(R(1, 2), math::Rational::Ratio(1, 2))
          .ok());
  EXPECT_FALSE(live->Erase(R(1, 2)).ok());
  EXPECT_EQ(live->last_lsn(), 1u);
  ASSERT_TRUE(live->Flush().ok());
  StatusOr<std::unique_ptr<DurableStore>> recovered = manager.Load("db");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->recovery_stats().applied, 1);
  ExpectStoresIdentical(live->store(), recovered.value()->store());
}

TEST_F(DurabilityTest, ReinsertOfErasedFactSurvivesReplay) {
  Manager manager(dir_);
  StatusOr<std::unique_ptr<DurableStore>> created =
      manager.Create("db", SampleStore());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<DurableStore> live = std::move(created).value();
  ASSERT_TRUE(live->Erase(R(1, 2)).ok());
  StatusOr<int64_t> back = live->Insert(R(1, 2), 0.0625);
  ASSERT_TRUE(back.ok());
  // Re-inserted facts append: new row, new global index, new marginal.
  EXPECT_EQ(back.value(), live->store().num_facts() - 1);
  ASSERT_TRUE(live->Flush().ok());
  StatusOr<std::unique_ptr<DurableStore>> recovered = manager.Load("db");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const int64_t i = recovered.value()->store().FindFact(R(1, 2));
  ASSERT_GE(i, 0);
  EXPECT_EQ(recovered.value()->store().ProbAt(i), 0.0625);
  ExpectStoresIdentical(live->store(), recovered.value()->store());
}

TEST_F(DurabilityTest, ExactSideTableChurnSurvivesReplay) {
  Manager manager(dir_);
  StatusOr<std::unique_ptr<DurableStore>> created =
      manager.Create("db", SampleStore());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<DurableStore> live = std::move(created).value();
  // exact -> double (clears the side entry) -> exact again; and a
  // double-marginal fact gaining an exact entry, then being erased.
  ASSERT_TRUE(
      live->UpdateProbabilityExact(S("alice"), math::Rational::Ratio(1, 3))
          .ok());
  ASSERT_TRUE(live->UpdateProbability(S("alice"), 0.5).ok());
  ASSERT_TRUE(
      live->UpdateProbabilityExact(S("alice"), math::Rational::Ratio(2, 7))
          .ok());
  ASSERT_TRUE(
      live->UpdateProbabilityExact(R(2, 3), math::Rational::Ratio(5, 9))
          .ok());
  ASSERT_TRUE(live->Erase(R(2, 3)).ok());
  ASSERT_TRUE(live->Flush().ok());

  const int64_t alice = live->store().FindFact(S("alice"));
  ASSERT_GE(alice, 0);
  const math::Rational* exact = live->store().ExactAt(alice);
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(*exact, math::Rational::Ratio(2, 7));

  StatusOr<std::unique_ptr<DurableStore>> recovered = manager.Load("db");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectStoresIdentical(live->store(), recovered.value()->store());
}

// ---------------------------------------------------------------------
// Fault-injected unwinding at every dur.* site
// ---------------------------------------------------------------------

#if defined(IPDB_FAULT_INJECTION)

TEST_F(DurabilityTest, SnapshotWriteFaultLeavesOldSnapshotIntact) {
  Manager manager(dir_);
  ASSERT_TRUE(manager.Create("db", SampleStore()).ok());
  const auto before = Fingerprint(*ReadSnapshot(manager.SnapshotPath("db"))
                                       .value()
                                       .store);
  for (const char* site : {"dur.snapshot.write", "dur.rename"}) {
    SCOPED_TRACE(site);
    fault::ScopedFaultPlan plan({{site, 1}});
    Status status = manager.Save("db", *SampleStore());
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_EQ(plan.triggered(site), 1);
    // The published snapshot is the old one, readable and identical.
    StatusOr<SnapshotResult> read = ReadSnapshot(manager.SnapshotPath("db"));
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    EXPECT_EQ(Fingerprint(*read.value().store), before);
  }
}

TEST_F(DurabilityTest, WalAppendFaultRollsTheMutationBack) {
  Manager manager(dir_);
  StatusOr<std::unique_ptr<DurableStore>> created =
      manager.Create("db", SampleStore());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<DurableStore> live = std::move(created).value();
  const int64_t facts_before = live->store().num_facts();
  {
    fault::ScopedFaultPlan plan({{"dur.wal.append", 1}});
    StatusOr<int64_t> inserted = live->Insert(R(8, 8), 0.5);
    ASSERT_FALSE(inserted.ok());
    EXPECT_EQ(inserted.status().code(), StatusCode::kInternal);
    EXPECT_EQ(plan.triggered("dur.wal.append"), 1);
  }
  // Log-then-apply: the failed append journaled nothing and applied
  // nothing; the next mutation gets the next LSN and recovery agrees.
  EXPECT_EQ(live->store().num_facts(), facts_before);
  EXPECT_EQ(live->last_lsn(), 0u);
  ASSERT_TRUE(live->Insert(R(8, 8), 0.5).ok());
  EXPECT_EQ(live->last_lsn(), 1u);
  ASSERT_TRUE(live->Flush().ok());
  StatusOr<std::unique_ptr<DurableStore>> recovered = manager.Load("db");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ExpectStoresIdentical(live->store(), recovered.value()->store());
}

TEST_F(DurabilityTest, ReplayFaultFailsLoadCleanlyAndRetrySucceeds) {
  Manager manager(dir_);
  {
    StatusOr<std::unique_ptr<DurableStore>> created =
        manager.Create("db", SampleStore());
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE(created.value()->Insert(R(6, 6), 0.5).ok());
    ASSERT_TRUE(created.value()->Flush().ok());
  }
  {
    fault::ScopedFaultPlan plan({{"dur.wal.replay", 1}});
    StatusOr<std::unique_ptr<DurableStore>> load = manager.Load("db");
    ASSERT_FALSE(load.ok());
    EXPECT_EQ(load.status().code(), StatusCode::kInternal);
    EXPECT_EQ(plan.triggered("dur.wal.replay"), 1);
  }
  // Nothing was damaged: the retry recovers everything.
  StatusOr<std::unique_ptr<DurableStore>> retry = manager.Load("db");
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry.value()->recovery_stats().applied, 1);
  EXPECT_GE(retry.value()->store().FindFact(R(6, 6)), 0);
}

#endif  // IPDB_FAULT_INJECTION

}  // namespace
}  // namespace durability
}  // namespace ipdb
