// Assorted edge-case coverage across modules: multi-relation views and
// constructions, zero-arity relations, degenerate probabilities,
// certificate-free analysis paths, and boundary validations.

#include <gtest/gtest.h>

#include "core/conditional_views.h"
#include "core/segment_construction.h"
#include "logic/evaluator.h"
#include "logic/parser.h"
#include "pdb/bid_pdb.h"
#include "pdb/conditioning.h"
#include "pdb/pushforward.h"
#include "pdb/ti_pdb.h"
#include "test_util.h"
#include "util/random.h"
#include "util/series.h"

namespace ipdb {
namespace {

using math::Rational;

TEST(EdgeCasesTest, ZeroArityRelationsThroughTheStack) {
  // 0-ary relations are propositions; they must work through facts,
  // formulas, views and pushforward.
  rel::Schema schema({{"Rain", 0}, {"Wet", 0}});
  rel::Fact rain(0, {});
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      schema, {{rain, Rational::Ratio(1, 3)}});

  logic::FoView::Definition def;
  def.output_relation = 1;
  def.body = logic::ParseFormula("Rain()", schema).value();
  logic::FoView::Definition keep;
  keep.output_relation = 0;
  keep.body = logic::ParseFormula("Rain()", schema).value();
  logic::FoView view =
      logic::FoView::Create(schema, schema, {keep, def}).value();

  pdb::FinitePdb<Rational> image =
      pdb::PushforwardOrDie(ti.Expand(), view);
  rel::Instance both({rain, rel::Fact(1, {})});
  EXPECT_EQ(image.Probability(both), Rational::Ratio(1, 3));
  EXPECT_EQ(image.Probability(rel::Instance()), Rational::Ratio(2, 3));
}

TEST(EdgeCasesTest, MultiRelationConditionElimination) {
  // Theorem 4.1 with a two-relation input schema: Relativize must hit
  // every relation and the copy schema must track both.
  rel::Schema in({{"A", 1}, {"B", 1}});
  rel::Fact a(0, {rel::Value::Int(1)});
  rel::Fact b(1, {rel::Value::Int(2)});
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      in, {{a, Rational::Ratio(1, 2)}, {b, Rational::Ratio(1, 3)}});
  logic::FoView identity = logic::FoView::Identity(in);
  logic::Formula phi =
      logic::ParseSentence("(exists x. A(x)) | (exists x. B(x))", in)
          .value();
  auto built = core::EliminateCondition(ti, identity, phi);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto tv = core::VerifyConditionElimination(built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(EdgeCasesTest, SegmentConstructionSingleWorldPointMass) {
  // A one-world PDB: one chain, condition trivially satisfiable, view
  // reproduces the world with probability 1.
  rel::Schema schema({{"U", 1}});
  rel::Instance world({rel::Fact(0, {rel::Value::Int(1)}),
                       rel::Fact(0, {rel::Value::Int(2)})});
  pdb::FinitePdb<double> input =
      pdb::FinitePdb<double>::CreateOrDie(schema, {{world, 1.0}});
  auto built = core::BuildSegmentConstruction(input, 1);
  ASSERT_TRUE(built.ok());
  auto tv = core::VerifySegmentConstruction(input, built.value());
  ASSERT_TRUE(tv.ok());
  EXPECT_NEAR(tv.value(), 0.0, 1e-12);
}

TEST(EdgeCasesTest, ConditionOnParsedSentenceOverBid) {
  // Conditioning with a universally quantified constraint touching two
  // relations.
  rel::Schema schema({{"P", 1}, {"Q", 1}});
  rel::Fact p1(0, {rel::Value::Int(1)});
  rel::Fact q1(1, {rel::Value::Int(1)});
  rel::Fact q2(1, {rel::Value::Int(2)});
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      schema, {{p1, Rational::Ratio(1, 2)},
               {q1, Rational::Ratio(1, 2)},
               {q2, Rational::Ratio(1, 2)}});
  logic::Formula constraint =
      logic::ParseSentence("forall x. P(x) -> Q(x)", schema).value();
  auto conditioned = pdb::Condition(ti.Expand(), constraint);
  ASSERT_TRUE(conditioned.ok());
  // Worlds with P(1) but not Q(1) are gone.
  for (const auto& [world, probability] : conditioned.value().worlds()) {
    EXPECT_TRUE(!world.Contains(p1) || world.Contains(q1));
  }
  // Mass: P(constraint) = 1 - P(p1)·(1-P(q1)) = 3/4; check a marginal.
  EXPECT_EQ(conditioned.value().Marginal(p1),
            Rational::Ratio(1, 2) * Rational::Ratio(1, 2) /
                Rational::Ratio(3, 4));
}

TEST(EdgeCasesTest, SeriesBudgetExhaustedStillCertified) {
  // When max_terms runs out but an upper tail certificate exists, the
  // analysis still returns a (wide) certified enclosure.
  Series series = PowerSeries(1.0, 1.5);
  SumOptions options;
  options.max_terms = 64;
  options.target_width = 1e-12;  // unreachable in 64 terms
  SumAnalysis result = AnalyzeSum(series, options);
  EXPECT_EQ(result.kind, SumAnalysis::Kind::kConverged);
  EXPECT_GT(result.enclosure.width(), 1e-12);
  EXPECT_TRUE(result.enclosure.Contains(2.612375));  // zeta(1.5) ≈ 2.6124
}

TEST(EdgeCasesTest, CountableTiNeedsCertificatesForMomentsAndSampling) {
  pdb::CountableTiPdb::Family family;
  family.schema = rel::Schema({{"U", 1}});
  family.fact_at = [](int64_t i) {
    return rel::Fact(0, {rel::Value::Int(i)});
  };
  family.marginal_at = [](int64_t i) {
    return std::pow(0.5, static_cast<double>(i + 1));
  };
  family.description = "certificate-free";
  auto ti = pdb::CountableTiPdb::Create(std::move(family));
  ASSERT_TRUE(ti.ok());
  EXPECT_FALSE(ti.value().SizeMomentInterval(1).ok());
  Pcg32 rng(811);
  EXPECT_FALSE(ti.value().Sample(&rng).ok());
  // Without certificates the well-definedness check is inconclusive.
  SumOptions options;
  options.max_terms = 128;
  EXPECT_EQ(ti.value().CheckWellDefined(options).kind,
            SumAnalysis::Kind::kInconclusive);
}

TEST(EdgeCasesTest, FinitePdbDoubleToleranceBoundary) {
  rel::Schema schema({{"U", 1}});
  rel::Instance w({rel::Fact(0, {rel::Value::Int(1)})});
  // Slightly off mass within tolerance: accepted.
  EXPECT_TRUE(pdb::FinitePdb<double>::Create(
                  schema, {{rel::Instance(), 0.5 + 4e-10},
                           {w, 0.5}})
                  .ok());
  // Beyond tolerance: rejected.
  EXPECT_FALSE(pdb::FinitePdb<double>::Create(
                   schema, {{rel::Instance(), 0.51}, {w, 0.5}})
                   .ok());
}

TEST(EdgeCasesTest, GuardWithRepeatedVariableInAtom) {
  // Guard candidate extraction must respect a variable occurring twice
  // in one atom: R(x, x) only matches diagonal facts.
  rel::Schema schema({{"R", 2}});
  rel::Instance instance(
      {rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(1)}),
       rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(2)})});
  logic::Formula diag =
      logic::ParseSentence("exists x. R(x, x)", schema).value();
  EXPECT_TRUE(logic::Satisfies(instance, schema, diag));
  rel::Instance off_diag(
      {rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(2)})});
  EXPECT_FALSE(logic::Satisfies(off_diag, schema, diag));
}

TEST(EdgeCasesTest, ViewWithUnconstrainedHeadVariable) {
  // A head variable absent from the body ranges over adom ∪ consts
  // (documented convention): T(x, y) := S(x) pairs every S-element with
  // every candidate.
  rel::Schema in({{"S", 1}});
  rel::Schema out({{"T", 2}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x", "y"};
  def.body = logic::ParseFormula("S(x)", in).value();
  logic::FoView view = logic::FoView::Create(in, out, {def}).value();
  rel::Instance instance({rel::Fact(0, {rel::Value::Int(1)}),
                          rel::Fact(0, {rel::Value::Int(2)})});
  rel::Instance image = view.ApplyOrDie(instance);
  EXPECT_EQ(image.size(), 4);  // {1,2} × {1,2}
}

TEST(EdgeCasesTest, BidZeroResidualSamplingAlwaysPicks) {
  rel::Schema schema({{"U", 1}});
  pdb::BidPdb<double> bid = pdb::BidPdb<double>::CreateOrDie(
      schema, {{{rel::Fact(0, {rel::Value::Int(1)}), 0.5},
                {rel::Fact(0, {rel::Value::Int(2)}), 0.5}}});
  Pcg32 rng(823);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(bid.Sample(&rng).size(), 1);
  }
}

}  // namespace
}  // namespace ipdb
