// Assorted edge-case coverage across modules: multi-relation views and
// constructions, zero-arity relations, degenerate probabilities,
// certificate-free analysis paths, and boundary validations.

#include <gtest/gtest.h>

#include "core/conditional_views.h"
#include "core/segment_construction.h"
#include "kc/compile.h"
#include "pdb/information.h"
#include "logic/evaluator.h"
#include "logic/parser.h"
#include "pdb/bid_pdb.h"
#include "pdb/conditioning.h"
#include "pdb/pushforward.h"
#include "pdb/ti_pdb.h"
#include "pqe/lineage.h"
#include "pqe/wmc.h"
#include "test_util.h"
#include "util/budget.h"
#include "util/random.h"
#include "util/series.h"

namespace ipdb {
namespace {

using math::Rational;

TEST(EdgeCasesTest, ZeroArityRelationsThroughTheStack) {
  // 0-ary relations are propositions; they must work through facts,
  // formulas, views and pushforward.
  rel::Schema schema({{"Rain", 0}, {"Wet", 0}});
  rel::Fact rain(0, {});
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      schema, {{rain, Rational::Ratio(1, 3)}});

  logic::FoView::Definition def;
  def.output_relation = 1;
  def.body = logic::ParseFormula("Rain()", schema).value();
  logic::FoView::Definition keep;
  keep.output_relation = 0;
  keep.body = logic::ParseFormula("Rain()", schema).value();
  logic::FoView view =
      logic::FoView::Create(schema, schema, {keep, def}).value();

  pdb::FinitePdb<Rational> image =
      pdb::PushforwardOrDie(ti.Expand(), view);
  rel::Instance both({rain, rel::Fact(1, {})});
  EXPECT_EQ(image.Probability(both), Rational::Ratio(1, 3));
  EXPECT_EQ(image.Probability(rel::Instance()), Rational::Ratio(2, 3));
}

TEST(EdgeCasesTest, MultiRelationConditionElimination) {
  // Theorem 4.1 with a two-relation input schema: Relativize must hit
  // every relation and the copy schema must track both.
  rel::Schema in({{"A", 1}, {"B", 1}});
  rel::Fact a(0, {rel::Value::Int(1)});
  rel::Fact b(1, {rel::Value::Int(2)});
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      in, {{a, Rational::Ratio(1, 2)}, {b, Rational::Ratio(1, 3)}});
  logic::FoView identity = logic::FoView::Identity(in);
  logic::Formula phi =
      logic::ParseSentence("(exists x. A(x)) | (exists x. B(x))", in)
          .value();
  auto built = core::EliminateCondition(ti, identity, phi);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto tv = core::VerifyConditionElimination(built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(EdgeCasesTest, SegmentConstructionSingleWorldPointMass) {
  // A one-world PDB: one chain, condition trivially satisfiable, view
  // reproduces the world with probability 1.
  rel::Schema schema({{"U", 1}});
  rel::Instance world({rel::Fact(0, {rel::Value::Int(1)}),
                       rel::Fact(0, {rel::Value::Int(2)})});
  pdb::FinitePdb<double> input =
      pdb::FinitePdb<double>::CreateOrDie(schema, {{world, 1.0}});
  auto built = core::BuildSegmentConstruction(input, 1);
  ASSERT_TRUE(built.ok());
  auto tv = core::VerifySegmentConstruction(input, built.value());
  ASSERT_TRUE(tv.ok());
  EXPECT_NEAR(tv.value(), 0.0, 1e-12);
}

TEST(EdgeCasesTest, ConditionOnParsedSentenceOverBid) {
  // Conditioning with a universally quantified constraint touching two
  // relations.
  rel::Schema schema({{"P", 1}, {"Q", 1}});
  rel::Fact p1(0, {rel::Value::Int(1)});
  rel::Fact q1(1, {rel::Value::Int(1)});
  rel::Fact q2(1, {rel::Value::Int(2)});
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      schema, {{p1, Rational::Ratio(1, 2)},
               {q1, Rational::Ratio(1, 2)},
               {q2, Rational::Ratio(1, 2)}});
  logic::Formula constraint =
      logic::ParseSentence("forall x. P(x) -> Q(x)", schema).value();
  auto conditioned = pdb::Condition(ti.Expand(), constraint);
  ASSERT_TRUE(conditioned.ok());
  // Worlds with P(1) but not Q(1) are gone.
  for (const auto& [world, probability] : conditioned.value().worlds()) {
    EXPECT_TRUE(!world.Contains(p1) || world.Contains(q1));
  }
  // Mass: P(constraint) = 1 - P(p1)·(1-P(q1)) = 3/4; check a marginal.
  EXPECT_EQ(conditioned.value().Marginal(p1),
            Rational::Ratio(1, 2) * Rational::Ratio(1, 2) /
                Rational::Ratio(3, 4));
}

TEST(EdgeCasesTest, SeriesBudgetExhaustedStillCertified) {
  // When max_terms runs out but an upper tail certificate exists, the
  // analysis still returns a (wide) certified enclosure.
  Series series = PowerSeries(1.0, 1.5);
  SumOptions options;
  options.max_terms = 64;
  options.target_width = 1e-12;  // unreachable in 64 terms
  SumAnalysis result = AnalyzeSum(series, options);
  EXPECT_EQ(result.kind, SumAnalysis::Kind::kConverged);
  EXPECT_GT(result.enclosure.width(), 1e-12);
  EXPECT_TRUE(result.enclosure.Contains(2.612375));  // zeta(1.5) ≈ 2.6124
}

TEST(EdgeCasesTest, CountableTiNeedsCertificatesForMomentsAndSampling) {
  pdb::CountableTiPdb::Family family;
  family.schema = rel::Schema({{"U", 1}});
  family.fact_at = [](int64_t i) {
    return rel::Fact(0, {rel::Value::Int(i)});
  };
  family.marginal_at = [](int64_t i) {
    return std::pow(0.5, static_cast<double>(i + 1));
  };
  family.description = "certificate-free";
  auto ti = pdb::CountableTiPdb::Create(std::move(family));
  ASSERT_TRUE(ti.ok());
  EXPECT_FALSE(ti.value().SizeMomentInterval(1).ok());
  Pcg32 rng(811);
  EXPECT_FALSE(ti.value().Sample(&rng).ok());
  // Without certificates the well-definedness check is inconclusive.
  SumOptions options;
  options.max_terms = 128;
  EXPECT_EQ(ti.value().CheckWellDefined(options).kind,
            SumAnalysis::Kind::kInconclusive);
}

TEST(EdgeCasesTest, FinitePdbDoubleToleranceBoundary) {
  rel::Schema schema({{"U", 1}});
  rel::Instance w({rel::Fact(0, {rel::Value::Int(1)})});
  // Slightly off mass within tolerance: accepted.
  EXPECT_TRUE(pdb::FinitePdb<double>::Create(
                  schema, {{rel::Instance(), 0.5 + 4e-10},
                           {w, 0.5}})
                  .ok());
  // Beyond tolerance: rejected.
  EXPECT_FALSE(pdb::FinitePdb<double>::Create(
                   schema, {{rel::Instance(), 0.51}, {w, 0.5}})
                   .ok());
}

TEST(EdgeCasesTest, GuardWithRepeatedVariableInAtom) {
  // Guard candidate extraction must respect a variable occurring twice
  // in one atom: R(x, x) only matches diagonal facts.
  rel::Schema schema({{"R", 2}});
  rel::Instance instance(
      {rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(1)}),
       rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(2)})});
  logic::Formula diag =
      logic::ParseSentence("exists x. R(x, x)", schema).value();
  EXPECT_TRUE(logic::Satisfies(instance, schema, diag));
  rel::Instance off_diag(
      {rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(2)})});
  EXPECT_FALSE(logic::Satisfies(off_diag, schema, diag));
}

TEST(EdgeCasesTest, ViewWithUnconstrainedHeadVariable) {
  // A head variable absent from the body ranges over adom ∪ consts
  // (documented convention): T(x, y) := S(x) pairs every S-element with
  // every candidate.
  rel::Schema in({{"S", 1}});
  rel::Schema out({{"T", 2}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x", "y"};
  def.body = logic::ParseFormula("S(x)", in).value();
  logic::FoView view = logic::FoView::Create(in, out, {def}).value();
  rel::Instance instance({rel::Fact(0, {rel::Value::Int(1)}),
                          rel::Fact(0, {rel::Value::Int(2)})});
  rel::Instance image = view.ApplyOrDie(instance);
  EXPECT_EQ(image.size(), 4);  // {1,2} × {1,2}
}

TEST(EdgeCasesTest, BidZeroResidualSamplingAlwaysPicks) {
  rel::Schema schema({{"U", 1}});
  pdb::BidPdb<double> bid = pdb::BidPdb<double>::CreateOrDie(
      schema, {{{rel::Fact(0, {rel::Value::Int(1)}), 0.5},
                {rel::Fact(0, {rel::Value::Int(2)}), 0.5}}});
  Pcg32 rng(823);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(bid.Sample(&rng).size(), 1);
  }
}

TEST(EdgeCasesTest, OversizedTiExpansionIsARecoverableStatus) {
  // 21 uncertain facts exceed the 2^20-world enumeration limit: the
  // governed entry point reports kResourceExhausted instead of dying.
  rel::Schema schema({{"U", 1}});
  pdb::TiPdb<double>::FactList facts;
  for (int i = 0; i < 21; ++i) {
    facts.emplace_back(rel::Fact(0, {rel::Value::Int(i)}), 0.5);
  }
  pdb::TiPdb<double> ti =
      pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
  StatusOr<pdb::FinitePdb<double>> expanded = ti.TryExpand();
  ASSERT_FALSE(expanded.ok());
  EXPECT_EQ(expanded.status().code(), StatusCode::kResourceExhausted);
  // Certain facts (marginal 0 or 1) do not count against the limit.
  pdb::TiPdb<double>::FactList mixed;
  for (int i = 0; i < 21; ++i) {
    mixed.emplace_back(rel::Fact(0, {rel::Value::Int(i)}),
                       i < 3 ? 0.5 : 1.0);
  }
  pdb::TiPdb<double> small_ti =
      pdb::TiPdb<double>::CreateOrDie(schema, std::move(mixed));
  EXPECT_TRUE(small_ti.TryExpand().ok());
}

TEST(EdgeCasesTest, OversizedBidExpansionIsARecoverableStatus) {
  // 23 one-fact blocks give 2^23 worlds, past the 2^22 expansion cap.
  rel::Schema schema({{"U", 1}});
  std::vector<pdb::BidPdb<double>::Block> blocks;
  for (int i = 0; i < 23; ++i) {
    blocks.push_back({{rel::Fact(0, {rel::Value::Int(i)}), 0.4}});
  }
  pdb::BidPdb<double> bid =
      pdb::BidPdb<double>::CreateOrDie(schema, std::move(blocks));
  StatusOr<pdb::FinitePdb<double>> expanded = bid.TryExpand();
  ASSERT_FALSE(expanded.ok());
  EXPECT_EQ(expanded.status().code(), StatusCode::kResourceExhausted);
}

TEST(EdgeCasesTest, OversizedIndependenceChecksAreRecoverable) {
  // A single certain world with 25 facts: the 2^25-subset tuple-
  // independence check refuses with a Status rather than running.
  rel::Schema schema({{"U", 1}});
  std::vector<rel::Fact> many;
  for (int i = 0; i < 25; ++i) {
    many.push_back(rel::Fact(0, {rel::Value::Int(i)}));
  }
  pdb::FinitePdb<double> pdb = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{rel::Instance(std::move(many)), 1.0}});
  StatusOr<bool> ti_check = pdb.CheckTupleIndependent();
  ASSERT_FALSE(ti_check.ok());
  EXPECT_EQ(ti_check.status().code(), StatusCode::kResourceExhausted);

  std::vector<std::vector<rel::Fact>> blocks(13);
  for (int i = 0; i < 13; ++i) {
    blocks[i].push_back(rel::Fact(0, {rel::Value::Int(i)}));
  }
  StatusOr<bool> bid_check = pdb.CheckBlockIndependentDisjoint(blocks);
  ASSERT_FALSE(bid_check.ok());
  EXPECT_EQ(bid_check.status().code(), StatusCode::kResourceExhausted);
}

TEST(EdgeCasesTest, DistanceAcrossSchemasIsInvalidArgument) {
  rel::Schema unary({{"U", 1}});
  rel::Schema binary({{"R", 2}});
  pdb::FinitePdb<double> a = pdb::FinitePdb<double>::CreateOrDie(
      unary, {{rel::Instance(), 1.0}});
  pdb::FinitePdb<double> b = pdb::FinitePdb<double>::CreateOrDie(
      binary, {{rel::Instance(), 1.0}});
  StatusOr<double> tv = pdb::TryTotalVariationDistance(a, b);
  ASSERT_FALSE(tv.ok());
  EXPECT_EQ(tv.status().code(), StatusCode::kInvalidArgument);
  StatusOr<double> hellinger = pdb::TryHellingerDistance(a, b);
  ASSERT_FALSE(hellinger.ok());
  EXPECT_EQ(hellinger.status().code(), StatusCode::kInvalidArgument);
  // Same-schema distances still agree with the OrDie entry points.
  pdb::FinitePdb<double> c = pdb::FinitePdb<double>::CreateOrDie(
      unary, {{rel::Instance(), 1.0}});
  EXPECT_EQ(pdb::TryTotalVariationDistance(a, c).value(),
            pdb::TotalVariationDistance(a, c));
  EXPECT_EQ(pdb::TryHellingerDistance(a, c).value(),
            pdb::HellingerDistance(a, c));
}

TEST(EdgeCasesTest, DegenerateBudgetsFailCleanlyNotFatally) {
  // A zero-length timeout, a one-node cap and a one-limb cap are all
  // absurd budgets a caller can construct; each must come back as the
  // right StatusCode, never an abort.
  pqe::Lineage lineage;
  std::vector<pqe::NodeId> terms;
  for (int i = 0; i + 1 < 10; ++i) {
    terms.push_back(
        lineage.MakeAnd({lineage.Var(i), lineage.Var(i + 1)}));
  }
  pqe::NodeId root = lineage.MakeOr(std::move(terms));

  ExecutionBudget zero_deadline =
      ExecutionBudget::WithTimeout(std::chrono::nanoseconds(0));
  kc::CompileOptions zero_options;
  zero_options.budget = &zero_deadline;
  StatusOr<kc::CompiledQuery> timed_out =
      kc::CompileLineage(&lineage, root, zero_options);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded);

  ExecutionBudget one_node;
  one_node.max_circuit_nodes = 1;
  kc::CompileOptions node_options;
  node_options.budget = &one_node;
  StatusOr<kc::CompiledQuery> node_capped =
      kc::CompileLineage(&lineage, root, node_options);
  ASSERT_FALSE(node_capped.ok());
  EXPECT_EQ(node_capped.status().code(), StatusCode::kResourceExhausted);

  // The direct WMC solver under the same degenerate budgets.
  std::vector<double> probs(10, 0.5);
  pqe::WmcOptions wmc_options;
  wmc_options.budget = &one_node;
  StatusOr<double> wmc =
      pqe::ComputeProbability(&lineage, root, probs, nullptr, wmc_options);
  ASSERT_FALSE(wmc.ok());
  EXPECT_EQ(wmc.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace ipdb
