#include "core/edge_cover.h"

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "pdb/pushforward.h"

namespace ipdb {
namespace core {
namespace {

TEST(EdgeCoverTest, Lemma36BoundBasics) {
  // |V_n| = 0: trivial bound 1.
  EXPECT_DOUBLE_EQ(Lemma36Bound(0, 1, 0.5), 1.0);
  // r = 1, |V_n| = 2, Σq = 0.1: 2·(1·1·0.1)² = 0.02.
  EXPECT_DOUBLE_EQ(Lemma36Bound(2, 1, 0.1), 0.02);
  // Clamped at 1.
  EXPECT_DOUBLE_EQ(Lemma36Bound(3, 2, 100.0), 1.0);
}

TEST(EdgeCoverTest, MinimalCoversTriangle) {
  // Vertices {0,1,2}; edges {0,1}, {1,2}, {0,2}: the minimal edge covers
  // are all pairs of edges (each pair covers all three vertices; no
  // single edge does).
  WeightedHypergraph graph;
  graph.num_vertices = 3;
  graph.edges = {{0, 1}, {1, 2}, {0, 2}};
  graph.weights = {0.5, 0.5, 0.5};
  DedupedCover covers = MinimalEdgeCovers(graph);
  EXPECT_EQ(covers.covers.size(), 3u);
  for (const auto& cover : covers.covers) {
    EXPECT_EQ(cover.size(), 2u);
  }
  EXPECT_DOUBLE_EQ(MinimalCoverWeight(covers), 3 * 0.25);
}

TEST(EdgeCoverTest, ParallelEdgesMerge) {
  // Two parallel edges {0} with weights 0.3 and 0.2 merge to one edge of
  // weight 0.5 (the Σ_{e∈s⁻¹(f)} q_e regrouping).
  WeightedHypergraph graph;
  graph.num_vertices = 1;
  graph.edges = {{0}, {0}};
  graph.weights = {0.3, 0.2};
  DedupedCover covers = MinimalEdgeCovers(graph);
  ASSERT_EQ(covers.deduped_edges.size(), 1u);
  EXPECT_DOUBLE_EQ(covers.deduped_weights[0], 0.5);
  ASSERT_EQ(covers.covers.size(), 1u);
  EXPECT_DOUBLE_EQ(MinimalCoverWeight(covers), 0.5);
}

TEST(EdgeCoverTest, SpanningEdgeDominates) {
  // One big edge covering everything is itself a minimal cover; covers
  // containing it plus more are not minimal.
  WeightedHypergraph graph;
  graph.num_vertices = 3;
  graph.edges = {{0, 1, 2}, {0, 1}, {2}};
  graph.weights = {0.1, 0.2, 0.3};
  DedupedCover covers = MinimalEdgeCovers(graph);
  // Minimal covers: {big}, {{0,1},{2}}.
  EXPECT_EQ(covers.covers.size(), 2u);
}

TEST(EdgeCoverTest, EmptyTargetHasEmptyCover) {
  WeightedHypergraph graph;
  graph.num_vertices = 0;
  DedupedCover covers = MinimalEdgeCovers(graph);
  ASSERT_EQ(covers.covers.size(), 1u);
  EXPECT_TRUE(covers.covers[0].empty());
  EXPECT_DOUBLE_EQ(MinimalCoverWeight(covers), 1.0);
}

TEST(EdgeCoverTest, BoundChainHoldsOnRealViewOutput) {
  // Lemma 3.6's chain: Pr(Φ(I) = D_n) <= cover weight <= closed-form
  // bound — verified exhaustively on a small TI-PDB with the identity
  // view.
  rel::Schema schema({{"R", 2}});
  auto fact = [](int64_t a, int64_t b) {
    return rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)});
  };
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {{fact(1, 2), 0.2},
               {fact(2, 3), 0.3},
               {fact(1, 3), 0.1},
               {fact(4, 4), 0.25}});
  logic::FoView identity = logic::FoView::Identity(schema);
  pdb::FinitePdb<double> expanded = ti.Expand();
  auto image = pdb::Pushforward(expanded, identity);
  ASSERT_TRUE(image.ok());
  for (const auto& [world, probability] : image.value().worlds()) {
    EdgeCoverReport report = AnalyzeWorldCover(ti, identity.Constants(),
                                               world);
    if (report.exact_cover_weight >= 0.0) {
      EXPECT_LE(probability, report.exact_cover_weight + 1e-12)
          << world.ToString(schema);
      // Middle bound <= closed-form bound (up to the min(·,1) clamp).
      EXPECT_LE(std::min(report.exact_cover_weight, 1.0),
                report.lemma_bound + 1e-12)
          << world.ToString(schema);
    }
    EXPECT_LE(probability, report.lemma_bound + 1e-12)
        << world.ToString(schema);
  }
}

TEST(EdgeCoverTest, BuildFactHypergraphRestricts) {
  rel::Schema schema({{"R", 2}});
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema,
      {{rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(2)}), 0.5},
       {rel::Fact(0, {rel::Value::Int(5), rel::Value::Int(6)}), 0.5}});
  // Only facts touching the target set {1} are edges.
  WeightedHypergraph graph =
      BuildFactHypergraph(ti, {rel::Value::Int(1)});
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.edges[0], std::vector<int>{0});
}

}  // namespace
}  // namespace core
}  // namespace ipdb
