#include "logic/evaluator.h"

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "relational/instance.h"

namespace ipdb {
namespace logic {
namespace {

rel::Schema TestSchema() { return rel::Schema({{"R", 2}, {"S", 1}}); }

rel::Instance TestInstance() {
  // R(1,2), R(2,3), S(1)
  return rel::Instance({
      rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(2)}),
      rel::Fact(0, {rel::Value::Int(2), rel::Value::Int(3)}),
      rel::Fact(1, {rel::Value::Int(1)}),
  });
}

bool Holds(const std::string& text) {
  rel::Schema schema = TestSchema();
  Formula f = ParseSentence(text, schema).value();
  return Satisfies(TestInstance(), schema, f);
}

TEST(EvaluatorTest, AtomsAndBooleans) {
  EXPECT_TRUE(Holds("R(1, 2)"));
  EXPECT_FALSE(Holds("R(2, 1)"));
  EXPECT_TRUE(Holds("R(1, 2) & S(1)"));
  EXPECT_FALSE(Holds("R(1, 2) & S(2)"));
  EXPECT_TRUE(Holds("R(2, 1) | S(1)"));
  EXPECT_TRUE(Holds("!R(2, 1)"));
  EXPECT_TRUE(Holds("R(9, 9) -> S(5)"));
  EXPECT_TRUE(Holds("R(1, 2) <-> S(1)"));
  EXPECT_FALSE(Holds("R(1, 2) <-> S(2)"));
  EXPECT_TRUE(Holds("true"));
  EXPECT_FALSE(Holds("false"));
}

TEST(EvaluatorTest, ExistentialQuantification) {
  EXPECT_TRUE(Holds("exists x. S(x)"));
  EXPECT_TRUE(Holds("exists x y. R(x, y)"));
  EXPECT_TRUE(Holds("exists x. R(1, x) & R(x, 3)"));   // x = 2
  EXPECT_FALSE(Holds("exists x. R(x, x)"));
}

TEST(EvaluatorTest, UniversalQuantification) {
  // All R-sources are 1 or 2.
  EXPECT_TRUE(Holds("forall x y. R(x, y) -> (x = 1 | x = 2)"));
  EXPECT_FALSE(Holds("forall x y. R(x, y) -> x = 1"));
  // Guarded universal over S.
  EXPECT_TRUE(Holds("forall x. S(x) -> x = 1"));
}

TEST(EvaluatorTest, InfiniteUniverseSemantics) {
  // Over the infinite universe there is always an element outside S.
  EXPECT_TRUE(Holds("exists x. !S(x)"));
  // And ∀x S(x) is always false on a finite instance.
  EXPECT_FALSE(Holds("forall x. S(x)"));
  // Two distinct non-S elements exist (needs two fresh elements).
  EXPECT_TRUE(Holds("exists x y. !S(x) & !S(y) & x != y"));
  // Fresh elements are genuinely distinct from active-domain ones.
  EXPECT_TRUE(Holds("exists x. !S(x) & x != 1 & x != 2 & x != 3"));
}

TEST(EvaluatorTest, EqualityAndConstants) {
  EXPECT_TRUE(Holds("1 = 1"));
  EXPECT_FALSE(Holds("1 = 2"));
  EXPECT_TRUE(Holds("exists x. x = 7 & !S(7)"));
  EXPECT_TRUE(Holds("null = null"));
  EXPECT_FALSE(Holds("null = 0"));
}

TEST(EvaluatorTest, ErrorsOnFreeVariables) {
  rel::Schema schema = TestSchema();
  Formula f = ParseFormula("S(x)", schema).value();
  StatusOr<bool> result = Evaluate(TestInstance(), schema, f);
  EXPECT_FALSE(result.ok());
  // With a binding, it evaluates.
  Assignment assignment = {{"x", rel::Value::Int(1)}};
  StatusOr<bool> bound = Evaluate(TestInstance(), schema, f, assignment);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound.value());
}

TEST(EvaluatorTest, ErrorsOnSchemaMismatch) {
  rel::Schema schema = TestSchema();
  Formula bad = Atom(5, {Term::Int(1)});
  EXPECT_FALSE(Evaluate(TestInstance(), schema, bad).ok());
}

TEST(EvaluatorTest, EvaluateQueryBinaryJoin) {
  rel::Schema schema = TestSchema();
  // Composition R∘R.
  Formula f = ParseFormula("exists y. R(x, y) & R(y, z)", schema).value();
  auto tuples = EvaluateQuery(TestInstance(), schema, f, {"x", "z"});
  ASSERT_TRUE(tuples.ok());
  ASSERT_EQ(tuples.value().size(), 1u);
  EXPECT_EQ(tuples.value()[0][0], rel::Value::Int(1));
  EXPECT_EQ(tuples.value()[0][1], rel::Value::Int(3));
}

TEST(EvaluatorTest, EvaluateQueryNegationStaysInAdom) {
  rel::Schema schema = TestSchema();
  // ¬S(x): output restricted to adom ∪ consts by the safety convention.
  Formula f = ParseFormula("!S(x)", schema).value();
  auto tuples = EvaluateQuery(TestInstance(), schema, f, {"x"});
  ASSERT_TRUE(tuples.ok());
  // adom = {1, 2, 3}; S(1) holds, so outputs are 2, 3.
  ASSERT_EQ(tuples.value().size(), 2u);
}

TEST(EvaluatorTest, EvaluateQueryUncoveredFreeVarFails) {
  rel::Schema schema = TestSchema();
  Formula f = ParseFormula("R(x, y)", schema).value();
  EXPECT_FALSE(EvaluateQuery(TestInstance(), schema, f, {"x"}).ok());
}

TEST(EvaluatorTest, EvaluateQueryNullary) {
  rel::Schema schema = TestSchema();
  Formula f = ParseFormula("exists x. S(x)", schema).value();
  auto tuples = EvaluateQuery(TestInstance(), schema, f, {});
  ASSERT_TRUE(tuples.ok());
  EXPECT_EQ(tuples.value().size(), 1u);  // the empty tuple: "true"
}

TEST(EvaluatorTest, GuardedAndUnguardedAgree) {
  // Property check: formulas with and without guard-friendly shapes
  // produce identical results (the guard is an optimization only).
  rel::Schema schema = TestSchema();
  const char* pairs[][2] = {
      // ∃x (S(x) ∧ x ≠ 1)  vs  ∃x (x ≠ 1 ∧ S(x)) — same semantics.
      {"exists x. S(x) & x != 1", "exists x. x != 1 & S(x)"},
      // Guarded ∀ vs its ¬∃¬ form.
      {"forall x y. R(x, y) -> x = 1 | x = 2",
       "!(exists x y. R(x, y) & !(x = 1 | x = 2))"},
  };
  for (const auto& pair : pairs) {
    bool a = Satisfies(TestInstance(), schema,
                       ParseSentence(pair[0], schema).value());
    bool b = Satisfies(TestInstance(), schema,
                       ParseSentence(pair[1], schema).value());
    EXPECT_EQ(a, b) << pair[0];
  }
}

TEST(EvaluatorTest, GuardRespectsShadowedBindings) {
  // Regression: a quantifier re-binding a name that is also bound in the
  // ambient assignment must treat the inner occurrences as wildcards in
  // guard analysis. Here the outer x is bound to 1; the inner ∃x must
  // still find S(2) even though S(1) does not exist.
  rel::Schema schema = TestSchema();
  rel::Instance instance({rel::Fact(1, {rel::Value::Int(2)})});
  // ∃u (S(u) ∧ ∃x S(x)) with ambient x = 1: inner ∃x is guarded by the
  // S-atom; candidates must come from S-facts (value 2), unconstrained
  // by the ambient x.
  Formula f = ParseFormula("exists u. S(u) & exists x. S(x)", schema)
                  .value();
  Assignment assignment = {{"x", rel::Value::Int(1)}};
  StatusOr<bool> result = Evaluate(instance, schema, f, assignment);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value());
}

TEST(EvaluatorTest, QuantifierDomainContents) {
  Formula f = Exists("x", Exists("y", Atom(1, {Term::Var("x")})));
  std::vector<rel::Value> domain = QuantifierDomain(TestInstance(), f);
  // adom {1,2,3} plus two fresh elements.
  EXPECT_EQ(domain.size(), 5u);
}

TEST(EvaluatorTest, EmptyInstance) {
  rel::Schema schema = TestSchema();
  rel::Instance empty;
  EXPECT_FALSE(Satisfies(empty, schema,
                         ParseSentence("exists x. S(x)", schema).value()));
  EXPECT_TRUE(Satisfies(empty, schema,
                        ParseSentence("forall x. S(x) -> false", schema)
                            .value()));
  EXPECT_TRUE(Satisfies(empty, schema,
                        ParseSentence("exists x. !S(x)", schema).value()));
}

}  // namespace
}  // namespace logic
}  // namespace ipdb
