#include "pqe/expected_answers.h"

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "logic/view.h"
#include "pdb/pushforward.h"
#include "pqe/wmc.h"

namespace ipdb {
namespace pqe {
namespace {

rel::Schema TestSchema() { return rel::Schema({{"R", 2}, {"S", 1}}); }

pdb::TiPdb<double> TestTi() {
  rel::Schema schema = TestSchema();
  auto r = [](int64_t a, int64_t b) {
    return rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)});
  };
  return pdb::TiPdb<double>::CreateOrDie(
      schema, {{r(1, 2), 0.5},
               {r(2, 3), 0.25},
               {r(1, 3), 0.125},
               {rel::Fact(1, {rel::Value::Int(2)}), 0.75}});
}

TEST(ExpectedAnswersTest, LinearityForSingleAtom) {
  // E[|{x : S(x)}|] = Σ marginals of S-facts.
  pdb::TiPdb<double> ti = TestTi();
  logic::Formula q = logic::ParseFormula("S(x)", ti.schema()).value();
  auto expected = ExpectedAnswerCount(ti, q, {"x"});
  ASSERT_TRUE(expected.ok());
  EXPECT_NEAR(expected.value(), 0.75, 1e-12);
}

TEST(ExpectedAnswersTest, MatchesExpansionForJoinView) {
  // Cross-check against the ground truth: the expected output size of
  // the join view over the expanded distribution.
  pdb::TiPdb<double> ti = TestTi();
  logic::Formula q =
      logic::ParseFormula("exists y. R(x, y) & R(y, z)", ti.schema())
          .value();
  auto expected = ExpectedAnswerCount(ti, q, {"x", "z"});
  ASSERT_TRUE(expected.ok());

  rel::Schema out({{"T", 2}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x", "z"};
  def.body = q;
  logic::FoView view =
      logic::FoView::Create(ti.schema(), out, {def}).value();
  pdb::FinitePdb<double> image =
      pdb::PushforwardOrDie(ti.Expand(), view);
  EXPECT_NEAR(expected.value(), image.SizeMoment(1), 1e-10);
}

TEST(ExpectedAnswersTest, RankedAnswersSortedAndConsistent) {
  pdb::TiPdb<double> ti = TestTi();
  logic::Formula q =
      logic::ParseFormula("exists y. R(x, y)", ti.schema()).value();
  auto ranked = RankedAnswers(ti, q, {"x"});
  ASSERT_TRUE(ranked.ok());
  // x = 1 reachable via (1,2) or (1,3): 1 - 0.5·0.875; x = 2 via (2,3).
  ASSERT_EQ(ranked.value().size(), 2u);
  EXPECT_EQ(ranked.value()[0].tuple[0], rel::Value::Int(1));
  EXPECT_NEAR(ranked.value()[0].probability, 1.0 - 0.5 * 0.875, 1e-12);
  EXPECT_EQ(ranked.value()[1].tuple[0], rel::Value::Int(2));
  EXPECT_NEAR(ranked.value()[1].probability, 0.25, 1e-12);
  // Per-tuple probabilities agree with boolean WMC on the grounded
  // query.
  logic::Formula grounded =
      q.Substitute("x", logic::Term::Int(1));
  EXPECT_NEAR(ranked.value()[0].probability,
              QueryProbability(ti, grounded).value(), 1e-12);
}

TEST(ExpectedAnswersTest, BooleanHead) {
  pdb::TiPdb<double> ti = TestTi();
  logic::Formula q =
      logic::ParseSentence("exists x. S(x)", ti.schema()).value();
  auto expected = ExpectedAnswerCount(ti, q, {});
  ASSERT_TRUE(expected.ok());
  EXPECT_NEAR(expected.value(), 0.75, 1e-12);
}

TEST(ExpectedAnswersTest, UncoveredFreeVariableFails) {
  pdb::TiPdb<double> ti = TestTi();
  logic::Formula q = logic::ParseFormula("R(x, y)", ti.schema()).value();
  EXPECT_FALSE(ExpectedAnswerCount(ti, q, {"x"}).ok());
}

}  // namespace
}  // namespace pqe
}  // namespace ipdb
