#include "util/fault.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "durability/manager.h"
#include "kc/cache.h"
#include "kc/compile.h"
#include "kc/evaluate.h"
#include "logic/parser.h"
#include "math/rational.h"
#include "pqe/lineage.h"
#include "pqe/wmc.h"
#include "server/engine.h"
#include "storage/ti_store.h"
#include "util/budget.h"
#include "util/parallel.h"

namespace ipdb {
namespace {

pdb::TiPdb<double> PathTi() {
  rel::Schema schema({{"R", 2}, {"S", 1}});
  auto r = [](int64_t a, int64_t b) {
    return rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)});
  };
  return pdb::TiPdb<double>::CreateOrDie(
      schema, {{r(1, 2), 0.5},
               {r(2, 3), 0.25},
               {r(1, 3), 0.75},
               {r(3, 4), 0.5},
               {rel::Fact(1, {rel::Value::Int(2)}), 0.4}});
}

/// A self-deleting scratch directory for the durability phase. Cleanup
/// is best-effort over the fixed on-disk layout (Manager writes exactly
/// one instance directory), so an early fault unwind leaves nothing in
/// /tmp.
struct ScratchDir {
  std::string path;
  ScratchDir() {
    char name[] = "/tmp/ipdb_fault_XXXXXX";
    if (::mkdtemp(name) != nullptr) path = name;
  }
  ~ScratchDir() {
    if (path.empty()) return;
    for (const char* file :
         {"/db/snapshot.ipdb", "/db/snapshot.ipdb.tmp", "/db/wal.log"}) {
      ::unlink((path + file).c_str());
    }
    ::rmdir((path + "/db").c_str());
    ::rmdir(path.c_str());
  }
};

/// A representative pass over the governed query pipeline, reaching
/// every registered fault site: the lifted safe-plan rung, grounding,
/// the artifact cache (lookup and, on a miss, compile + insert), exact
/// circuit evaluation, the direct WMC solver, the Monte Carlo fallback
/// (budget-forced), the thread pool, the serving engine's drain path,
/// and the durability subsystem (snapshot write + rename, WAL append,
/// WAL replay on recovery). `salt` varies the query structure so each
/// invocation is a cache miss and the compile-path sites stay
/// reachable.
Status RepresentativeWorkload(int salt) {
  // The two-hop path query grounds to a lineage with shared variables
  // ((a&b)|(b&c)|(d&c)), which is not independence-decomposable and so
  // exercises the Shannon-expansion branch of the compiler.
  pdb::TiPdb<double> ti = PathTi();
  std::string text = "exists x y z. R(x, y) & R(y, z)";
  for (int i = 0; i < salt % 3; ++i) text += " & exists x y. R(x, y)";
  StatusOr<logic::Formula> sentence =
      logic::ParseSentence(text, ti.schema());
  if (!sentence.ok()) return sentence.status();

  // Lifted safe-plan rung (pqe.lifted.evaluate): a hierarchical
  // self-join-free CQ that the ladder answers without grounding.
  StatusOr<logic::Formula> safe_sentence =
      logic::ParseSentence("exists x y. R(x, y) & S(y)", ti.schema());
  if (!safe_sentence.ok()) return safe_sentence.status();
  StatusOr<double> lifted =
      pqe::QueryProbability(ti, safe_sentence.value());
  if (!lifted.ok()) return lifted.status();

  // Exact pipeline through the artifact cache (pqe.ground,
  // kc.cache.lookup, kc.compile.*, kc.cache.insert, pqe.evaluate). The
  // path query is a self-join, so the lifted rung rejects it and the
  // circuit rung does the work.
  kc::GlobalCompiledQueryCache().Clear();
  StatusOr<double> exact = pqe::QueryProbability(ti, sentence.value());
  if (!exact.ok()) return exact.status();

  // Governed query whose node cap forces the Monte Carlo fallback
  // (pqe.query.fallback, pqe.mc.shard, util.pool.task). The artifact
  // the plain query just cached would satisfy it budget-free, so clear
  // the cache to make the node cap bite.
  kc::GlobalCompiledQueryCache().Clear();
  ExecutionBudget budget;
  budget.max_circuit_nodes = 1;
  pqe::QueryOptions options;
  options.budget = &budget;
  options.fallback_samples = 256;
  options.fallback_threads = 2;
  StatusOr<pqe::QueryAnswer> degraded =
      pqe::QueryProbability(ti, sentence.value(), options);
  if (!degraded.ok()) return degraded.status();

  // Direct Shannon/decomposition solver (pqe.wmc.solve).
  pqe::Lineage lineage;
  StatusOr<pqe::NodeId> root =
      pqe::GroundSentence(ti, sentence.value(), &lineage);
  if (!root.ok()) return root.status();
  std::vector<double> probs;
  for (const auto& [fact, marginal] : ti.facts()) probs.push_back(marginal);
  StatusOr<double> wmc =
      pqe::ComputeProbability(&lineage, root.value(), probs);
  if (!wmc.ok()) return wmc.status();

  // Exact rational evaluation (kc.evaluate.exact).
  pqe::Lineage exact_lineage;
  StatusOr<pqe::NodeId> exact_root =
      pqe::GroundSentence(ti, sentence.value(), &exact_lineage);
  if (!exact_root.ok()) return exact_root.status();
  StatusOr<kc::CompiledQuery> compiled =
      kc::CompileLineage(&exact_lineage, exact_root.value());
  if (!compiled.ok()) return compiled.status();
  std::vector<math::Rational> rational_probs(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    rational_probs[i] =
        math::Rational::Ratio(static_cast<int64_t>(probs[i] * 100), 100);
  }
  StatusOr<math::Rational> rational = kc::EvaluateCircuitExact(
      compiled.value().circuit, compiled.value().root, rational_probs);
  if (!rational.ok()) return rational.status();

  // Serving engine drain path (server.shutdown): one served query, then
  // a Stop. A failed Stop leaves the engine un-stopped; the destructor's
  // retry succeeds because a fired site disarms.
  {
    server::EngineOptions engine_options;
    engine_options.threads = 1;
    server::Engine engine(engine_options);
    Status st = engine.RegisterInstance("db", PathTi());
    if (!st.ok()) return st;
    st = engine.RegisterTenant("t", server::TenantConfig{});
    if (!st.ok()) return st;
    StatusOr<server::QueryResult> served =
        engine.Query("t", "db", "exists x y. R(x, y) & S(y)");
    if (!served.ok()) return served.status();
    st = engine.Stop();
    if (!st.ok()) return st;
  }

  // Durability round trip (dur.snapshot.write, dur.rename,
  // dur.wal.append, dur.wal.replay): create an instance, journal a few
  // mutations, checkpoint, journal once more, then recover it.
  {
    ScratchDir scratch;
    if (scratch.path.empty()) return InternalError("mkdtemp failed");
    storage::TiStore::Builder builder(rel::Schema({{"R", 2}, {"S", 1}}));
    builder.Add(rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(2)}), 0.5);
    builder.AddExact(rel::Fact(1, {rel::Value::Int(2)}),
                     math::Rational::Ratio(2, 5));
    StatusOr<std::shared_ptr<storage::TiStore>> store = builder.Finish();
    if (!store.ok()) return store.status();
    durability::Manager manager(scratch.path);
    StatusOr<std::unique_ptr<durability::DurableStore>> durable =
        manager.Create("db", std::move(store).value());
    if (!durable.ok()) return durable.status();
    std::unique_ptr<durability::DurableStore> handle =
        std::move(durable).value();
    StatusOr<int64_t> inserted = handle->Insert(
        rel::Fact(0, {rel::Value::Int(7), rel::Value::Int(8)}), 0.25);
    if (!inserted.ok()) return inserted.status();
    Status st = handle->UpdateProbabilityExact(
        rel::Fact(1, {rel::Value::Int(2)}), math::Rational::Ratio(1, 3));
    if (!st.ok()) return st;
    st = handle->Checkpoint();
    if (!st.ok()) return st;
    st = handle->UpdateProbability(
        rel::Fact(0, {rel::Value::Int(7), rel::Value::Int(8)}), 0.6);
    if (!st.ok()) return st;
    st = handle->Flush();
    if (!st.ok()) return st;
    handle.reset();
    StatusOr<std::unique_ptr<durability::DurableStore>> recovered =
        manager.Load("db");
    if (!recovered.ok()) return recovered.status();
  }

  return Status::Ok();
}

TEST(FaultRegistryTest, KnownSitesAreSortedAndQueryable) {
  const std::vector<std::string>& sites = fault::KnownSites();
  ASSERT_GE(sites.size(), 8u);
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  EXPECT_EQ(std::adjacent_find(sites.begin(), sites.end()), sites.end());
  for (const std::string& site : sites) {
    EXPECT_TRUE(fault::IsKnownSite(site)) << site;
  }
  EXPECT_FALSE(fault::IsKnownSite("no.such.site"));
  // The coverage-audit alias is the same registry, not a copy.
  EXPECT_EQ(&fault::RegisteredSites(), &sites);
}

TEST(FaultRegistryTest, InjectedFaultIsRecognizableInternal) {
  Status status = fault::InjectedFault("kc.cache.insert");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("injected fault"), std::string::npos);
  EXPECT_NE(status.message().find("kc.cache.insert"), std::string::npos);
}

TEST(FaultRegistryTest, CompiledInMatchesBuildFlag) {
#if defined(IPDB_FAULT_INJECTION)
  EXPECT_TRUE(fault::CompiledIn());
#else
  EXPECT_FALSE(fault::CompiledIn());
#endif
}

TEST(FaultPlanTest, DisarmedSitesNeverFire) {
  // With no plan installed the workload must pass, whether or not
  // injection is compiled in.
  EXPECT_TRUE(RepresentativeWorkload(0).ok());
}

TEST(FaultPlanTest, PlanWithoutCompiledInSitesIsInert) {
  if (fault::CompiledIn()) GTEST_SKIP() << "covered by the firing tests";
  fault::ScopedFaultPlan plan({{"pqe.wmc.solve", 1}});
  EXPECT_TRUE(RepresentativeWorkload(0).ok());
  EXPECT_EQ(plan.triggered("pqe.wmc.solve"), 0);
}

#if defined(IPDB_FAULT_INJECTION)

TEST(FaultFiringTest, ArmedSiteSurfacesInjectedStatus) {
  fault::ScopedFaultPlan plan({{"pqe.wmc.solve", 1}});
  pqe::Lineage lineage;
  pqe::NodeId x = lineage.Var(0);
  StatusOr<double> result =
      pqe::ComputeProbability(&lineage, x, {0.5});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("injected fault"),
            std::string::npos);
  EXPECT_EQ(plan.triggered("pqe.wmc.solve"), 1);
}

TEST(FaultFiringTest, NthHitSemantics) {
  fault::ScopedFaultPlan plan({{"pqe.wmc.solve", 2}});
  pqe::Lineage lineage;
  pqe::NodeId x = lineage.Var(0);
  EXPECT_TRUE(pqe::ComputeProbability(&lineage, x, {0.5}).ok());
  EXPECT_FALSE(pqe::ComputeProbability(&lineage, x, {0.5}).ok());
  // The site fires on exactly the nth hit, then disarms.
  EXPECT_TRUE(pqe::ComputeProbability(&lineage, x, {0.5}).ok());
  EXPECT_EQ(plan.triggered("pqe.wmc.solve"), 1);
  EXPECT_GE(fault::HitCount("pqe.wmc.solve"), 3);
}

TEST(FaultFiringTest, PlansStackAdditivelyAndUninstall) {
  // Plans stack: the outer plan arms a site the solver never touches,
  // the inner plan arms the solver entry; each fires independently.
  fault::ScopedFaultPlan outer({{"kc.cache.lookup", 1}});
  {
    fault::ScopedFaultPlan inner({{"pqe.wmc.solve", 1}});
    pqe::Lineage lineage;
    pqe::NodeId x = lineage.Var(0);
    EXPECT_FALSE(pqe::ComputeProbability(&lineage, x, {0.5}).ok());
    EXPECT_EQ(inner.triggered("pqe.wmc.solve"), 1);
  }
  // The inner plan uninstalled with its counters: the solver site is
  // disarmed again, and the untouched outer site never fired.
  pqe::Lineage lineage;
  pqe::NodeId x = lineage.Var(0);
  EXPECT_TRUE(pqe::ComputeProbability(&lineage, x, {0.5}).ok());
  EXPECT_EQ(outer.triggered("kc.cache.lookup"), 0);
}

// The CI fault leg's contract: arm every registered site in turn and
// drive the representative workload. Each armed site must be reached —
// a site the workload cannot reach is a dead site that tests nothing —
// and must unwind as a clean kInternal "injected fault" Status — never
// an abort, never a leak (the leg runs under ASan).
TEST(FaultFiringTest, EverySiteUnwindsCleanly) {
  int triggered = 0;
  std::string unreached;
  for (const std::string& site : fault::RegisteredSites()) {
    SCOPED_TRACE(site);
    fault::ScopedFaultPlan plan({{site, 1}});
    Status status = RepresentativeWorkload(triggered);
    if (plan.triggered(site) > 0) {
      ++triggered;
      ASSERT_FALSE(status.ok());
      EXPECT_EQ(status.code(), StatusCode::kInternal);
      EXPECT_NE(status.message().find("injected fault"), std::string::npos);
      EXPECT_NE(status.message().find(site), std::string::npos);
    } else {
      // The workload finished before reaching the site; nothing fired,
      // so nothing may have failed.
      EXPECT_TRUE(status.ok()) << status.ToString();
      unreached += (unreached.empty() ? "" : ", ") + site;
    }
  }
  EXPECT_EQ(triggered, static_cast<int>(fault::RegisteredSites().size()))
      << "sites never reached: " << unreached;
}

#endif  // IPDB_FAULT_INJECTION

}  // namespace
}  // namespace ipdb
