#include "core/finite_completeness.h"

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace core {
namespace {

using math::Rational;

TEST(FiniteCompletenessTest, SingleWorld) {
  rel::Schema schema({{"U", 1}});
  pdb::FinitePdb<Rational> pdb = pdb::FinitePdb<Rational>::CreateOrDie(
      schema, {{rel::Instance({rel::Fact(0, {rel::Value::Int(1)})}),
                Rational(1)}});
  auto built = BuildFiniteCompleteness(pdb);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built.value().ti.num_facts(), 0);
  auto tv = VerifyFiniteCompleteness(pdb, built.value());
  ASSERT_TRUE(tv.ok());
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(FiniteCompletenessTest, ThreeWorldsExact) {
  rel::Schema schema({{"U", 1}});
  auto world = [](std::vector<int64_t> values) {
    std::vector<rel::Fact> facts;
    for (int64_t v : values) {
      facts.emplace_back(0, std::vector<rel::Value>{rel::Value::Int(v)});
    }
    return rel::Instance(std::move(facts));
  };
  pdb::FinitePdb<Rational> pdb = pdb::FinitePdb<Rational>::CreateOrDie(
      schema, {{world({}), Rational::Ratio(1, 6)},
               {world({1}), Rational::Ratio(1, 3)},
               {world({1, 2}), Rational::Ratio(1, 2)}});
  auto built = BuildFiniteCompleteness(pdb);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built.value().ti.num_facts(), 2);  // n-1 selectors
  auto tv = VerifyFiniteCompleteness(pdb, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(FiniteCompletenessTest, RandomizedExactness) {
  // Property: every random finite PDB is represented exactly — the
  // Figure 1 edge "FO(TI_fin) = PDB_fin".
  Pcg32 rng(71);
  rel::Schema schema({{"R", 2}});
  for (int trial = 0; trial < 15; ++trial) {
    pdb::FinitePdb<Rational> pdb =
        testing_util::RandomRationalPdb(schema, 4, 2, 0.4, 24, &rng);
    auto built = BuildFiniteCompleteness(pdb);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    auto tv = VerifyFiniteCompleteness(pdb, built.value());
    ASSERT_TRUE(tv.ok()) << tv.status().ToString();
    EXPECT_DOUBLE_EQ(tv.value(), 0.0) << pdb.ToString();
  }
}

TEST(FiniteCompletenessTest, RepresentsExampleB2) {
  // The BID-PDB of Example B.2 is not TI — but as a finite PDB it is
  // still an FO view over a TI-PDB (with a non-monotone view).
  pdb::BidPdb<Rational> bid = ExampleB2();
  pdb::FinitePdb<Rational> pdb = bid.Expand();
  auto built = BuildFiniteCompleteness(pdb);
  ASSERT_TRUE(built.ok());
  auto tv = VerifyFiniteCompleteness(pdb, built.value());
  ASSERT_TRUE(tv.ok());
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(FiniteCompletenessTest, EmptyPdbRejected) {
  rel::Schema schema({{"U", 1}});
  pdb::FinitePdb<Rational> empty;
  EXPECT_FALSE(BuildFiniteCompleteness(empty).ok());
}

}  // namespace
}  // namespace core
}  // namespace ipdb
