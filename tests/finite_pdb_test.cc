#include "pdb/finite_pdb.h"

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "pdb/conditioning.h"
#include "pdb/pushforward.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace pdb {
namespace {

using math::Rational;

rel::Schema UnarySchema() { return rel::Schema({{"U", 1}}); }

rel::Instance World(std::vector<int64_t> values) {
  std::vector<rel::Fact> facts;
  for (int64_t v : values) {
    facts.emplace_back(0, std::vector<rel::Value>{rel::Value::Int(v)});
  }
  return rel::Instance(std::move(facts));
}

TEST(FinitePdbTest, CreateValidates) {
  rel::Schema schema = UnarySchema();
  // Probabilities must sum to 1.
  EXPECT_FALSE(FinitePdb<double>::Create(
                   schema, {{World({}), 0.5}, {World({1}), 0.4}})
                   .ok());
  // Negative probabilities rejected.
  EXPECT_FALSE(FinitePdb<double>::Create(
                   schema, {{World({}), 1.5}, {World({1}), -0.5}})
                   .ok());
  // Schema mismatch rejected.
  rel::Instance bad({rel::Fact(7, {rel::Value::Int(0)})});
  EXPECT_FALSE(
      FinitePdb<double>::Create(schema, {{bad, 1.0}}).ok());
  // Duplicates merged.
  auto merged = FinitePdb<double>::Create(
      schema, {{World({1}), 0.5}, {World({1}), 0.5}});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().num_worlds(), 1);
}

TEST(FinitePdbTest, ExactCreateRequiresExactOne) {
  rel::Schema schema = UnarySchema();
  EXPECT_TRUE(FinitePdb<Rational>::Create(
                  schema, {{World({}), Rational::Ratio(1, 3)},
                           {World({1}), Rational::Ratio(2, 3)}})
                  .ok());
  EXPECT_FALSE(FinitePdb<Rational>::Create(
                   schema, {{World({}), Rational::Ratio(1, 3)},
                            {World({1}), Rational::Ratio(2, 3 + 1)}})
                   .ok());
}

TEST(FinitePdbTest, ProbabilityAndMarginal) {
  rel::Schema schema = UnarySchema();
  FinitePdb<double> pdb = FinitePdb<double>::CreateOrDie(
      schema, {{World({}), 0.25},
               {World({1}), 0.25},
               {World({1, 2}), 0.5}});
  EXPECT_DOUBLE_EQ(pdb.Probability(World({1})), 0.25);
  EXPECT_DOUBLE_EQ(pdb.Probability(World({9})), 0.0);
  rel::Fact f1(0, {rel::Value::Int(1)});
  rel::Fact f2(0, {rel::Value::Int(2)});
  EXPECT_DOUBLE_EQ(pdb.Marginal(f1), 0.75);
  EXPECT_DOUBLE_EQ(pdb.Marginal(f2), 0.5);
  EXPECT_EQ(pdb.FactSet().size(), 2u);
}

TEST(FinitePdbTest, SizeMoments) {
  rel::Schema schema = UnarySchema();
  FinitePdb<double> pdb = FinitePdb<double>::CreateOrDie(
      schema, {{World({}), 0.5}, {World({1, 2}), 0.5}});
  EXPECT_DOUBLE_EQ(pdb.SizeMoment(0), 1.0);
  EXPECT_DOUBLE_EQ(pdb.SizeMoment(1), 1.0);
  EXPECT_DOUBLE_EQ(pdb.SizeMoment(2), 2.0);
  FinitePdb<Rational> exact = FinitePdb<Rational>::CreateOrDie(
      schema, {{World({}), Rational::Ratio(1, 2)},
               {World({1, 2}), Rational::Ratio(1, 2)}});
  EXPECT_EQ(exact.SizeMomentExact(2), Rational(2));
}

TEST(FinitePdbTest, TupleIndependenceDetection) {
  rel::Schema schema = UnarySchema();
  // Product of two independent 1/2 facts.
  FinitePdb<Rational> ti = FinitePdb<Rational>::CreateOrDie(
      schema, {{World({}), Rational::Ratio(1, 4)},
               {World({1}), Rational::Ratio(1, 4)},
               {World({2}), Rational::Ratio(1, 4)},
               {World({1, 2}), Rational::Ratio(1, 4)}});
  EXPECT_TRUE(ti.IsTupleIndependent());
  // Perfectly correlated facts.
  FinitePdb<Rational> correlated = FinitePdb<Rational>::CreateOrDie(
      schema, {{World({}), Rational::Ratio(1, 2)},
               {World({1, 2}), Rational::Ratio(1, 2)}});
  EXPECT_FALSE(correlated.IsTupleIndependent());
}

TEST(FinitePdbTest, BidDetection) {
  rel::Schema schema = UnarySchema();
  rel::Fact f1(0, {rel::Value::Int(1)});
  rel::Fact f2(0, {rel::Value::Int(2)});
  // One block {f1, f2}, each probability 1/2 (Example B.2): a valid BID.
  FinitePdb<Rational> bid = FinitePdb<Rational>::CreateOrDie(
      schema, {{World({1}), Rational::Ratio(1, 2)},
               {World({2}), Rational::Ratio(1, 2)}});
  EXPECT_TRUE(bid.IsBlockIndependentDisjoint({{f1, f2}}));
  // As two singleton blocks the facts would have to be independent —
  // they are not (never co-occur).
  EXPECT_FALSE(bid.IsBlockIndependentDisjoint({{f1}, {f2}}));
}

TEST(FinitePdbTest, TotalVariation) {
  rel::Schema schema = UnarySchema();
  FinitePdb<double> a = FinitePdb<double>::CreateOrDie(
      schema, {{World({}), 0.5}, {World({1}), 0.5}});
  FinitePdb<double> b = FinitePdb<double>::CreateOrDie(
      schema, {{World({}), 0.25}, {World({2}), 0.75}});
  EXPECT_DOUBLE_EQ(TotalVariationDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(TotalVariationDistance(a, b),
                   (0.25 + 0.5 + 0.75) / 2.0);
}

TEST(ConditioningTest, RescalesCorrectly) {
  rel::Schema schema = UnarySchema();
  FinitePdb<Rational> pdb = FinitePdb<Rational>::CreateOrDie(
      schema, {{World({}), Rational::Ratio(1, 2)},
               {World({1}), Rational::Ratio(1, 4)},
               {World({1, 2}), Rational::Ratio(1, 4)}});
  logic::Formula phi =
      logic::ParseSentence("exists x. U(x)", schema).value();
  auto conditioned = Condition(pdb, phi);
  ASSERT_TRUE(conditioned.ok());
  EXPECT_EQ(conditioned.value().num_worlds(), 2);
  EXPECT_EQ(conditioned.value().Probability(World({1})),
            Rational::Ratio(1, 2));
  EXPECT_EQ(conditioned.value().Probability(World({1, 2})),
            Rational::Ratio(1, 2));
}

TEST(ConditioningTest, ZeroMassEventFails) {
  rel::Schema schema = UnarySchema();
  FinitePdb<Rational> pdb = FinitePdb<Rational>::CreateOrDie(
      schema, {{World({1}), Rational(1)}});
  logic::Formula phi = logic::ParseSentence("U(99)", schema).value();
  EXPECT_FALSE(Condition(pdb, phi).ok());
}

TEST(ConditioningTest, EventProbability) {
  rel::Schema schema = UnarySchema();
  FinitePdb<Rational> pdb = FinitePdb<Rational>::CreateOrDie(
      schema, {{World({}), Rational::Ratio(1, 3)},
               {World({1}), Rational::Ratio(2, 3)}});
  logic::Formula phi = logic::ParseSentence("U(1)", schema).value();
  EXPECT_EQ(EventProbability(pdb, phi).value(), Rational::Ratio(2, 3));
  // Free variables rejected.
  logic::Formula open = logic::ParseFormula("U(x)", schema).value();
  EXPECT_FALSE(EventProbability(pdb, open).ok());
}

TEST(PushforwardTest, GroupsPreimages) {
  rel::Schema in = UnarySchema();
  rel::Schema out({{"NonEmpty", 0}});
  // View: NonEmpty() := ∃x U(x).
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.body = logic::ParseFormula("exists x. U(x)", in).value();
  logic::FoView view = logic::FoView::Create(in, out, {def}).value();

  FinitePdb<Rational> pdb = FinitePdb<Rational>::CreateOrDie(
      in, {{World({}), Rational::Ratio(1, 6)},
           {World({1}), Rational::Ratio(1, 3)},
           {World({2}), Rational::Ratio(1, 2)}});
  auto image = Pushforward(pdb, view);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image.value().num_worlds(), 2);
  rel::Instance nonempty({rel::Fact(0, {})});
  EXPECT_EQ(image.value().Probability(nonempty), Rational::Ratio(5, 6));
  EXPECT_EQ(image.value().Probability(rel::Instance()),
            Rational::Ratio(1, 6));
}

TEST(PushforwardTest, PreservesTotalMassRandomized) {
  Pcg32 rng(31);
  rel::Schema in({{"R", 2}, {"S", 1}});
  rel::Schema out({{"T", 1}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x"};
  def.body = logic::ParseFormula("exists y. R(x, y) & S(y)", in).value();
  logic::FoView view = logic::FoView::Create(in, out, {def}).value();
  for (int trial = 0; trial < 10; ++trial) {
    FinitePdb<Rational> pdb =
        testing_util::RandomRationalPdb(in, 5, 3, 0.3, 60, &rng);
    auto image = Pushforward(pdb, view);
    ASSERT_TRUE(image.ok());
    Rational total;
    for (const auto& [instance, probability] : image.value().worlds()) {
      total += probability;
    }
    EXPECT_EQ(total, Rational(1));
  }
}

TEST(FinitePdbTest, DropNullWorlds) {
  rel::Schema schema = UnarySchema();
  FinitePdb<double> pdb = FinitePdb<double>::CreateOrDie(
      schema, {{World({}), 1.0}, {World({1}), 0.0}});
  EXPECT_EQ(pdb.num_worlds(), 2);
  EXPECT_EQ(pdb.DropNullWorlds().num_worlds(), 1);
}

}  // namespace
}  // namespace pdb
}  // namespace ipdb
