#include "logic/formula.h"

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "relational/schema.h"

namespace ipdb {
namespace logic {
namespace {

rel::Schema TestSchema() { return rel::Schema({{"R", 2}, {"S", 1}}); }

TEST(FormulaTest, DefaultIsTrue) {
  Formula f;
  EXPECT_EQ(f.kind(), FormulaKind::kTrue);
}

TEST(FormulaTest, FreeVariables) {
  Formula f = Exists(
      "x", And(Atom(0, {Term::Var("x"), Term::Var("y")}),
               Atom(1, {Term::Var("z")})));
  std::vector<std::string> free = f.FreeVariables();
  ASSERT_EQ(free.size(), 2u);
  EXPECT_EQ(free[0], "y");
  EXPECT_EQ(free[1], "z");
}

TEST(FormulaTest, ShadowedVariableNotFree) {
  Formula f = Exists("x", Exists("x", Atom(1, {Term::Var("x")})));
  EXPECT_TRUE(f.FreeVariables().empty());
}

TEST(FormulaTest, Constants) {
  Formula f = And(Atom(0, {Term::Int(3), Term::Var("x")}),
                  Eq(Term::Var("x"), Term::Const(rel::Value::Symbol("a"))));
  std::vector<rel::Value> constants = f.Constants();
  ASSERT_EQ(constants.size(), 2u);
  EXPECT_EQ(constants[0], rel::Value::Int(3));
  EXPECT_EQ(constants[1], rel::Value::Symbol("a"));
}

TEST(FormulaTest, QuantifierRank) {
  EXPECT_EQ(Truth().QuantifierRank(), 0);
  Formula f = Exists("x", Forall("y", Atom(0, {Term::Var("x"),
                                               Term::Var("y")})));
  EXPECT_EQ(f.QuantifierRank(), 2);
  Formula g = And(f, Exists("z", Atom(1, {Term::Var("z")})));
  EXPECT_EQ(g.QuantifierRank(), 2);
}

TEST(FormulaTest, MatchesSchema) {
  rel::Schema schema = TestSchema();
  EXPECT_TRUE(Atom(0, {Term::Int(1), Term::Int(2)}).MatchesSchema(schema));
  EXPECT_FALSE(Atom(0, {Term::Int(1)}).MatchesSchema(schema));
  EXPECT_FALSE(Atom(9, {Term::Int(1)}).MatchesSchema(schema));
}

TEST(FormulaTest, SubstituteFreeOnly) {
  // (∃x R(x, y))[y := 5] replaces y, leaves the bound x alone.
  Formula f = Exists("x", Atom(0, {Term::Var("x"), Term::Var("y")}));
  Formula g = f.Substitute("y", Term::Int(5));
  EXPECT_EQ(g, Exists("x", Atom(0, {Term::Var("x"), Term::Int(5)})));
  // Substituting the bound variable is a no-op.
  EXPECT_EQ(f.Substitute("x", Term::Int(7)), f);
}

TEST(FormulaTest, SubstituteAvoidsCapture) {
  // (∃x R(x, y))[y := x] must rename the bound x.
  Formula f = Exists("x", Atom(0, {Term::Var("x"), Term::Var("y")}));
  Formula g = f.Substitute("y", Term::Var("x"));
  ASSERT_EQ(g.kind(), FormulaKind::kExists);
  EXPECT_NE(g.quantified_var(), "x");
  const Formula& body = g.children()[0];
  EXPECT_EQ(body.terms()[0], Term::Var(g.quantified_var()));
  EXPECT_EQ(body.terms()[1], Term::Var("x"));
  std::vector<std::string> free = g.FreeVariables();
  ASSERT_EQ(free.size(), 1u);
  EXPECT_EQ(free[0], "x");
}

TEST(FormulaTest, CountingQuantifiersExpand) {
  Formula body = Atom(1, {Term::Var("v")});
  EXPECT_EQ(AtLeast(0, "v", body).kind(), FormulaKind::kTrue);
  Formula at_least_2 = AtLeast(2, "v", body);
  EXPECT_TRUE(at_least_2.FreeVariables().empty());
  EXPECT_EQ(at_least_2.QuantifierRank(), 2);
  Formula exactly_1 = Exactly(1, "v", body);
  EXPECT_EQ(exactly_1.kind(), FormulaKind::kAnd);
}

TEST(FormulaTest, StructuralEquality) {
  Formula a = And(Atom(1, {Term::Var("x")}), Truth());
  Formula b = And(Atom(1, {Term::Var("x")}), Truth());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, And(Atom(1, {Term::Var("y")}), Truth()));
  EXPECT_NE(Exists("x", Truth()), Forall("x", Truth()));
}

TEST(FormulaTest, ToStringReadable) {
  rel::Schema schema = TestSchema();
  Formula f = Forall("x", Implies(Atom(1, {Term::Var("x")}),
                                  Eq(Term::Var("x"), Term::Int(1))));
  EXPECT_EQ(f.ToString(schema), "forall x. ((S(x) -> x = 1))");
}

TEST(ParserTest, RoundTripsBasicFormulas) {
  rel::Schema schema = TestSchema();
  const char* cases[] = {
      "R(x, y)",
      "exists x. S(x)",
      "forall x y. R(x, y) -> S(x)",
      "S(1) & !S(2) | S(3)",
      "x = y",
      "x != 'a'",
      "true & false",
      "exists x. (S(x) & x != null)",
  };
  for (const char* text : cases) {
    auto parsed = ParseFormula(text, schema);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    // Printing and reparsing yields the same AST.
    auto reparsed = ParseFormula(parsed.value().ToString(schema), schema);
    ASSERT_TRUE(reparsed.ok()) << parsed.value().ToString(schema);
    EXPECT_EQ(parsed.value(), reparsed.value()) << text;
  }
}

TEST(ParserTest, Precedence) {
  rel::Schema schema = TestSchema();
  Formula f = ParseFormula("S(1) & S(2) | S(3)", schema).value();
  // & binds tighter than |.
  EXPECT_EQ(f.kind(), FormulaKind::kOr);
  Formula g = ParseFormula("S(1) -> S(2) -> S(3)", schema).value();
  // -> is right associative.
  EXPECT_EQ(g.kind(), FormulaKind::kImplies);
  EXPECT_EQ(g.children()[1].kind(), FormulaKind::kImplies);
  Formula h = ParseFormula("!S(1) & S(2)", schema).value();
  EXPECT_EQ(h.kind(), FormulaKind::kAnd);
}

TEST(ParserTest, ConstantsAndTerms) {
  rel::Schema schema = TestSchema();
  Formula f = ParseFormula("R(-3, 'france') & S(null)", schema).value();
  std::vector<rel::Value> constants = f.Constants();
  ASSERT_EQ(constants.size(), 3u);
  EXPECT_EQ(constants[0], rel::Value::Null());
  EXPECT_EQ(constants[1], rel::Value::Int(-3));
  EXPECT_EQ(constants[2], rel::Value::Symbol("france"));
}

TEST(ParserTest, Errors) {
  rel::Schema schema = TestSchema();
  EXPECT_FALSE(ParseFormula("R(x)", schema).ok());       // arity
  EXPECT_FALSE(ParseFormula("T(x)", schema).ok());       // unknown + no '='
  EXPECT_FALSE(ParseFormula("S(x) &", schema).ok());     // dangling
  EXPECT_FALSE(ParseFormula("(S(x)", schema).ok());      // unbalanced
  EXPECT_FALSE(ParseFormula("exists . S(x)", schema).ok());
  EXPECT_FALSE(ParseFormula("S(x) S(y)", schema).ok());  // trailing
}

TEST(ParserTest, SentenceCheck) {
  rel::Schema schema = TestSchema();
  EXPECT_TRUE(ParseSentence("exists x. S(x)", schema).ok());
  EXPECT_FALSE(ParseSentence("S(x)", schema).ok());
}

}  // namespace
}  // namespace logic
}  // namespace ipdb
