#include "core/growth_criterion.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/paper_examples.h"

namespace ipdb {
namespace core {
namespace {

TEST(GrowthCriterionTest, Example55SatisfiedWithC1) {
  CriterionFamily family = Example55Criterion();
  SumAnalysis analysis = CheckGrowthCriterion(family, 1);
  ASSERT_EQ(analysis.kind, SumAnalysis::Kind::kConverged)
      << analysis.ToString();
  // The paper bounds the sum by 2/x ≈ 3.88; our enclosure must sit
  // below that.
  EXPECT_LT(analysis.enclosure.hi(), 2.0 / 0.515 + 0.01);
  GrowthCriterionResult result = FindCriterionWitness(family, 3);
  EXPECT_EQ(result.witness_c, 1);
}

TEST(GrowthCriterionTest, BoundedSizeAlwaysSatisfied) {
  // Corollary 5.4's computation: for instance size <= c the criterion
  // sum is bounded by c. Family: sizes alternate 1 and 2, geometric
  // probabilities.
  CriterionFamily family;
  family.size_at = [](int64_t i) { return 1 + (i % 2); };
  family.prob_at = [](int64_t i) {
    return std::pow(0.5, static_cast<double>(i + 1));
  };
  family.tail_upper = [](int c, int64_t N) {
    // size <= 2 <= c: term <= 2 P^{c/2} <= 2 P^{1/2}... use c >= 2 and
    // P^{c/|D|} <= P for c >= |D|: tail <= 2 Σ_{i>=N} 2^{-(i+1)} =
    // 2^{1-N}.
    (void)c;
    return std::pow(2.0, 1.0 - static_cast<double>(N));
  };
  family.description = "bounded size 2";
  SumAnalysis analysis = CheckGrowthCriterion(family, 2);
  ASSERT_EQ(analysis.kind, SumAnalysis::Kind::kConverged);
  EXPECT_LE(analysis.enclosure.hi(), 2.0 + 1e-9);
}

TEST(GrowthCriterionTest, PropositionD2DivergesForEveryC) {
  // The Example 5.6 TI-PDB violates the criterion for every c: the
  // reduced series carries a certified infinite tail.
  for (int c = 1; c <= 4; ++c) {
    Series series = PropositionD2ReducedSeries(c);
    SumAnalysis analysis = AnalyzeSum(series);
    EXPECT_EQ(analysis.kind, SumAnalysis::Kind::kDiverged) << c;
    // And the partial sums do grow: witness at modest thresholds.
    Series no_cert = series;
    no_cert.tail_lower_bound = nullptr;
    SumOptions options;
    options.divergence_witness_threshold = 1e6;
    options.max_terms = 200;
    SumAnalysis witness = AnalyzeSum(no_cert, options);
    EXPECT_EQ(witness.kind, SumAnalysis::Kind::kDivergedWitness) << c;
  }
}

TEST(GrowthCriterionTest, PropositionD3DivergesForEveryC) {
  for (int c = 1; c <= 3; ++c) {
    SumAnalysis analysis = AnalyzeSum(PropositionD3ReducedSeries(c));
    EXPECT_EQ(analysis.kind, SumAnalysis::Kind::kDiverged) << c;
  }
}

TEST(GrowthCriterionTest, CeilingFormAgreesOnConvergence) {
  // Lemma D.1: the ceiling form converges iff the plain form does.
  CriterionFamily ex55 = Example55Criterion();
  Series plain = CriterionSeries(ex55, 2);
  Series ceiling = CeilingCriterionSeries(ex55, 2);
  double plain_sum = 0.0;
  double ceiling_sum = 0.0;
  for (int64_t i = 0; i < 200; ++i) {
    plain_sum += plain.term(i);
    ceiling_sum += ceiling.term(i);
  }
  // Both stabilize to finite values; the Lemma D.1 inequalities relate
  // them: plain <= c * ceiling-with-c and ceiling-with-2c <= 1 + plain/c.
  EXPECT_LT(plain_sum, 2.0 * ceiling_sum + 1e-9);
  Series ceiling2c = CeilingCriterionSeries(ex55, 4);
  double ceiling2c_sum = 0.0;
  for (int64_t i = 0; i < 200; ++i) ceiling2c_sum += ceiling2c.term(i);
  EXPECT_LE(ceiling2c_sum, 1.0 + plain_sum / 2.0 + 1e-9);
}

TEST(GrowthCriterionTest, EmptyWorldsContributeNothing) {
  CriterionFamily family;
  family.size_at = [](int64_t i) { return i == 0 ? 0 : 1; };
  family.prob_at = [](int64_t i) {
    return i == 0 ? 0.5 : 0.5 * std::pow(0.5, static_cast<double>(i));
  };
  family.tail_upper = [](int, int64_t N) {
    return std::pow(2.0, -static_cast<double>(N));
  };
  SumAnalysis analysis = CheckGrowthCriterion(family, 1);
  ASSERT_EQ(analysis.kind, SumAnalysis::Kind::kConverged);
  // Σ_{i>=1} 1 * (2^{-(i+1)})^{1/1} = 1/2.
  EXPECT_TRUE(analysis.enclosure.Contains(0.5));
}

TEST(GrowthCriterionTest, FindWitnessNeedsLargerC) {
  // A family that separates c = 1 from c = 2: sizes s_i = i+2 and
  // probabilities p_i = (i+2)^{-2(i+2)}, so the criterion term is
  // s_i · p_i^{c/s_i} = (i+2)^{1-2c} — harmonic-like (divergent) for
  // c = 1, a convergent power series for c = 2. (The p_i sum to less
  // than 1; the criterion mechanics do not need normalization.)
  CriterionFamily family;
  family.size_at = [](int64_t i) { return i + 2; };
  family.prob_at = [](int64_t i) {
    double s = static_cast<double>(i + 2);
    return std::pow(s, -2.0 * s);
  };
  family.tail_lower = [](int c, int64_t N) {
    // term(i) = (i+2)^{1-2c}: diverges exactly when 2c - 1 <= 1.
    return PowerTailLower(1.0, 2.0 * c - 1.0, N + 2);
  };
  family.tail_upper = [](int c, int64_t N) {
    if (c < 2) return Interval::kInfinity;
    return PowerTailUpper(1.0, 2.0 * c - 1.0, N + 2);
  };
  family.description = "c-separation fixture";
  GrowthCriterionResult result = FindCriterionWitness(family, 3);
  EXPECT_EQ(result.witness_c, 2);
  SumAnalysis c1 = CheckGrowthCriterion(family, 1);
  EXPECT_EQ(c1.kind, SumAnalysis::Kind::kDiverged);
}

}  // namespace
}  // namespace core
}  // namespace ipdb
