#include "core/idb_assignments.h"

#include <gtest/gtest.h>

#include "core/size_moments.h"

namespace ipdb {
namespace core {
namespace {

/// An unbounded-size IDB: D_i has i unary facts over disjoint ranges.
CountableIdbFamily UnboundedIdb() {
  CountableIdbFamily idb;
  idb.schema = rel::Schema({{"U", 1}});
  idb.size_at = [](int64_t i) { return i; };
  idb.world_at = [](int64_t i) {
    std::vector<rel::Fact> facts;
    int64_t base = i * (i - 1) / 2;
    for (int64_t t = 0; t < i; ++t) {
      facts.emplace_back(0,
                         std::vector<rel::Value>{rel::Value::Int(base + t)});
    }
    return rel::Instance(std::move(facts));
  };
  idb.description = "unbounded IDB (|D_i| = i)";
  return idb;
}

TEST(IdbAssignmentsTest, Lemma65ProducesCriterionWitness) {
  // Lemma 6.5: the assignment satisfies the Theorem 5.3 criterion with
  // c = 1, so the resulting PDB is in FO(TI) — for ANY sample space.
  auto result = Lemma65Assignment(UnboundedIdb());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Normalizer within the paper's range (1/2 <= 1/x, x <= 2).
  EXPECT_LE(result.value().normalizer.hi(), 2.0);
  EXPECT_GT(result.value().normalizer.lo(), 0.0);
  // Probabilities normalize.
  SumAnalysis mass = AnalyzeSum(result.value().pdb.ProbabilitySeries());
  ASSERT_EQ(mass.kind, SumAnalysis::Kind::kConverged);
  EXPECT_NEAR(mass.enclosure.midpoint(), 1.0, 1e-6);
  // Criterion converges with c = 1.
  SumAnalysis criterion = CheckGrowthCriterion(result.value().criterion, 1);
  EXPECT_EQ(criterion.kind, SumAnalysis::Kind::kConverged)
      << criterion.ToString();
}

TEST(IdbAssignmentsTest, Lemma65MomentsFinite) {
  auto result = Lemma65Assignment(UnboundedIdb());
  ASSERT_TRUE(result.ok());
  FiniteMomentsReport report = CheckFiniteMoments(result.value().pdb, 3);
  EXPECT_TRUE(report.all_finite_certified) << report.ToString();
}

TEST(IdbAssignmentsTest, Lemma66ProducesInfiniteExpectation) {
  // Lemma 6.6: over the same sample space, another assignment has
  // E[|D|] = ∞ — certified NOT in FO(TI) (Theorem 6.7's dichotomy).
  CountableIdbFamily idb = UnboundedIdb();
  auto subsequence = MakeIncreasingSubsequence(idb);
  auto pdb = Lemma66Assignment(idb, subsequence);
  ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
  // Probabilities normalize. The heavy-mass tail certificate decays like
  // 1/N, so cap the scan and accept the resulting enclosure width.
  SumOptions options;
  options.max_terms = 1 << 15;
  options.target_width = 1e-4;
  SumAnalysis mass = AnalyzeSum(pdb.value().ProbabilitySeries(), options);
  ASSERT_EQ(mass.kind, SumAnalysis::Kind::kConverged);
  EXPECT_TRUE(mass.enclosure.Contains(1.0)) << mass.ToString();
  // Expected size certified infinite.
  SumAnalysis m1 = pdb.value().AnalyzeMoment(1);
  EXPECT_EQ(m1.kind, SumAnalysis::Kind::kDiverged);
  // Every world keeps positive probability (same induced IDB).
  for (int64_t i = 0; i < 32; ++i) {
    EXPECT_GT(pdb.value().ProbAt(i), 0.0) << i;
  }
}

TEST(IdbAssignmentsTest, IncreasingSubsequenceSkipsRepeats) {
  // A family with repeated sizes: 0, 1, 1, 2, 2, 3, 3, ...
  CountableIdbFamily idb;
  idb.schema = rel::Schema({{"U", 1}});
  idb.size_at = [](int64_t i) { return (i + 1) / 2; };
  idb.world_at = [size_at = idb.size_at](int64_t i) {
    std::vector<rel::Fact> facts;
    for (int64_t t = 0; t < size_at(i); ++t) {
      facts.emplace_back(
          0, std::vector<rel::Value>{rel::Value::Int(i * 1000 + t)});
    }
    return rel::Instance(std::move(facts));
  };
  auto subsequence = MakeIncreasingSubsequence(idb);
  EXPECT_EQ(subsequence(0), 0);
  EXPECT_EQ(subsequence(1), 1);
  EXPECT_EQ(subsequence(2), 3);
  EXPECT_EQ(subsequence(3), 5);
  // Sizes along the subsequence strictly increase.
  for (int64_t k = 0; k < 8; ++k) {
    EXPECT_LT(idb.size_at(subsequence(k)), idb.size_at(subsequence(k + 1)));
  }
}

TEST(IdbAssignmentsTest, Theorem67Dichotomy) {
  // The same unbounded IDB supports both a representable and a
  // non-representable probability assignment — there are no logical
  // reasons (Theorem 6.7, second bullet).
  CountableIdbFamily idb = UnboundedIdb();
  auto in_foti = Lemma65Assignment(idb);
  ASSERT_TRUE(in_foti.ok());
  auto out_of_foti =
      Lemma66Assignment(idb, MakeIncreasingSubsequence(idb));
  ASSERT_TRUE(out_of_foti.ok());
  // Same induced IDB (worlds with positive probability coincide).
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_GT(in_foti.value().pdb.ProbAt(i), 0.0);
    EXPECT_GT(out_of_foti.value().ProbAt(i), 0.0);
    EXPECT_EQ(in_foti.value().pdb.WorldAt(i),
              out_of_foti.value().WorldAt(i));
  }
  // One satisfies the sufficient criterion, the other violates the
  // necessary condition.
  EXPECT_EQ(CheckGrowthCriterion(in_foti.value().criterion, 1).kind,
            SumAnalysis::Kind::kConverged);
  EXPECT_EQ(out_of_foti.value().AnalyzeMoment(1).kind,
            SumAnalysis::Kind::kDiverged);
}

}  // namespace
}  // namespace core
}  // namespace ipdb
