#include "core/idb.h"

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "pdb/pushforward.h"

namespace ipdb {
namespace core {
namespace {

using math::Rational;

rel::Schema UnarySchema() { return rel::Schema({{"U", 1}}); }

rel::Fact U(int64_t v) { return rel::Fact(0, {rel::Value::Int(v)}); }

TEST(IdbTest, InducedIdbDropsNullWorlds) {
  rel::Schema schema = UnarySchema();
  pdb::FinitePdb<Rational> pdb = pdb::FinitePdb<Rational>::CreateOrDie(
      schema, {{rel::Instance(), Rational(1)},
               {rel::Instance({U(1)}), Rational(0)}});
  Idb idb = InducedIdb(pdb);
  ASSERT_EQ(idb.size(), 1u);
  EXPECT_TRUE(idb[0].empty());
}

TEST(IdbTest, Observation61Shape) {
  // IDB of a TI-PDB: T_always ∪ all subsets of T_sometimes.
  rel::Schema schema = UnarySchema();
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      schema, {{U(1), Rational(1)},
               {U(2), Rational::Ratio(1, 2)},
               {U(3), Rational::Ratio(1, 3)},
               {U(4), Rational(0)}});
  Idb idb = TiInducedIdb(ti);
  EXPECT_EQ(idb.size(), 4u);  // 2^2 subsets of {U(2), U(3)}
  for (const rel::Instance& instance : idb) {
    EXPECT_TRUE(instance.Contains(U(1)));
    EXPECT_FALSE(instance.Contains(U(4)));
  }
  EXPECT_TRUE(HasTiIdbShape(idb));
  // Matches the induced IDB of the expansion.
  EXPECT_EQ(idb, InducedIdb(ti.Expand()));
}

TEST(IdbTest, NonTiShapesDetected) {
  rel::Fact f1 = U(1);
  rel::Fact f2 = U(2);
  // Missing the union {f1, f2}: not a TI IDB.
  Idb no_union = {rel::Instance(), rel::Instance({f1}),
                  rel::Instance({f2})};
  EXPECT_FALSE(HasTiIdbShape(no_union));
  // Missing a middle layer.
  Idb gap = {rel::Instance(), rel::Instance({f1, f2})};
  EXPECT_FALSE(HasTiIdbShape(gap));
  // Single world: trivially TI-shaped.
  EXPECT_TRUE(HasTiIdbShape({rel::Instance({f1})}));
}

TEST(IdbTest, MutuallyExclusiveFactsInExampleB2) {
  // Proposition 6.4 applied to Example B.2: the two block facts are
  // mutually exclusive, certifying non-representability by ANY monotone
  // view over TI.
  pdb::FinitePdb<Rational> pdb = ExampleB2().Expand();
  auto pair = FindMutuallyExclusiveFacts(pdb);
  ASSERT_TRUE(pair.has_value());
  EXPECT_TRUE(CertifyNotMonotoneOverTi(pdb));
  // A TI-PDB has no mutually exclusive facts.
  rel::Schema schema = UnarySchema();
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      schema,
      {{U(1), Rational::Ratio(1, 2)}, {U(2), Rational::Ratio(1, 2)}});
  EXPECT_FALSE(CertifyNotMonotoneOverTi(ti.Expand()));
}

TEST(IdbTest, UniqueMaximalWorld) {
  // Proposition B.1 criterion: Example B.2 has two maximal worlds.
  EXPECT_FALSE(HasUniqueMaximalWorld(ExampleB2().Expand()));
  rel::Schema schema = UnarySchema();
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      schema,
      {{U(1), Rational::Ratio(1, 2)}, {U(2), Rational::Ratio(1, 2)}});
  EXPECT_TRUE(HasUniqueMaximalWorld(ti.Expand()));
}

TEST(IdbTest, ExampleB3ImageIsNeitherTiNorBid) {
  // The Figure 1 separation CQ(TI_fin) ⊄ BID_fin: Φ(I) has worlds ∅,
  // {S(a,a)}, {S(a,a), S(a,b)} — and no valid block partition.
  ExampleB3 example =
      MakeExampleB3(Rational::Ratio(1, 2), Rational::Ratio(1, 3));
  pdb::FinitePdb<Rational> expanded = example.ti.Expand();
  auto image = pdb::Pushforward(expanded, example.view);
  ASSERT_TRUE(image.ok());
  pdb::FinitePdb<Rational> result = image.value().DropNullWorlds();
  EXPECT_EQ(result.num_worlds(), 3);
  EXPECT_FALSE(result.IsTupleIndependent());
  // The image's fact set {S(a,a), S(a,b)}: neither one block nor two
  // singleton blocks satisfy the BID conditions.
  std::vector<rel::Fact> facts = result.FactSet();
  ASSERT_EQ(facts.size(), 2u);
  EXPECT_FALSE(result.IsBlockIndependentDisjoint({{facts[0], facts[1]}}));
  EXPECT_FALSE(result.IsBlockIndependentDisjoint({{facts[0]}, {facts[1]}}));
  // But the IDB obstruction does NOT fire: no mutually exclusive pair
  // (both facts co-occur in the top world) — consistent with Φ(I) being
  // a CQ view of a TI-PDB.
  EXPECT_FALSE(CertifyNotMonotoneOverTi(result));
  EXPECT_TRUE(HasUniqueMaximalWorld(result));
}

}  // namespace
}  // namespace core
}  // namespace ipdb
