#include "pdb/information.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/paper_examples.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace pdb {
namespace {

using math::Rational;

rel::Schema UnarySchema() { return rel::Schema({{"U", 1}}); }

rel::Fact U(int64_t v) { return rel::Fact(0, {rel::Value::Int(v)}); }

TEST(InformationTest, EntropyOfUniformAndPointMass) {
  rel::Schema schema = UnarySchema();
  FinitePdb<double> uniform = FinitePdb<double>::CreateOrDie(
      schema, {{rel::Instance(), 0.25},
               {rel::Instance({U(1)}), 0.25},
               {rel::Instance({U(2)}), 0.25},
               {rel::Instance({U(1), U(2)}), 0.25}});
  EXPECT_NEAR(ShannonEntropy(uniform), 2.0, 1e-12);
  FinitePdb<double> point = FinitePdb<double>::CreateOrDie(
      schema, {{rel::Instance({U(1)}), 1.0}});
  EXPECT_NEAR(ShannonEntropy(point), 0.0, 1e-12);
}

TEST(InformationTest, TiEntropyClosedFormMatchesExpansion) {
  Pcg32 rng(911);
  rel::Schema schema = UnarySchema();
  for (int trial = 0; trial < 8; ++trial) {
    TiPdb<Rational> exact =
        testing_util::RandomRationalTi(schema, 6, 10, 12, &rng);
    TiPdb<double>::FactList facts;
    for (const auto& [fact, marginal] : exact.facts()) {
      facts.emplace_back(fact, marginal.ToDouble());
    }
    TiPdb<double> ti = TiPdb<double>::CreateOrDie(schema, std::move(facts));
    EXPECT_NEAR(TiEntropy(ti), ShannonEntropy(ti.Expand()), 1e-9)
        << trial;
  }
}

TEST(InformationTest, KlDivergenceBasics) {
  rel::Schema schema = UnarySchema();
  FinitePdb<double> a = FinitePdb<double>::CreateOrDie(
      schema, {{rel::Instance(), 0.5}, {rel::Instance({U(1)}), 0.5}});
  FinitePdb<double> b = FinitePdb<double>::CreateOrDie(
      schema, {{rel::Instance(), 0.25}, {rel::Instance({U(1)}), 0.75}});
  // KL(a ‖ a) = 0.
  EXPECT_DOUBLE_EQ(KlDivergence(a, a).value(), 0.0);
  // Closed form: 0.5 log(0.5/0.25) + 0.5 log(0.5/0.75).
  EXPECT_NEAR(KlDivergence(a, b).value(),
              0.5 * std::log2(2.0) + 0.5 * std::log2(2.0 / 3.0), 1e-12);
  // Asymmetry.
  EXPECT_NE(KlDivergence(a, b).value(), KlDivergence(b, a).value());
  // Support mismatch -> error.
  FinitePdb<double> narrow = FinitePdb<double>::CreateOrDie(
      schema, {{rel::Instance({U(2)}), 1.0}});
  EXPECT_FALSE(KlDivergence(narrow, b).ok());
}

TEST(InformationTest, HellingerBounds) {
  rel::Schema schema = UnarySchema();
  FinitePdb<double> a = FinitePdb<double>::CreateOrDie(
      schema, {{rel::Instance(), 0.5}, {rel::Instance({U(1)}), 0.5}});
  FinitePdb<double> disjoint = FinitePdb<double>::CreateOrDie(
      schema, {{rel::Instance({U(2)}), 1.0}});
  EXPECT_NEAR(HellingerDistance(a, a), 0.0, 1e-12);
  EXPECT_NEAR(HellingerDistance(a, disjoint), 1.0, 1e-12);
  // Between TV bounds: H² <= TV <= H·sqrt(2).
  FinitePdb<double> b = FinitePdb<double>::CreateOrDie(
      schema, {{rel::Instance(), 0.3}, {rel::Instance({U(1)}), 0.7}});
  double h = HellingerDistance(a, b);
  double tv = TotalVariationDistance(a, b);
  EXPECT_LE(h * h, tv + 1e-12);
  EXPECT_LE(tv, h * std::sqrt(2.0) + 1e-12);
}

TEST(InformationTest, IndependenceGapZeroIffTi) {
  rel::Schema schema = UnarySchema();
  // A genuine TI expansion: gap 0.
  TiPdb<double> ti = TiPdb<double>::CreateOrDie(
      schema, {{U(1), 0.5}, {U(2), 0.25}});
  auto gap = IndependenceGap(ti.Expand());
  ASSERT_TRUE(gap.ok());
  EXPECT_NEAR(gap.value(), 0.0, 1e-10);

  // Example B.2's expansion is maximally non-independent for its
  // marginals: strictly positive gap.
  FinitePdb<Rational> b2 = core::ExampleB2().Expand();
  auto b2_gap = IndependenceGap(b2);
  ASSERT_TRUE(b2_gap.ok());
  EXPECT_GT(b2_gap.value(), 0.1);
  // Cross-check the detection agreement with the exact test.
  EXPECT_FALSE(b2.IsTupleIndependent());
}

TEST(InformationTest, IndependenceGapTracksCorrelationStrength) {
  // Mixtures interpolating between independent and perfectly correlated
  // coins: the gap grows with correlation.
  rel::Schema schema = UnarySchema();
  auto mixture = [&](double lambda) {
    // lambda·(perfectly correlated) + (1-lambda)·(independent), both
    // with marginals 1/2.
    FinitePdb<double>::WorldList worlds = {
        {rel::Instance(), lambda * 0.5 + (1 - lambda) * 0.25},
        {rel::Instance({U(1)}), (1 - lambda) * 0.25},
        {rel::Instance({U(2)}), (1 - lambda) * 0.25},
        {rel::Instance({U(1), U(2)}), lambda * 0.5 + (1 - lambda) * 0.25},
    };
    return FinitePdb<double>::CreateOrDie(schema, std::move(worlds));
  };
  double previous = -1.0;
  for (double lambda : {0.0, 0.3, 0.6, 0.9}) {
    auto gap = IndependenceGap(mixture(lambda));
    ASSERT_TRUE(gap.ok());
    EXPECT_GT(gap.value(), previous);
    previous = gap.value();
  }
  EXPECT_NEAR(IndependenceGap(mixture(0.0)).value(), 0.0, 1e-10);
}

}  // namespace
}  // namespace pdb
}  // namespace ipdb
