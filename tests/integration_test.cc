// Cross-module integration tests: full pipelines chaining the paper's
// constructions, Monte Carlo validation of exact machinery, and view
// composition through the probabilistic layer.

#include <gtest/gtest.h>

#include "core/bid_to_ti.h"
#include "core/conditional_views.h"
#include "core/finite_completeness.h"
#include "core/paper_examples.h"
#include "core/segment_construction.h"
#include "logic/evaluator.h"
#include "logic/parser.h"
#include "pdb/conditioning.h"
#include "pdb/metrics.h"
#include "pdb/pushforward.h"
#include "pdb/sampling.h"
#include "pqe/wmc.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace {

using math::Rational;

TEST(IntegrationTest, BidToTiThenConditionEliminationExact) {
  // Chain Theorem 5.9 into Theorem 4.1: represent a BID-PDB as
  // Φ(I | φ), then eliminate the condition — landing in plain FO(TI),
  // exactly as in the paper's proof of Theorem 5.9.
  pdb::BidPdb<Rational> bid = core::ExampleB2();
  auto step1 = core::BuildBidToTi(bid);
  ASSERT_TRUE(step1.ok());
  auto step2 = core::EliminateCondition(step1.value().ti,
                                        step1.value().view,
                                        step1.value().condition);
  ASSERT_TRUE(step2.ok()) << step2.status().ToString();
  auto tv = core::VerifyConditionElimination(step2.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
  // And the final target equals the original BID distribution.
  EXPECT_DOUBLE_EQ(
      pdb::TotalVariationDistance(step2.value().target.DropNullWorlds(),
                                  bid.Expand().DropNullWorlds()),
      0.0);
}

TEST(IntegrationTest, SegmentConstructionSampledValidation) {
  // Monte Carlo cross-check of the Lemma 5.1 pipeline: sample from the
  // TI-PDB, keep representations, push through the view, and compare
  // the empirical distribution to the input PDB.
  rel::Schema schema({{"U", 1}});
  auto world = [](std::vector<int64_t> values) {
    std::vector<rel::Fact> facts;
    for (int64_t v : values) {
      facts.emplace_back(0, std::vector<rel::Value>{rel::Value::Int(v)});
    }
    return rel::Instance(std::move(facts));
  };
  pdb::FinitePdb<double> input = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{world({1, 2}), 0.3}, {world({5}), 0.7}});
  auto built = core::BuildSegmentConstruction(input, 1);
  ASSERT_TRUE(built.ok());

  Pcg32 rng(131);
  pdb::EmpiricalDistribution empirical;
  int64_t accepted = 0;
  for (int64_t i = 0; i < 20000 && accepted < 4000; ++i) {
    rel::Instance sample = built.value().ti.Sample(&rng);
    if (!logic::Satisfies(sample, built.value().hat_schema,
                          built.value().condition)) {
      continue;
    }
    ++accepted;
    empirical.Add(built.value().view.ApplyOrDie(sample));
  }
  ASSERT_GT(accepted, 1000);
  EXPECT_LT(empirical.TvDistance(input), 0.05);
}

TEST(IntegrationTest, ComposedViewThroughPushforward) {
  // FO(FO(TI)) = FO(TI) at the distribution level: pushing through two
  // views sequentially equals pushing through their composition.
  Pcg32 rng(137);
  rel::Schema base({{"R", 2}});
  rel::Schema mid({{"T", 2}});
  rel::Schema out({{"U1", 1}});
  logic::FoView::Definition inner_def;
  inner_def.output_relation = 0;
  inner_def.head_vars = {"x", "z"};
  inner_def.body =
      logic::ParseFormula("exists y. R(x, y) & R(y, z)", base).value();
  logic::FoView inner =
      logic::FoView::Create(base, mid, {inner_def}).value();
  logic::FoView::Definition outer_def;
  outer_def.output_relation = 0;
  outer_def.head_vars = {"x"};
  outer_def.body = logic::ParseFormula("exists z. T(x, z)", mid).value();
  logic::FoView outer =
      logic::FoView::Create(mid, out, {outer_def}).value();
  logic::FoView composed = logic::ComposeViews(inner, outer).value();

  for (int trial = 0; trial < 5; ++trial) {
    pdb::FinitePdb<Rational> pdb =
        testing_util::RandomRationalPdb(base, 4, 3, 0.3, 24, &rng);
    pdb::FinitePdb<Rational> two_step =
        pdb::PushforwardOrDie(pdb::PushforwardOrDie(pdb, inner), outer);
    pdb::FinitePdb<Rational> one_step = pdb::PushforwardOrDie(pdb, composed);
    EXPECT_DOUBLE_EQ(pdb::TotalVariationDistance(two_step, one_step), 0.0);
  }
}

TEST(IntegrationTest, PqeAgreesWithPushforwardMarginals) {
  // Two roads to the same number: Pr(q) by lineage WMC vs. the marginal
  // of the corresponding boolean view under pushforward.
  rel::Schema schema({{"R", 2}});
  auto r = [](int64_t a, int64_t b) {
    return rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)});
  };
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema,
      {{r(1, 2), 0.3}, {r(2, 3), 0.6}, {r(3, 1), 0.5}, {r(1, 3), 0.2}});
  logic::Formula query =
      logic::ParseSentence("exists x y z. R(x, y) & R(y, z) & R(z, x)",
                           schema)
          .value();
  double by_wmc = pqe::QueryProbability(ti, query).value();

  rel::Schema out({{"Yes", 0}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.body = query;
  logic::FoView view = logic::FoView::Create(schema, out, {def}).value();
  pdb::FinitePdb<double> image =
      pdb::PushforwardOrDie(ti.Expand(), view);
  double by_pushforward = image.Marginal(rel::Fact(0, {}));
  EXPECT_NEAR(by_wmc, by_pushforward, 1e-10);
}

TEST(IntegrationTest, FiniteCompletenessOfConditionedBid) {
  // Condition a BID-PDB, then represent the conditioned PDB over a TI —
  // finite-setting closure under both operations.
  rel::Schema schema({{"U", 1}});
  rel::Fact u1(0, {rel::Value::Int(1)});
  rel::Fact u2(0, {rel::Value::Int(2)});
  rel::Fact u3(0, {rel::Value::Int(3)});
  pdb::BidPdb<Rational> bid = pdb::BidPdb<Rational>::CreateOrDie(
      schema, {{{u1, Rational::Ratio(1, 2)}, {u2, Rational::Ratio(1, 4)}},
               {{u3, Rational::Ratio(1, 3)}}});
  pdb::FinitePdb<Rational> expanded = bid.Expand();
  logic::Formula phi =
      logic::ParseSentence("exists x. U(x)", schema).value();
  pdb::FinitePdb<Rational> conditioned =
      pdb::ConditionOrDie(expanded, phi);
  auto built = core::BuildFiniteCompleteness(conditioned);
  ASSERT_TRUE(built.ok());
  auto tv = core::VerifyFiniteCompleteness(conditioned, built.value());
  ASSERT_TRUE(tv.ok());
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(IntegrationTest, CountableBidSamplingRespectsBlockMarginals) {
  // The car-accidents BID: empirical marginals of sampled counts match
  // the Poisson block probabilities.
  pdb::CountableBidPdb bid = core::CarAccidentsBid({1.5, 3.0}, 32);
  Pcg32 rng(139);
  const int samples = 20000;
  int count_zero_accidents_c0 = 0;
  for (int i = 0; i < samples; ++i) {
    auto world = bid.Sample(&rng, 1e-9);
    ASSERT_TRUE(world.ok());
    rel::Fact zero(0, {rel::Value::Int(0), rel::Value::Int(0)});
    if (world.value().Contains(zero)) ++count_zero_accidents_c0;
  }
  // Poisson(1.5): P(0) = e^{-1.5} ≈ 0.2231.
  EXPECT_NEAR(count_zero_accidents_c0 / static_cast<double>(samples),
              std::exp(-1.5), 0.02);
}

}  // namespace
}  // namespace ipdb
