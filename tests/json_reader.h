// A minimal recursive-descent JSON reader shared by tests that validate
// exporter output (obs_test, server_test): values are doubles, strings,
// bools, null, arrays and objects — just enough structure to assert on
// the single-line JSON documents the library emits, so exporters are
// known to be syntactically sound rather than merely string-matched.
// Test-only: no error positions, no non-ASCII fidelity (\uXXXX decodes
// to '?'), numbers as double.

#ifndef IPDB_TESTS_JSON_READER_H_
#define IPDB_TESTS_JSON_READER_H_

#include <cctype>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace ipdb {
namespace testjson {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char escaped = text_[pos_++];
        switch (escaped) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // tests never inspect non-ASCII content
            out->push_back('?');
            break;
          default: out->push_back(escaped); break;
        }
      } else {
        out->push_back(c);
      }
    }
    return Consume('"');
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      SkipSpace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace testjson
}  // namespace ipdb

#endif  // IPDB_TESTS_JSON_READER_H_
