#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "kc/compile.h"
#include "kc/evaluate.h"
#include "logic/parser.h"
#include "pqe/lineage.h"
#include "pqe/wmc.h"
#include "util/random.h"

namespace ipdb {
namespace kc {
namespace {

using math::Rational;

/// A random propositional formula over variables [0, num_vars):
/// leaves are variables (and the occasional constant), gates are
/// NOT/AND/OR of random arity.
pqe::NodeId RandomFormula(pqe::Lineage* lineage, int num_vars, int depth,
                          Pcg32* rng) {
  if (depth == 0 || rng->NextBounded(5) == 0) {
    uint32_t pick = rng->NextBounded(static_cast<uint32_t>(num_vars) + 1);
    if (pick == static_cast<uint32_t>(num_vars)) {
      return rng->NextBernoulli(0.5) ? lineage->True() : lineage->False();
    }
    return lineage->Var(static_cast<int>(pick));
  }
  uint32_t gate = rng->NextBounded(4);
  if (gate == 0) {
    return lineage->MakeNot(RandomFormula(lineage, num_vars, depth - 1, rng));
  }
  int arity = 2 + static_cast<int>(rng->NextBounded(3));
  std::vector<pqe::NodeId> children;
  children.reserve(arity);
  for (int i = 0; i < arity; ++i) {
    children.push_back(RandomFormula(lineage, num_vars, depth - 1, rng));
  }
  return gate == 1 ? lineage->MakeAnd(std::move(children))
                   : lineage->MakeOr(std::move(children));
}

/// Ground-truth WMC by enumerating all 2^n assignments.
template <typename T>
T EnumerateWmc(const pqe::Lineage& lineage, pqe::NodeId root, int num_vars,
               const std::vector<T>& probs) {
  T total = SemiringTraits<T>::Zero();
  for (uint32_t mask = 0; mask < (1u << num_vars); ++mask) {
    std::vector<bool> assignment(num_vars);
    T weight = SemiringTraits<T>::One();
    for (int v = 0; v < num_vars; ++v) {
      assignment[v] = (mask >> v) & 1;
      weight = weight * (assignment[v]
                             ? probs[v]
                             : SemiringTraits<T>::One() - probs[v]);
    }
    if (lineage.Evaluate(root, assignment)) total = total + weight;
  }
  return total;
}

/// ~700 random formulas (n <= 10): every compile is invariant-checked,
/// and the compiled double evaluation agrees with both truth-table
/// enumeration and the legacy Shannon/decomposition solver.
TEST(KcPropertyTest, RandomFormulasAgreeWithEnumerationAndLegacyWmc) {
  Pcg32 rng(20260806, 1);
  CompileOptions verify;
  verify.verify = true;
  for (int round = 0; round < 700; ++round) {
    const int num_vars = 2 + static_cast<int>(rng.NextBounded(9));  // <= 10
    pqe::Lineage lineage;
    pqe::NodeId root =
        RandomFormula(&lineage, num_vars, 1 + rng.NextBounded(4), &rng);
    std::vector<double> probs(num_vars);
    for (double& p : probs) p = rng.NextDouble();

    StatusOr<CompiledQuery> compiled = CompileLineage(&lineage, root, verify);
    ASSERT_TRUE(compiled.ok())
        << round << ": " << compiled.status().ToString();
    StatusOr<double> circuit_value =
        EvaluateCircuit<double>(compiled->circuit, compiled->root, probs);
    ASSERT_TRUE(circuit_value.ok());

    double truth = EnumerateWmc<double>(lineage, root, num_vars, probs);
    EXPECT_NEAR(circuit_value.value(), truth, 1e-9)
        << round << ": " << lineage.ToString(root);

    StatusOr<double> legacy = pqe::ComputeProbability(&lineage, root, probs);
    ASSERT_TRUE(legacy.ok());
    EXPECT_NEAR(circuit_value.value(), legacy.value(), 1e-9)
        << round << ": " << lineage.ToString(root);
  }
}

/// Exact-arithmetic agreement: on smaller instances the compiled
/// Rational evaluation equals the enumerated rational WMC *exactly*.
TEST(KcPropertyTest, RandomFormulasExactRationalAgreement) {
  Pcg32 rng(20260806, 2);
  CompileOptions verify;
  verify.verify = true;
  for (int round = 0; round < 150; ++round) {
    const int num_vars = 2 + static_cast<int>(rng.NextBounded(6));  // <= 7
    pqe::Lineage lineage;
    pqe::NodeId root =
        RandomFormula(&lineage, num_vars, 1 + rng.NextBounded(3), &rng);
    std::vector<Rational> probs(num_vars);
    for (Rational& p : probs) {
      p = Rational::Ratio(rng.NextBounded(17), 16);
    }
    StatusOr<CompiledQuery> compiled = CompileLineage(&lineage, root, verify);
    ASSERT_TRUE(compiled.ok());
    StatusOr<Rational> circuit_value =
        EvaluateCircuit<Rational>(compiled->circuit, compiled->root, probs);
    ASSERT_TRUE(circuit_value.ok());
    Rational truth = EnumerateWmc<Rational>(lineage, root, num_vars, probs);
    EXPECT_EQ(circuit_value.value(), truth)
        << round << ": " << lineage.ToString(root);
  }
}

/// End-to-end agreement on random TI instances: QueryProbability (the
/// compiled path through the global artifact cache) matches brute-force
/// world enumeration for a pool of queries.
TEST(KcPropertyTest, RandomTiInstancesAgreeWithBruteForce) {
  Pcg32 rng(20260806, 3);
  rel::Schema schema({{"R", 2}, {"S", 1}});
  const std::vector<std::string> queries = {
      "exists x y. R(x, y)",
      "exists x. S(x)",
      "exists x y. R(x, y) & S(y)",
      "exists x y z. R(x, y) & R(y, z)",
      "(exists x y. R(x, y) & S(x)) | (exists z. R(z, z))",
      "exists x. S(x) & !R(x, x)",
  };
  std::vector<logic::Formula> parsed;
  for (const std::string& q : queries) {
    parsed.push_back(logic::ParseSentence(q, schema).value());
  }
  for (int round = 0; round < 300; ++round) {
    // Each candidate fact over the universe [0, 3) joins with
    // probability 1/2; marginals are k/16 draws.
    pdb::TiPdb<double>::FactList facts;
    for (int64_t a = 0; a < 3; ++a) {
      for (int64_t b = 0; b < 3; ++b) {
        if (rng.NextBernoulli(0.5)) {
          facts.emplace_back(
              rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)}),
              rng.NextBounded(17) / 16.0);
        }
      }
    }
    for (int64_t a = 0; a < 3; ++a) {
      if (rng.NextBernoulli(0.5)) {
        facts.emplace_back(rel::Fact(1, {rel::Value::Int(a)}),
                           rng.NextBounded(17) / 16.0);
      }
    }
    pdb::TiPdb<double> ti =
        pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
    const logic::Formula& query = parsed[rng.NextBounded(parsed.size())];
    StatusOr<double> compiled_answer = pqe::QueryProbability(ti, query);
    ASSERT_TRUE(compiled_answer.ok())
        << round << ": " << compiled_answer.status().ToString();
    StatusOr<double> brute = pqe::QueryProbabilityBruteForce(ti, query);
    ASSERT_TRUE(brute.ok());
    EXPECT_NEAR(compiled_answer.value(), brute.value(), 1e-9) << round;
  }
}

/// Backprop gradients match central finite differences.
TEST(KcPropertyTest, GradientMatchesFiniteDifferences) {
  Pcg32 rng(20260806, 4);
  const double h = 1e-5;
  for (int round = 0; round < 120; ++round) {
    const int num_vars = 2 + static_cast<int>(rng.NextBounded(7));  // <= 8
    pqe::Lineage lineage;
    pqe::NodeId root =
        RandomFormula(&lineage, num_vars, 1 + rng.NextBounded(3), &rng);
    std::vector<double> probs(num_vars);
    // Keep marginals away from {0, 1} so the central stencil stays
    // inside the probability simplex.
    for (double& p : probs) p = 0.1 + 0.8 * rng.NextDouble();
    StatusOr<CompiledQuery> compiled = CompileLineage(&lineage, root);
    ASSERT_TRUE(compiled.ok());
    StatusOr<std::vector<double>> gradient =
        EvaluateGradient<double>(compiled->circuit, compiled->root, probs);
    ASSERT_TRUE(gradient.ok());
    for (int v = 0; v < num_vars; ++v) {
      std::vector<double> plus = probs;
      std::vector<double> minus = probs;
      plus[v] += h;
      minus[v] -= h;
      double numeric =
          (EvaluateCircuit<double>(compiled->circuit, compiled->root, plus)
               .value() -
           EvaluateCircuit<double>(compiled->circuit, compiled->root, minus)
               .value()) /
          (2 * h);
      EXPECT_NEAR(gradient.value()[v], numeric, 1e-6)
          << round << " var " << v << ": " << lineage.ToString(root);
    }
  }
}

/// Exact gradient identity: Pr is multilinear in the marginals, so
/// ∂Pr/∂p_v = Pr(p_v := 1) − Pr(p_v := 0) — checked in exact rational
/// arithmetic, no tolerance.
TEST(KcPropertyTest, RationalGradientMatchesExactDifference) {
  Pcg32 rng(20260806, 5);
  for (int round = 0; round < 100; ++round) {
    const int num_vars = 2 + static_cast<int>(rng.NextBounded(5));  // <= 6
    pqe::Lineage lineage;
    pqe::NodeId root =
        RandomFormula(&lineage, num_vars, 1 + rng.NextBounded(3), &rng);
    std::vector<Rational> probs(num_vars);
    for (Rational& p : probs) {
      p = Rational::Ratio(rng.NextBounded(17), 16);
    }
    StatusOr<CompiledQuery> compiled = CompileLineage(&lineage, root);
    ASSERT_TRUE(compiled.ok());
    StatusOr<std::vector<Rational>> gradient =
        EvaluateGradient<Rational>(compiled->circuit, compiled->root, probs);
    ASSERT_TRUE(gradient.ok());
    for (int v = 0; v < num_vars; ++v) {
      std::vector<Rational> fixed = probs;
      fixed[v] = Rational(1);
      Rational at_one =
          EvaluateCircuit<Rational>(compiled->circuit, compiled->root, fixed)
              .value();
      fixed[v] = Rational(0);
      Rational at_zero =
          EvaluateCircuit<Rational>(compiled->circuit, compiled->root, fixed)
              .value();
      EXPECT_EQ(gradient.value()[v], at_one - at_zero)
          << round << " var " << v << ": " << lineage.ToString(root);
    }
  }
}

}  // namespace
}  // namespace kc
}  // namespace ipdb
