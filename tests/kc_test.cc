#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/paper_examples.h"
#include "kc/cache.h"
#include "kc/compile.h"
#include "kc/evaluate.h"
#include "logic/parser.h"
#include "obs/obs.h"
#include "pqe/lineage.h"
#include "pqe/wmc.h"
#include "util/interval.h"

namespace ipdb {
namespace kc {
namespace {

using math::Rational;

TEST(CircuitTest, ConstructionAndSimplification) {
  Circuit circuit;
  NodeId x = circuit.Literal(0, true);
  NodeId not_x = circuit.Literal(0, false);
  NodeId y = circuit.Literal(1, true);
  // Hash consing.
  EXPECT_EQ(circuit.Literal(0, true), x);
  EXPECT_NE(x, not_x);
  // Constant folding and flattening.
  EXPECT_EQ(circuit.MakeAnd({x, circuit.False()}), Circuit::kFalseId);
  EXPECT_EQ(circuit.MakeAnd({x, circuit.True()}), x);
  EXPECT_EQ(circuit.MakeOr({x}), x);
  EXPECT_EQ(circuit.MakeOr({circuit.False(), y}), y);
  EXPECT_EQ(circuit.MakeOr({}), Circuit::kFalseId);
  NodeId xy = circuit.MakeAnd({x, y});
  EXPECT_EQ(circuit.MakeAnd({y, x}), xy);
  EXPECT_EQ(circuit.Support(xy), (std::vector<int>{0, 1}));
  // Decision simplification: equal branches collapse.
  EXPECT_EQ(circuit.MakeDecision(2, y, y), y);
  // hi = ⊤, lo = ⊥ is the positive literal.
  EXPECT_EQ(circuit.MakeDecision(0, circuit.True(), circuit.False()), x);
  EXPECT_GE(circuit.num_variables(), 2);
}

TEST(CircuitTest, CheckersAcceptValidCircuits) {
  Circuit circuit;
  NodeId x = circuit.Literal(0, true);
  NodeId y = circuit.Literal(1, true);
  NodeId d = circuit.MakeDecision(2, x, y);  // (v2∧x0) ∨ (¬v2∧x1)
  EXPECT_TRUE(circuit.CheckDecomposable(d).ok());
  EXPECT_TRUE(circuit.CheckDeterministic(d).ok());
  EXPECT_TRUE(circuit.Evaluate(d, {true, false, true}));
  EXPECT_FALSE(circuit.Evaluate(d, {true, false, false}));
}

TEST(CircuitTest, CheckersCatchViolations) {
  Circuit circuit;
  NodeId x = circuit.Literal(0, true);
  NodeId y = circuit.Literal(1, true);
  // x ∨ y without a determinism certificate: both disjuncts can hold.
  NodeId x_or_y = circuit.MakeOr({x, y});
  EXPECT_FALSE(circuit.CheckDeterministic(x_or_y).ok());
  // x ∧ (x ∨ y) shares variable 0 between the conjuncts.
  NodeId bad_and = circuit.MakeAnd({x, x_or_y});
  EXPECT_FALSE(circuit.CheckDecomposable(bad_and).ok());
  // The same shape becomes valid once the chain carries certificates.
  Circuit certified;
  NodeId a = certified.Literal(0, true);
  NodeId b = certified.Literal(1, true);
  NodeId not_a = certified.Literal(0, false);
  NodeId rest = certified.MakeAnd({not_a, b});
  NodeId chain = certified.MakeOr({a, rest});  // a ∨ (¬a ∧ b)
  EXPECT_TRUE(certified.CheckDeterministic(chain).ok());
  EXPECT_TRUE(certified.CheckDecomposable(chain).ok());
}

TEST(CircuitTest, ComplementMarks) {
  Circuit circuit;
  NodeId x = circuit.Literal(0, true);
  NodeId not_x = circuit.Literal(0, false);
  NodeId y = circuit.Literal(1, true);
  EXPECT_TRUE(circuit.AreComplements(x, not_x));
  EXPECT_TRUE(circuit.AreComplements(circuit.True(), circuit.False()));
  EXPECT_FALSE(circuit.AreComplements(x, y));
  circuit.MarkComplements(x, y);  // caller-asserted certificate
  EXPECT_TRUE(circuit.AreComplements(y, x));
}

TEST(EvaluateTest, HandComputedSemirings) {
  // f = x0 ∨ x1 over independent variables, compiled by hand as the
  // deterministic chain x0 ∨ (¬x0 ∧ x1).
  Circuit circuit;
  NodeId x0 = circuit.Literal(0, true);
  NodeId x1 = circuit.Literal(1, true);
  NodeId f = circuit.MakeOr({x0, circuit.MakeAnd({circuit.Literal(0, false), x1})});
  // double: 0.5 + 0.5·0.25.
  StatusOr<double> d = EvaluateCircuit<double>(circuit, f, {0.5, 0.25});
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value(), 0.625, 1e-15);
  // Rational, exactly: 1/3 + 2/3·1/7 = 3/7.
  StatusOr<Rational> q = EvaluateCircuit<Rational>(
      circuit, f, {Rational::Ratio(1, 3), Rational::Ratio(1, 7)});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value(), Rational::Ratio(3, 7));
  // Interval: marginals known only up to an interval.
  StatusOr<Interval> enclosure = EvaluateCircuit<Interval>(
      circuit, f, {Interval(0.4, 0.6), Interval(0.2, 0.3)});
  ASSERT_TRUE(enclosure.ok());
  EXPECT_LE(enclosure.value().lo(), 0.625);
  EXPECT_GE(enclosure.value().hi(), 0.625);
  EXPECT_TRUE(enclosure.value().Contains(0.4 + 0.6 * 0.2));
  // Short probability vectors are rejected.
  EXPECT_FALSE(EvaluateCircuit<double>(circuit, f, {0.5}).ok());
}

TEST(EvaluateTest, HandComputedGradient) {
  // f = x0 ∨ x1: Pr = p0 + (1−p0)·p1, ∂/∂p0 = 1−p1, ∂/∂p1 = 1−p0.
  Circuit circuit;
  NodeId x0 = circuit.Literal(0, true);
  NodeId x1 = circuit.Literal(1, true);
  NodeId f = circuit.MakeOr({x0, circuit.MakeAnd({circuit.Literal(0, false), x1})});
  StatusOr<std::vector<double>> g =
      EvaluateGradient<double>(circuit, f, {0.5, 0.25});
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g.value().size(), 2u);
  EXPECT_NEAR(g.value()[0], 0.75, 1e-15);
  EXPECT_NEAR(g.value()[1], 0.5, 1e-15);
  StatusOr<std::vector<Rational>> gq = EvaluateGradient<Rational>(
      circuit, f, {Rational::Ratio(1, 3), Rational::Ratio(1, 7)});
  ASSERT_TRUE(gq.ok());
  EXPECT_EQ(gq.value()[0], Rational::Ratio(6, 7));
  EXPECT_EQ(gq.value()[1], Rational::Ratio(2, 3));
}

TEST(CompileTest, DecomposableAndShannonShapes) {
  // Independent conjunction: pure decomposition, no decisions.
  pqe::Lineage lineage;
  pqe::NodeId x = lineage.Var(0);
  pqe::NodeId y = lineage.Var(1);
  pqe::NodeId z = lineage.Var(2);
  pqe::NodeId indep = lineage.MakeAnd({x, y});
  CompileOptions verify;
  verify.verify = true;
  StatusOr<CompiledQuery> compiled = CompileLineage(&lineage, indep, verify);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->stats.decisions, 0);
  EXPECT_GE(compiled->stats.decompositions, 1);
  StatusOr<double> p = EvaluateCircuit<double>(
      compiled->circuit, compiled->root, {0.5, 0.25, 0.0});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 0.125, 1e-15);

  // Shared variable forces a decision: (x∧y) ∨ (x∧z).
  pqe::NodeId shared = lineage.MakeOr(
      {lineage.MakeAnd({x, y}), lineage.MakeAnd({x, z})});
  compiled = CompileLineage(&lineage, shared, verify);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_GE(compiled->stats.decisions, 1);
  p = EvaluateCircuit<double>(compiled->circuit, compiled->root,
                              {0.5, 0.5, 0.5});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 0.375, 1e-15);  // 0.5 · (1 − 0.25)

  // Negation pushes to the literals: ¬(x ∧ y).
  pqe::NodeId nand = lineage.MakeNot(lineage.MakeAnd({x, y}));
  compiled = CompileLineage(&lineage, nand, verify);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  p = EvaluateCircuit<double>(compiled->circuit, compiled->root,
                              {0.5, 0.25, 0.0});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 1.0 - 0.125, 1e-15);
}

TEST(CompileTest, ConstantsAndLiterals) {
  pqe::Lineage lineage;
  CompileOptions verify;
  verify.verify = true;
  StatusOr<CompiledQuery> compiled =
      CompileLineage(&lineage, lineage.True(), verify);
  ASSERT_TRUE(compiled.ok());
  StatusOr<double> p =
      EvaluateCircuit<double>(compiled->circuit, compiled->root, {});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value(), 1.0);
  pqe::NodeId nx = lineage.MakeNot(lineage.Var(0));
  compiled = CompileLineage(&lineage, nx, verify);
  ASSERT_TRUE(compiled.ok());
  p = EvaluateCircuit<double>(compiled->circuit, compiled->root, {0.3});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 0.7, 1e-15);
}

TEST(FingerprintTest, StructuralAcrossLineages) {
  pqe::Lineage first;
  pqe::NodeId f1 = first.MakeOr(
      {first.MakeAnd({first.Var(0), first.Var(1)}), first.Var(2)});
  pqe::Lineage second;
  // Different construction order, same structure.
  pqe::NodeId v2 = second.Var(2);
  pqe::NodeId f2 = second.MakeOr(
      {v2, second.MakeAnd({second.Var(1), second.Var(0)})});
  EXPECT_EQ(LineageFingerprint(first, f1), LineageFingerprint(second, f2));
  // A different formula fingerprints differently.
  pqe::NodeId g = second.MakeAnd({second.Var(0), second.Var(2)});
  EXPECT_NE(LineageFingerprint(second, f2), LineageFingerprint(second, g));
}

TEST(CacheTest, LruEvictionAndHits) {
  CompiledQueryCache cache(/*capacity=*/2);
  pqe::Lineage lineage;
  pqe::NodeId a = lineage.MakeAnd({lineage.Var(0), lineage.Var(1)});
  pqe::NodeId b = lineage.MakeOr({lineage.Var(2), lineage.Var(3)});
  pqe::NodeId c = lineage.MakeAnd({lineage.Var(4), lineage.Var(5)});

  bool hit = true;
  ASSERT_TRUE(cache.GetOrCompile(&lineage, a, &hit).ok());
  EXPECT_FALSE(hit);
  ASSERT_TRUE(cache.GetOrCompile(&lineage, a, &hit).ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);

  ASSERT_TRUE(cache.GetOrCompile(&lineage, b, &hit).ok());
  ASSERT_TRUE(cache.GetOrCompile(&lineage, c, &hit).ok());  // evicts a
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_TRUE(cache.GetOrCompile(&lineage, a, &hit).ok());
  EXPECT_FALSE(hit);  // was evicted: recompiled

  // Structurally identical formulas in a *different* lineage hit.
  pqe::Lineage other;
  pqe::NodeId a2 = other.MakeAnd({other.Var(0), other.Var(1)});
  ASSERT_TRUE(cache.GetOrCompile(&other, a2, &hit).ok());
  EXPECT_TRUE(hit);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0);
}

pdb::TiPdb<double> PathTi() {
  rel::Schema schema({{"R", 2}, {"S", 1}});
  auto r = [](int64_t a, int64_t b) {
    return rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)});
  };
  return pdb::TiPdb<double>::CreateOrDie(
      schema, {{r(1, 2), 0.5},
               {r(2, 3), 0.25},
               {r(1, 3), 0.75},
               {rel::Fact(1, {rel::Value::Int(2)}), 0.4}});
}

TEST(QueryProbabilityTest, AnswersViaCompiledCacheWithStats) {
  pdb::TiPdb<double> ti = PathTi();
  logic::Formula sentence =
      logic::ParseSentence("exists x y z. R(x, y) & R(y, z)", ti.schema())
          .value();
  pqe::WmcStats first_stats;
  StatusOr<double> first =
      pqe::QueryProbability(ti, sentence, &first_stats);
  ASSERT_TRUE(first.ok());
  EXPECT_NEAR(first.value(), 0.125, 1e-12);
  // Asking again answers from the compiled artifact and says so.
  pqe::WmcStats second_stats;
  StatusOr<double> second =
      pqe::QueryProbability(ti, sentence, &second_stats);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), first.value());
  EXPECT_EQ(second_stats.artifact_cache_hits, 1);
  // The compilation trace is replayed from the artifact on a hit.
  EXPECT_EQ(second_stats.shannon_expansions, first_stats.shannon_expansions);
  EXPECT_EQ(second_stats.decompositions, first_stats.decompositions);
  // And it still agrees with both reference paths.
  pqe::Lineage lineage;
  auto root = pqe::GroundSentence(ti, sentence, &lineage);
  ASSERT_TRUE(root.ok());
  std::vector<double> probs;
  for (const auto& [fact, marginal] : ti.facts()) probs.push_back(marginal);
  auto legacy = pqe::ComputeProbability(&lineage, root.value(), probs);
  ASSERT_TRUE(legacy.ok());
  EXPECT_NEAR(second.value(), legacy.value(), 1e-12);
  auto brute = pqe::QueryProbabilityBruteForce(ti, sentence);
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(second.value(), brute.value(), 1e-12);
}

/// Acceptance check for the observability layer: the process-wide
/// registry's kc.artifact_cache.{hits,misses} move in lockstep with the
/// cache's own accessors AND with the per-call WmcStats hit flag —
/// delta-based, since other tests in this binary also touch the global
/// cache and registry.
TEST(QueryProbabilityTest, RegistryMirrorsArtifactCacheHits) {
  obs::SetMetricsEnabled(true);
  pdb::TiPdb<double> ti = PathTi();
  logic::Formula sentence =
      logic::ParseSentence("exists x y. R(x, y) & S(y)", ti.schema())
          .value();

  CompiledQueryCache& cache = GlobalCompiledQueryCache();
  [[maybe_unused]] obs::MetricsSnapshot before =
      obs::GlobalMetrics().Snapshot();
  const int64_t cache_hits_before = cache.hits();
  const int64_t cache_misses_before = cache.misses();

  // The sentence is a safe CQ, which the default ladder answers on the
  // lifted rung without ever probing the artifact cache — opt out so
  // this test keeps exercising the cache mirror.
  pqe::QueryOptions options;
  options.lifted = false;
  pqe::WmcStats stats;
  ASSERT_TRUE(pqe::QueryProbability(ti, sentence, options, &stats).ok());
  ASSERT_TRUE(pqe::QueryProbability(ti, sentence, options, &stats).ok());
  ASSERT_TRUE(pqe::QueryProbability(ti, sentence, options, &stats).ok());

  // The cache's own accessors always tally the three probes (they are
  // core cache state, not instrumentation)...
  const int64_t acc_hits = cache.hits() - cache_hits_before;
  const int64_t acc_misses = cache.misses() - cache_misses_before;
  EXPECT_EQ(acc_hits + acc_misses, 3);
  EXPECT_EQ(acc_hits, stats.artifact_cache_hits);
  // At most the first probe can miss (the sentence may have been
  // compiled by an earlier test): the last two always hit.
  EXPECT_GE(acc_hits, 2);

#if !defined(IPDB_OBSERVABILITY_DISABLED)
  // ...and with instrumentation compiled in, the registry mirrors them
  // exactly (ci.sh also builds this test with the macros compiled out,
  // where the registry legitimately sees nothing).
  obs::MetricsSnapshot after = obs::GlobalMetrics().Snapshot();
  const int64_t hit_delta = after.CounterValue("kc.artifact_cache.hits") -
                            before.CounterValue("kc.artifact_cache.hits");
  const int64_t miss_delta =
      after.CounterValue("kc.artifact_cache.misses") -
      before.CounterValue("kc.artifact_cache.misses");
  EXPECT_EQ(hit_delta, acc_hits);
  EXPECT_EQ(miss_delta, acc_misses);
  // Every query was counted.
  EXPECT_EQ(after.CounterValue("pqe.queries") -
                before.CounterValue("pqe.queries"),
            3);
#endif
}

TEST(ValidationTest, ComputeProbabilityRejectsBadInput) {
  pqe::Lineage lineage;
  pqe::NodeId f = lineage.MakeAnd({lineage.Var(0), lineage.Var(1)});
  // Too few probabilities for the lineage's variables.
  StatusOr<double> result = pqe::ComputeProbability(&lineage, f, {0.5});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // Out-of-range probability.
  result = pqe::ComputeProbability(&lineage, f, {0.5, 1.5});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // Negative probability.
  result = pqe::ComputeProbability(&lineage, f, {-0.1, 0.5});
  EXPECT_FALSE(result.ok());
  // NaN.
  result = pqe::ComputeProbability(
      &lineage, f, {0.5, std::numeric_limits<double>::quiet_NaN()});
  EXPECT_FALSE(result.ok());
  // Null lineage and bad root.
  EXPECT_FALSE(pqe::ComputeProbability(nullptr, f, {0.5, 0.5}).ok());
  EXPECT_FALSE(pqe::ComputeProbability(&lineage, 9999, {0.5, 0.5}).ok());
  // Valid input still works.
  result = pqe::ComputeProbability(&lineage, f, {0.5, 0.5});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value(), 0.25, 1e-15);
}

/// The Figure 1 witness, exactly: Example B.3's TI-PDB (facts R(a,a)
/// with marginal p and R(a,b) with marginal p₂) under the boolean view
/// body ∃x∃y∃z R(x,y) ∧ R(y,z). The only middle point is y = a, so the
/// query reduces to R(a,a) ∧ (R(a,a) ∨ R(a,b)) ≡ R(a,a): probability
/// exactly p, with no floating-point tolerance anywhere.
TEST(ExactWitnessTest, Fig1ExampleB3IsExact) {
  const Rational p = Rational::Ratio(1, 3);
  const Rational p2 = Rational::Ratio(2, 7);
  core::ExampleB3 example = core::MakeExampleB3(p, p2);
  // Grounding only looks at the fact set; mirror it as doubles.
  pdb::TiPdb<double>::FactList shadow;
  std::vector<Rational> exact_probs;
  for (const auto& [fact, marginal] : example.ti.facts()) {
    shadow.emplace_back(fact, marginal.ToDouble());
    exact_probs.push_back(marginal);
  }
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      example.ti.schema(), std::move(shadow));
  logic::Formula query =
      logic::ParseSentence("exists x y z. R(x, y) & R(y, z)", ti.schema())
          .value();
  pqe::Lineage lineage;
  StatusOr<pqe::NodeId> root = pqe::GroundSentence(ti, query, &lineage);
  ASSERT_TRUE(root.ok());
  CompileOptions verify;
  verify.verify = true;
  StatusOr<CompiledQuery> compiled =
      CompileLineage(&lineage, root.value(), verify);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  StatusOr<Rational> exact = EvaluateCircuit<Rational>(
      compiled->circuit, compiled->root, exact_probs);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value(), p);  // exact equality, not EXPECT_NEAR
}

/// The Figure 4 witness, exactly: the Example 5.6 countable TI-PDB
/// (marginals pᵢ = 1/(i²+1)) truncated to its first n facts. The
/// existence query has the closed form 1 − Π (1 − pᵢ), reproduced with
/// exact rational arithmetic through grounding + compilation +
/// semiring evaluation.
TEST(ExactWitnessTest, Fig4Example56IsExact) {
  const int64_t n = 8;
  pdb::CountableTiPdb countable = core::Example56Ti();
  pdb::TiPdb<double> ti = countable.Truncate(n);
  std::vector<Rational> exact_probs;
  Rational closed_form(1);
  for (int64_t i = 1; i <= n; ++i) {
    Rational pi = Rational::Ratio(1, i * i + 1);
    exact_probs.push_back(pi);
    closed_form *= Rational(1) - pi;
  }
  closed_form = Rational(1) - closed_form;
  logic::Formula query =
      logic::ParseSentence("exists x. U(x)", ti.schema()).value();
  pqe::Lineage lineage;
  StatusOr<pqe::NodeId> root = pqe::GroundSentence(ti, query, &lineage);
  ASSERT_TRUE(root.ok());
  CompileOptions verify;
  verify.verify = true;
  StatusOr<CompiledQuery> compiled =
      CompileLineage(&lineage, root.value(), verify);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  StatusOr<Rational> exact = EvaluateCircuit<Rational>(
      compiled->circuit, compiled->root, exact_probs);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value(), closed_form);  // exact equality
  // The gradient is exact too: ∂Pr/∂pᵢ = Π_{j≠i} (1 − pⱼ).
  StatusOr<std::vector<Rational>> gradient = EvaluateGradient<Rational>(
      compiled->circuit, compiled->root, exact_probs);
  ASSERT_TRUE(gradient.ok());
  for (int64_t i = 0; i < n; ++i) {
    Rational expected(1);
    for (int64_t j = 0; j < n; ++j) {
      if (j != i) expected *= Rational(1) - exact_probs[j];
    }
    EXPECT_EQ(gradient.value()[i], expected);
  }
}

}  // namespace
}  // namespace kc
}  // namespace ipdb
