/// Randomized exact-parity suite for the lifted safe-plan engine: ~500
/// random hierarchical self-join-free CQs over random TI instances,
/// checked in exact rational arithmetic (EXPECT_EQ, no tolerances)
/// against two independent oracles — the ground-then-compile d-DNNF
/// pipeline and brute-force world enumeration. Randomly generated
/// queries *outside* the safe class double as rejection coverage.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kc/compile.h"
#include "kc/evaluate.h"
#include "logic/evaluator.h"
#include "logic/formula.h"
#include "logic/parser.h"
#include "math/rational.h"
#include "pqe/lineage.h"
#include "pqe/safe_plan.h"
#include "relational/instance.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace pqe {
namespace {

rel::Schema ParitySchema() {
  return rel::Schema({{"R", 1}, {"S", 2}, {"T", 1}, {"U", 2}});
}

/// A random conjunction of quantified groups. Groups deliberately reuse
/// the variable names x/y/z, so multi-group queries exercise the
/// alpha-renaming of shadowed quantifiers; terms mix variables and
/// constants; relations are drawn without replacement (self-join-free
/// by construction). Hierarchicality is random — three-atom groups
/// regularly produce H0-shaped patterns — and LiftedPlan::Compile is
/// the filter.
logic::Formula RandomCq(const rel::Schema& schema, int universe,
                        Pcg32* rng) {
  const int num_relations = schema.num_relations();
  std::vector<int> relations(num_relations);
  for (int i = 0; i < num_relations; ++i) relations[i] = i;
  for (int i = num_relations - 1; i > 0; --i) {
    std::swap(relations[i],
              relations[rng->NextBounded(static_cast<uint32_t>(i + 1))]);
  }
  const int num_groups = 1 + static_cast<int>(rng->NextBounded(2));
  const char* names[] = {"x", "y", "z"};
  size_t next_relation = 0;
  std::vector<logic::Formula> groups;
  for (int g = 0; g < num_groups; ++g) {
    const int num_vars = 1 + static_cast<int>(rng->NextBounded(3));
    std::vector<std::string> vars(names, names + num_vars);
    int num_atoms = 1 + static_cast<int>(rng->NextBounded(3));
    std::vector<logic::Formula> atoms;
    while (num_atoms-- > 0 && next_relation < relations.size()) {
      const int relation = relations[next_relation++];
      std::vector<logic::Term> terms;
      for (int pos = 0; pos < schema.arity(relation); ++pos) {
        if (rng->NextBounded(10) < 9) {
          terms.push_back(logic::Term::Var(
              vars[rng->NextBounded(static_cast<uint32_t>(vars.size()))]));
        } else {
          terms.push_back(logic::Term::Int(static_cast<int64_t>(
              rng->NextBounded(static_cast<uint32_t>(universe)))));
        }
      }
      atoms.push_back(logic::Atom(relation, std::move(terms)));
    }
    if (atoms.empty()) continue;
    groups.push_back(logic::ExistsAll(vars, logic::And(std::move(atoms))));
  }
  if (groups.empty()) return logic::Truth();
  return logic::And(std::move(groups));
}

/// Exact brute-force oracle: Σ over worlds satisfying the sentence of
/// the world's rational probability.
math::Rational BruteForceRational(const pdb::TiPdb<math::Rational>& ti,
                                  const logic::Formula& sentence) {
  math::Rational total;
  const uint64_t worlds = uint64_t{1} << ti.num_facts();
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    std::vector<rel::Fact> chosen;
    math::Rational probability(1);
    for (int i = 0; i < ti.num_facts(); ++i) {
      if ((mask >> i) & 1) {
        chosen.push_back(ti.facts()[i].first);
        probability *= ti.facts()[i].second;
      } else {
        probability *= math::Rational(1) - ti.facts()[i].second;
      }
    }
    rel::Instance world(std::move(chosen));
    auto holds = logic::Evaluate(world, ti.schema(), sentence);
    if (holds.ok() && holds.value()) total += probability;
  }
  return total;
}

TEST(LiftedParityTest, RandomHierarchicalQueriesMatchCircuitAndBruteForce) {
  rel::Schema schema = ParitySchema();
  Pcg32 rng(0x11f7ed);
  int accepted = 0;
  int rejected = 0;
  int attempts = 0;
  const int kTarget = 500;
  const int kMaxAttempts = 5000;
  while (accepted < kTarget && ++attempts <= kMaxAttempts) {
    logic::Formula sentence = RandomCq(schema, 3, &rng);
    StatusOr<LiftedPlan> plan = LiftedPlan::Compile(sentence);
    if (!plan.ok()) {
      // Rejection coverage: everything LiftedPlan turns away must be a
      // clean kFailedPrecondition (non-hierarchical — the generator
      // never emits self-joins or non-CQ shapes).
      EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition)
          << sentence.ToString(schema);
      ++rejected;
      continue;
    }
    ++accepted;

    pdb::TiPdb<math::Rational> exact_ti =
        testing_util::RandomRationalTi(schema, 8, 3, 10, &rng);
    // Lifted evaluation, exact.
    StatusOr<math::Rational> lifted = plan.value().Evaluate(exact_ti);
    ASSERT_TRUE(lifted.ok())
        << sentence.ToString(schema) << ": " << lifted.status().ToString();

    // Circuit oracle: ground the double shadow, compile, evaluate the
    // d-DNNF with the rational marginals (grounding is
    // probability-independent, so the shadow only fixes the fact order).
    pdb::TiPdb<double>::FactList shadow;
    std::map<rel::Fact, math::Rational> marginals;
    for (const auto& [fact, marginal] : exact_ti.facts()) {
      shadow.emplace_back(fact, marginal.ToDouble());
      marginals.emplace(fact, marginal);
    }
    pdb::TiPdb<double> ti =
        pdb::TiPdb<double>::CreateOrDie(schema, std::move(shadow));
    Lineage lineage;
    StatusOr<NodeId> root = GroundSentence(ti, sentence, &lineage);
    ASSERT_TRUE(root.ok()) << sentence.ToString(schema);
    StatusOr<kc::CompiledQuery> compiled =
        kc::CompileLineage(&lineage, root.value());
    ASSERT_TRUE(compiled.ok()) << sentence.ToString(schema);
    std::vector<math::Rational> probs;
    for (const auto& [fact, marginal] : ti.facts()) {
      probs.push_back(marginals.at(fact));
    }
    StatusOr<math::Rational> circuit = kc::EvaluateCircuitExact(
        compiled.value().circuit, compiled.value().root, probs);
    ASSERT_TRUE(circuit.ok()) << sentence.ToString(schema);

    // Brute-force oracle.
    math::Rational brute = BruteForceRational(exact_ti, sentence);

    EXPECT_EQ(lifted.value(), circuit.value())
        << sentence.ToString(schema);
    EXPECT_EQ(lifted.value(), brute) << sentence.ToString(schema);
    if (lifted.value() != circuit.value() || lifted.value() != brute) {
      break;  // one counterexample is enough output
    }
  }
  EXPECT_EQ(accepted, kTarget)
      << "generator too restrictive: " << accepted << " accepted / "
      << rejected << " rejected in " << attempts << " attempts";
  // The generator must also exercise the rejection path.
  EXPECT_GT(rejected, 10);
}

TEST(LiftedParityTest, SelfJoinAndNonCqShapesRejected) {
  rel::Schema schema = ParitySchema();
  // Self-join.
  auto sj = LiftedPlan::Compile(
      logic::ParseSentence("exists x y z. S(x, y) & S(y, z)", schema)
          .value());
  EXPECT_FALSE(sj.ok());
  EXPECT_EQ(sj.status().code(), StatusCode::kFailedPrecondition);
  // Disjunction.
  auto disj = LiftedPlan::Compile(
      logic::ParseSentence("(exists x. R(x)) | (exists x. T(x))", schema)
          .value());
  EXPECT_FALSE(disj.ok());
  EXPECT_EQ(disj.status().code(), StatusCode::kFailedPrecondition);
  // The canonical #P-hard H0.
  auto h0 = LiftedPlan::Compile(
      logic::ParseSentence("exists x y. R(x) & S(x, y) & T(y)", schema)
          .value());
  EXPECT_FALSE(h0.ok());
  EXPECT_EQ(h0.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace pqe
}  // namespace ipdb
