// Randomized property tests for the small-value/limb BigInt and the
// Rational fast paths: every result is cross-checked against a decimal
// string-based schoolbook reference that shares no code with the limb
// kernels, and canonical-form invariants are asserted after every
// operation. Fixed seeds keep the suite deterministic.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "math/bigint.h"
#include "math/rational.h"

namespace ipdb {
namespace math {
namespace {

// --- Decimal-string reference arithmetic (schoolbook, sign + digits) ---

struct RefInt {
  bool negative = false;
  std::string digits = "0";  // most significant first, no leading zeros
};

RefInt RefNormalize(RefInt v) {
  size_t first = v.digits.find_first_not_of('0');
  if (first == std::string::npos) return RefInt{false, "0"};
  v.digits = v.digits.substr(first);
  return v;
}

// Compares magnitudes only.
int RefCompareMag(const RefInt& a, const RefInt& b) {
  if (a.digits.size() != b.digits.size()) {
    return a.digits.size() < b.digits.size() ? -1 : 1;
  }
  if (a.digits != b.digits) return a.digits < b.digits ? -1 : 1;
  return 0;
}

std::string RefAddMag(const std::string& a, const std::string& b) {
  std::string out;
  int carry = 0;
  for (size_t i = 0; i < a.size() || i < b.size() || carry != 0; ++i) {
    int da = i < a.size() ? a[a.size() - 1 - i] - '0' : 0;
    int db = i < b.size() ? b[b.size() - 1 - i] - '0' : 0;
    int sum = da + db + carry;
    out.push_back(static_cast<char>('0' + sum % 10));
    carry = sum / 10;
  }
  return std::string(out.rbegin(), out.rend());
}

// Requires |a| >= |b|.
std::string RefSubMag(const std::string& a, const std::string& b) {
  std::string out;
  int borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int da = a[a.size() - 1 - i] - '0';
    int db = i < b.size() ? b[b.size() - 1 - i] - '0' : 0;
    int diff = da - db - borrow;
    borrow = diff < 0 ? 1 : 0;
    if (diff < 0) diff += 10;
    out.push_back(static_cast<char>('0' + diff));
  }
  return std::string(out.rbegin(), out.rend());
}

RefInt RefAdd(const RefInt& a, const RefInt& b) {
  if (a.negative == b.negative) {
    return RefNormalize(RefInt{a.negative, RefAddMag(a.digits, b.digits)});
  }
  int cmp = RefCompareMag(a, b);
  if (cmp == 0) return RefInt{false, "0"};
  if (cmp > 0) {
    return RefNormalize(RefInt{a.negative, RefSubMag(a.digits, b.digits)});
  }
  return RefNormalize(RefInt{b.negative, RefSubMag(b.digits, a.digits)});
}

RefInt RefNeg(RefInt v) {
  if (v.digits != "0") v.negative = !v.negative;
  return v;
}

RefInt RefMul(const RefInt& a, const RefInt& b) {
  std::vector<int> acc(a.digits.size() + b.digits.size(), 0);
  for (size_t i = 0; i < a.digits.size(); ++i) {
    int da = a.digits[a.digits.size() - 1 - i] - '0';
    for (size_t j = 0; j < b.digits.size(); ++j) {
      int db = b.digits[b.digits.size() - 1 - j] - '0';
      acc[i + j] += da * db;
    }
  }
  std::string out;
  int carry = 0;
  for (size_t i = 0; i < acc.size(); ++i) {
    int v = acc[i] + carry;
    out.push_back(static_cast<char>('0' + v % 10));
    carry = v / 10;
  }
  while (carry != 0) {
    out.push_back(static_cast<char>('0' + carry % 10));
    carry /= 10;
  }
  std::string digits(out.rbegin(), out.rend());
  return RefNormalize(RefInt{a.negative != b.negative, std::move(digits)});
}

std::string RefToString(const RefInt& v) {
  if (v.digits == "0") return "0";
  return (v.negative ? "-" : "") + v.digits;
}

RefInt RefFromBigInt(const BigInt& v) {
  std::string s = v.ToString();
  RefInt out;
  if (!s.empty() && s[0] == '-') {
    out.negative = true;
    s = s.substr(1);
  }
  out.digits = std::move(s);
  return RefNormalize(out);
}

// --- Random value generation spanning the inline/limb boundary ---

class RandomBigInts {
 public:
  explicit RandomBigInts(uint32_t seed) : rng_(seed) {}

  // A value whose magnitude has a random bit length in [0, max_bits],
  // biased toward the int64 boundary, plus occasional special values.
  BigInt Next(int max_bits = 160) {
    switch (rng_() % 16) {
      case 0:
        return BigInt(0);
      case 1:
        return BigInt(INT64_MAX);
      case 2:
        return BigInt(INT64_MIN);
      case 3:
        return BigInt(INT64_MAX) + BigInt(1);
      case 4:
        return -(BigInt(INT64_MAX) + BigInt(2));
      default:
        break;
    }
    int bits = static_cast<int>(rng_() % (max_bits + 1));
    BigInt value(0);
    for (int produced = 0; produced < bits; produced += 32) {
      value *= BigInt(int64_t{1} << 32);
      value += BigInt(static_cast<int64_t>(rng_()));
    }
    if (rng_() % 2 == 0) value = -value;
    return value;
  }

  uint32_t Raw() { return rng_(); }

 private:
  std::mt19937 rng_;
};

TEST(BigIntPropertyTest, AddSubMulMatchDecimalReference) {
  RandomBigInts gen(20250806);
  for (int i = 0; i < 4000; ++i) {
    BigInt a = gen.Next();
    BigInt b = gen.Next();
    RefInt ra = RefFromBigInt(a);
    RefInt rb = RefFromBigInt(b);
    EXPECT_EQ((a + b).ToString(), RefToString(RefAdd(ra, rb)))
        << a << " + " << b;
    EXPECT_EQ((a - b).ToString(), RefToString(RefAdd(ra, RefNeg(rb))))
        << a << " - " << b;
    EXPECT_EQ((a * b).ToString(), RefToString(RefMul(ra, rb)))
        << a << " * " << b;
  }
}

TEST(BigIntPropertyTest, InPlaceOperatorsMatchOutOfPlace) {
  RandomBigInts gen(7);
  for (int i = 0; i < 3000; ++i) {
    BigInt a = gen.Next();
    BigInt b = gen.Next();
    BigInt sum = a;
    sum += b;
    EXPECT_EQ(sum, a + b);
    BigInt diff = a;
    diff -= b;
    EXPECT_EQ(diff, a - b);
    BigInt prod = a;
    prod *= b;
    EXPECT_EQ(prod, a * b);
    // Self-aliasing.
    BigInt twice = a;
    twice += twice;
    EXPECT_EQ(twice, a + a);
    BigInt zero = a;
    zero -= zero;
    EXPECT_TRUE(zero.is_zero());
    BigInt square = a;
    square *= square;
    EXPECT_EQ(square, a * a);
  }
}

TEST(BigIntPropertyTest, DivModRoundTripsAndBoundsRemainder) {
  RandomBigInts gen(99);
  int checked = 0;
  for (int i = 0; i < 4000; ++i) {
    BigInt a = gen.Next();
    BigInt b = gen.Next();
    if (b.is_zero()) continue;
    ++checked;
    BigInt q, r;
    ASSERT_TRUE(BigInt::DivMod(a, b, &q, &r).ok());
    EXPECT_EQ(q * b + r, a) << a << " / " << b;
    EXPECT_LT(r.Abs(), b.Abs());
    if (!r.is_zero()) EXPECT_EQ(r.sign(), a.sign());
    EXPECT_EQ(a / b, q);
    EXPECT_EQ(a % b, r);
  }
  EXPECT_GT(checked, 3000);
}

TEST(BigIntPropertyTest, GcdDividesBothAndIsMaximal) {
  RandomBigInts gen(1234);
  for (int i = 0; i < 2000; ++i) {
    BigInt a = gen.Next(128);
    BigInt b = gen.Next(128);
    BigInt g = BigInt::Gcd(a, b);
    if (a.is_zero() && b.is_zero()) {
      EXPECT_TRUE(g.is_zero());
      continue;
    }
    ASSERT_FALSE(g.is_zero());
    EXPECT_FALSE(g.is_negative());
    EXPECT_TRUE((a % g).is_zero());
    EXPECT_TRUE((b % g).is_zero());
    // Maximality: a/g and b/g are coprime.
    EXPECT_TRUE(BigInt::Gcd(a / g, b / g).is_one());
  }
}

TEST(BigIntPropertyTest, StringRoundTripAcrossBoundary) {
  RandomBigInts gen(55);
  for (int i = 0; i < 2000; ++i) {
    BigInt a = gen.Next();
    StatusOr<BigInt> parsed = BigInt::FromString(a.ToString());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), a);
    // The representation is canonical: parsing and arithmetic must agree
    // on inline-ness, so field-wise equality implies same form.
    EXPECT_EQ(parsed.value().is_inline(), a.is_inline());
  }
}

TEST(BigIntPropertyTest, CollapsesToInlineExactlyWithinInt64) {
  // Values just inside the int64 range are inline; just outside spill.
  BigInt max(INT64_MAX);
  BigInt min(INT64_MIN);
  EXPECT_TRUE(max.is_inline());
  EXPECT_TRUE(min.is_inline());
  EXPECT_FALSE((max + BigInt(1)).is_inline());
  EXPECT_FALSE((min - BigInt(1)).is_inline());
  // Arithmetic that lands back inside collapses to inline.
  BigInt back = (max + BigInt(1)) - BigInt(1);
  EXPECT_TRUE(back.is_inline());
  EXPECT_EQ(back, max);
  BigInt low = (min - BigInt(1)) + BigInt(1);
  EXPECT_TRUE(low.is_inline());
  EXPECT_EQ(low, min);
  ASSERT_TRUE(low.ToInt64().ok());
  EXPECT_EQ(low.ToInt64().value(), INT64_MIN);
}

TEST(BigIntPropertyTest, ZeroDivisorIsRejectedWithStatus) {
  BigInt q, r;
  Status status = BigInt::DivMod(BigInt(5), BigInt(0), &q, &r);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(BigInt::CheckedDiv(BigInt(5), BigInt(0)).ok());
  EXPECT_FALSE(BigInt::CheckedMod(BigInt(5), BigInt(0)).ok());
  // Non-zero divisors succeed through the same entry points.
  StatusOr<BigInt> ok = BigInt::CheckedDiv(BigInt(7), BigInt(2));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), BigInt(3));
}

// --- Rational invariants -------------------------------------------------

void ExpectCanonical(const Rational& r, const std::string& context) {
  EXPECT_FALSE(r.denominator().is_negative()) << context;
  EXPECT_FALSE(r.denominator().is_zero()) << context;
  if (r.numerator().is_zero()) {
    EXPECT_TRUE(r.denominator().is_one()) << context;
  } else {
    EXPECT_TRUE(BigInt::Gcd(r.numerator(), r.denominator()).is_one())
        << context;
  }
}

TEST(RationalPropertyTest, OperationsPreserveCanonicalForm) {
  RandomBigInts gen(31337);
  for (int i = 0; i < 2500; ++i) {
    BigInt an = gen.Next(96);
    BigInt ad = gen.Next(96);
    BigInt bn = gen.Next(96);
    BigInt bd = gen.Next(96);
    if (ad.is_zero()) ad = BigInt(1);
    if (bd.is_zero()) bd = BigInt(1);
    Rational a(an, ad);
    Rational b(bn, bd);
    ExpectCanonical(a, "construct a");
    ExpectCanonical(b, "construct b");

    Rational sum = a + b;
    ExpectCanonical(sum, "sum");
    Rational diff = a - b;
    ExpectCanonical(diff, "diff");
    Rational prod = a * b;
    ExpectCanonical(prod, "prod");

    // Cross-check the fast paths against the naive textbook formulas fed
    // through the canonicalizing constructor.
    EXPECT_EQ(sum, Rational(a.numerator() * b.denominator() +
                                b.numerator() * a.denominator(),
                            a.denominator() * b.denominator()));
    EXPECT_EQ(prod, Rational(a.numerator() * b.numerator(),
                             a.denominator() * b.denominator()));
    EXPECT_EQ(sum - b, a);
    if (!b.is_zero()) {
      Rational quot = a / b;
      ExpectCanonical(quot, "quot");
      EXPECT_EQ(quot * b, a);
    }

    // Algebraic identities that route through different fast paths.
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a - a, Rational(0));
    Rational doubled = a;
    doubled += doubled;
    EXPECT_EQ(doubled, a * Rational(2));
  }
}

TEST(RationalPropertyTest, EqualAndCoprimeDenominatorFastPaths) {
  // Exercise the special-cased denominators explicitly.
  Rational third = Rational::Ratio(1, 3);
  Rational two_thirds = Rational::Ratio(2, 3);
  EXPECT_EQ(third + two_thirds, Rational(1));  // equal denominators
  ExpectCanonical(third + two_thirds, "equal-denominator sum");
  Rational half = Rational::Ratio(1, 2);
  EXPECT_EQ(half + third, Rational::Ratio(5, 6));  // coprime denominators
  EXPECT_EQ(half + Rational(2), Rational::Ratio(5, 2));  // integer operand
  EXPECT_EQ(Rational(2) + half, Rational::Ratio(5, 2));
  Rational sixth = Rational::Ratio(1, 6);
  EXPECT_EQ(half + sixth, Rational::Ratio(2, 3));  // shared factor
}

TEST(RationalPropertyTest, ZeroDenominatorIsRejectedWithStatus) {
  StatusOr<Rational> bad = Rational::Create(BigInt(3), BigInt(0));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  StatusOr<Rational> good = Rational::Create(BigInt(3), BigInt(-6));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), Rational::Ratio(-1, 2));
  EXPECT_FALSE(Rational::CheckedDiv(Rational(1), Rational(0)).ok());
  StatusOr<Rational> div =
      Rational::CheckedDiv(Rational::Ratio(1, 2), Rational::Ratio(3, 4));
  ASSERT_TRUE(div.ok());
  EXPECT_EQ(div.value(), Rational::Ratio(2, 3));
}

TEST(RationalPropertyTest, PowMatchesRepeatedMultiplication) {
  RandomBigInts gen(777);
  for (int i = 0; i < 200; ++i) {
    BigInt n = gen.Next(40);
    BigInt d = gen.Next(40);
    if (d.is_zero()) d = BigInt(1);
    Rational base(n, d);
    Rational by_mul(1);
    for (int e = 0; e <= 6; ++e) {
      Rational by_pow = base.Pow(e);
      ExpectCanonical(by_pow, "pow");
      EXPECT_EQ(by_pow, by_mul);
      by_mul *= base;
    }
    if (!base.is_zero()) {
      EXPECT_EQ(base.Pow(-3) * base.Pow(3), Rational(1));
    }
  }
}

}  // namespace
}  // namespace math
}  // namespace ipdb
