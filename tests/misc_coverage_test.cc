// Remaining coverage: printing/fallback paths, metric accessors, interval
// string forms, schema-less fact rendering, empirical-distribution
// bookkeeping, and countable-PDB analysis options.

#include <gtest/gtest.h>

#include <sstream>

#include "core/paper_examples.h"
#include "pdb/metrics.h"
#include "pdb/sampling.h"
#include "pdb/ti_pdb.h"
#include "relational/fact.h"
#include "util/interval.h"
#include "util/random.h"
#include "util/series.h"

namespace ipdb {
namespace {

using math::Rational;

TEST(MiscCoverageTest, FactRenderingWithoutSchema) {
  rel::Fact fact(7, {rel::Value::Int(1), rel::Value::Symbol("a")});
  EXPECT_EQ(fact.ToString(), "R#7(1, a)");
  std::ostringstream os;
  os << fact;
  EXPECT_EQ(os.str(), "R#7(1, a)");
}

TEST(MiscCoverageTest, InstanceStreaming) {
  rel::Instance instance({rel::Fact(0, {rel::Value::Int(3)})});
  std::ostringstream os;
  os << instance;
  EXPECT_EQ(os.str(), "{R#0(3)}");
}

TEST(MiscCoverageTest, IntervalStreamForms) {
  std::ostringstream os;
  os << Interval(1.25, 2.5) << " " << Interval::AtLeast(3.0);
  EXPECT_EQ(os.str(), "[1.25, 2.5] [3, inf]");
}

TEST(MiscCoverageTest, SumAnalysisToStringVariants) {
  SumAnalysis converged;
  converged.kind = SumAnalysis::Kind::kConverged;
  converged.enclosure = Interval(1.0, 1.0);
  converged.terms_used = 5;
  EXPECT_NE(converged.ToString().find("converged"), std::string::npos);
  SumAnalysis diverged;
  diverged.kind = SumAnalysis::Kind::kDiverged;
  EXPECT_NE(diverged.ToString().find("diverges"), std::string::npos);
  SumAnalysis witness;
  witness.kind = SumAnalysis::Kind::kDivergedWitness;
  witness.partial_sum = 7.0;
  EXPECT_NE(witness.ToString().find("witness"), std::string::npos);
}

TEST(MiscCoverageTest, EmpiricalDistributionBookkeeping) {
  rel::Instance a({rel::Fact(0, {rel::Value::Int(1)})});
  rel::Instance b;
  pdb::EmpiricalDistribution empirical;
  EXPECT_DOUBLE_EQ(empirical.Frequency(a), 0.0);
  empirical.Add(a);
  empirical.Add(a);
  empirical.Add(b);
  EXPECT_EQ(empirical.total(), 3);
  EXPECT_EQ(empirical.Count(a), 2);
  EXPECT_DOUBLE_EQ(empirical.Frequency(a), 2.0 / 3.0);
  EXPECT_EQ(empirical.counts().size(), 2u);
}

TEST(MiscCoverageTest, TvDistanceMixedExactVsDouble) {
  rel::Schema schema({{"U", 1}});
  rel::Instance w({rel::Fact(0, {rel::Value::Int(1)})});
  pdb::FinitePdb<Rational> exact = pdb::FinitePdb<Rational>::CreateOrDie(
      schema, {{rel::Instance(), Rational::Ratio(1, 4)},
               {w, Rational::Ratio(3, 4)}});
  pdb::FinitePdb<double> approx = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{rel::Instance(), 0.25}, {w, 0.75}});
  EXPECT_NEAR(pdb::TvDistanceMixed(exact, approx), 0.0, 1e-15);
  pdb::FinitePdb<double> shifted = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{rel::Instance(), 0.5}, {w, 0.5}});
  EXPECT_NEAR(pdb::TvDistanceMixed(exact, shifted), 0.25, 1e-15);
}

TEST(MiscCoverageTest, TiToStringAndCountableAccessors) {
  pdb::CountableTiPdb ti = core::Example56Ti();
  EXPECT_NE(ti.description().find("Example 5.6"), std::string::npos);
  EXPECT_EQ(ti.FactAt(0), rel::Fact(0, {rel::Value::Int(1)}));
  EXPECT_DOUBLE_EQ(ti.MarginalAt(0), 0.5);
  pdb::TiPdb<Rational> finite = pdb::TiPdb<Rational>::CreateOrDie(
      rel::Schema({{"U", 1}}),
      {{rel::Fact(0, {rel::Value::Int(1)}), Rational::Ratio(1, 2)}});
  EXPECT_NE(finite.ToString().find("1/2"), std::string::npos);
}

TEST(MiscCoverageTest, GeometricSeriesHelpersAtBoundaries) {
  // r = 0: sum is just the first term.
  Series series = GeometricSeries(3.0, 0.0);
  SumAnalysis result = AnalyzeSum(series);
  ASSERT_EQ(result.kind, SumAnalysis::Kind::kConverged);
  EXPECT_TRUE(result.enclosure.Contains(3.0));
  // c = 0: the zero series.
  Series zero = GeometricSeries(0.0, 0.5);
  SumAnalysis zero_result = AnalyzeSum(zero);
  ASSERT_EQ(zero_result.kind, SumAnalysis::Kind::kConverged);
  EXPECT_TRUE(zero_result.enclosure.Contains(0.0));
}

TEST(MiscCoverageTest, SchemaToStringAndEquality) {
  rel::Schema a({{"R", 2}, {"S", 0}});
  rel::Schema b({{"R", 2}, {"S", 0}});
  rel::Schema c({{"R", 2}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "{R/2, S/0}");
}

TEST(MiscCoverageTest, CountablePdbDescriptionsArePropagated) {
  pdb::CountablePdb ex39 = core::Example39();
  EXPECT_NE(ex39.description().find("3.9"), std::string::npos);
  EXPECT_NE(ex39.ProbabilitySeries().description.find("3.9"),
            std::string::npos);
  EXPECT_NE(ex39.MomentSeries(2).description.find("k=2"),
            std::string::npos);
}

}  // namespace
}  // namespace ipdb
