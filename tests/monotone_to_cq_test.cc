#include "core/monotone_to_cq.h"

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "logic/classify.h"
#include "logic/parser.h"

namespace ipdb {
namespace core {
namespace {

using math::Rational;

TEST(MonotoneToCqTest, ExampleB3BecomesCq) {
  // Example B.3's view is already a CQ, so Proposition B.4 applies
  // directly; the rebuilt representation must be exactly equivalent.
  ExampleB3 example =
      MakeExampleB3(Rational::Ratio(1, 2), Rational::Ratio(1, 3));
  auto built = BuildMonotoneToCq(example.ti, example.view);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_TRUE(logic::IsCqView(built.value().view));
  auto tv = VerifyMonotoneToCq(example.ti, example.view, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(MonotoneToCqTest, UcqViewBecomesCq) {
  // A genuine UCQ (not CQ) view collapses into CQ(TI_fin) — the
  // Figure 1 equality CQ(TI_fin) = UCQ(TI_fin).
  rel::Schema in({{"A", 1}, {"B", 1}});
  rel::Fact a(0, {rel::Value::Int(1)});
  rel::Fact b(1, {rel::Value::Int(2)});
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      in, {{a, Rational::Ratio(1, 2)}, {b, Rational::Ratio(1, 4)}});
  rel::Schema out({{"T", 1}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x"};
  def.body = logic::ParseFormula("A(x) | B(x)", in).value();
  logic::FoView ucq_view = logic::FoView::Create(in, out, {def}).value();
  ASSERT_TRUE(logic::IsUcqView(ucq_view));
  ASSERT_FALSE(logic::IsCqView(ucq_view));

  auto built = BuildMonotoneToCq(ti, ucq_view);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_TRUE(logic::IsCqView(built.value().view));
  auto tv = VerifyMonotoneToCq(ti, ucq_view, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(MonotoneToCqTest, CertainFactsGoToTAlways) {
  rel::Schema in({{"A", 1}});
  rel::Fact sure(0, {rel::Value::Int(1)});
  rel::Fact maybe(0, {rel::Value::Int(2)});
  pdb::TiPdb<Rational> ti = pdb::TiPdb<Rational>::CreateOrDie(
      in, {{sure, Rational(1)}, {maybe, Rational::Ratio(1, 2)}});
  logic::FoView identity = logic::FoView::Identity(in);
  auto built = BuildMonotoneToCq(ti, identity);
  ASSERT_TRUE(built.ok());
  // Only one uncertain fact ⇒ selector facts Ŝ(0), Ŝ(1).
  int selector_count = 0;
  for (const auto& [fact, marginal] : built.value().ti.facts()) {
    if (built.value().cq_schema.relation_name(fact.relation()) == "S_hat") {
      ++selector_count;
    }
  }
  EXPECT_EQ(selector_count, 2);
  auto tv = VerifyMonotoneToCq(ti, identity, built.value());
  ASSERT_TRUE(tv.ok());
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST(MonotoneToCqTest, TooManyFactsRejected) {
  rel::Schema in({{"A", 1}});
  pdb::TiPdb<Rational>::FactList facts;
  for (int i = 0; i < 6; ++i) {
    facts.emplace_back(rel::Fact(0, {rel::Value::Int(i)}),
                       Rational::Ratio(1, 2));
  }
  pdb::TiPdb<Rational> ti =
      pdb::TiPdb<Rational>::CreateOrDie(in, std::move(facts));
  logic::FoView identity = logic::FoView::Identity(in);
  EXPECT_FALSE(BuildMonotoneToCq(ti, identity, /*max_n=*/4).ok());
}

}  // namespace
}  // namespace core
}  // namespace ipdb
