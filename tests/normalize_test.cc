#include "logic/normalize.h"

#include <gtest/gtest.h>

#include "logic/evaluator.h"
#include "logic/parser.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace logic {
namespace {

rel::Schema TestSchema() { return rel::Schema({{"R", 2}, {"S", 1}}); }

/// No kNot above anything but atoms/equalities, no kImplies/kIff.
bool IsNnf(const Formula& f) {
  switch (f.kind()) {
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      return false;
    case FormulaKind::kNot: {
      FormulaKind inner = f.children()[0].kind();
      return inner == FormulaKind::kAtom || inner == FormulaKind::kEquals;
    }
    default:
      for (const Formula& child : f.children()) {
        if (!IsNnf(child)) return false;
      }
      return true;
  }
}

TEST(NormalizeTest, NnfShapes) {
  rel::Schema schema = TestSchema();
  const char* cases[] = {
      "!(S(x) & R(x, y))",
      "S(x) -> R(x, y)",
      "S(x) <-> S(y)",
      "!(exists x. S(x))",
      "!(forall x. S(x) -> R(x, x))",
      "!(!(S(x) | !S(y)))",
  };
  for (const char* text : cases) {
    Formula f = ParseFormula(text, schema).value();
    EXPECT_TRUE(IsNnf(ToNnf(f))) << text << " => "
                                 << ToNnf(f).ToString(schema);
  }
}

TEST(NormalizeTest, NnfPreservesSemantics) {
  rel::Schema schema = TestSchema();
  const char* cases[] = {
      "!(exists x. S(x) & !(exists y. R(x, y)))",
      "forall x. S(x) <-> exists y. R(x, y)",
      "(S(1) -> R(1, 2)) <-> !(S(2))",
      "!(forall x y. R(x, y) -> (S(x) <-> S(y)))",
  };
  Pcg32 rng(503);
  for (const char* text : cases) {
    Formula f = ParseSentence(text, schema).value();
    Formula nnf = ToNnf(f);
    for (int trial = 0; trial < 12; ++trial) {
      rel::Instance instance =
          testing_util::RandomInstance(schema, 3, 0.35, &rng);
      EXPECT_EQ(Satisfies(instance, schema, f),
                Satisfies(instance, schema, nnf))
          << text << " on " << instance.ToString(schema);
    }
  }
}

TEST(NormalizeTest, SimplifyFoldsConstants) {
  rel::Schema schema = TestSchema();
  auto simp = [&](const char* text) {
    return Simplify(ParseFormula(text, schema).value()).ToString(schema);
  };
  EXPECT_EQ(simp("S(x) & true"), "S(x)");
  EXPECT_EQ(simp("S(x) & false"), "false");
  EXPECT_EQ(simp("S(x) | true"), "true");
  EXPECT_EQ(simp("S(x) | S(x)"), "S(x)");
  EXPECT_EQ(simp("S(x) & !S(x)"), "false");
  EXPECT_EQ(simp("S(x) | !S(x)"), "true");
  EXPECT_EQ(simp("!(!(S(x)))"), "S(x)");
  EXPECT_EQ(simp("x = x"), "true");
  EXPECT_EQ(simp("1 = 2"), "false");
  EXPECT_EQ(simp("false -> S(x)"), "true");
  EXPECT_EQ(simp("true -> S(x)"), "S(x)");
  EXPECT_EQ(simp("S(x) <-> S(x)"), "true");
  // Vacuous quantifier over the infinite universe.
  EXPECT_EQ(simp("exists y. S(x)"), "S(x)");
  EXPECT_EQ(simp("forall y. S(x)"), "S(x)");
}

TEST(NormalizeTest, SimplifyFlattensAndDeduplicates) {
  rel::Schema schema = TestSchema();
  Formula f = ParseFormula("(S(1) & S(2)) & (S(2) & S(3))", schema).value();
  Formula s = Simplify(f);
  ASSERT_EQ(s.kind(), FormulaKind::kAnd);
  EXPECT_EQ(s.children().size(), 3u);
}

TEST(NormalizeTest, SimplifyPreservesSemantics) {
  rel::Schema schema = TestSchema();
  const char* cases[] = {
      "exists x. (S(x) & true) | (R(x, x) & !R(x, x))",
      "forall x. (S(x) -> false) | R(x, 1)",
      "(exists y. S(2)) & (1 = 1)",
  };
  Pcg32 rng(509);
  for (const char* text : cases) {
    Formula f = ParseSentence(text, schema).value();
    Formula s = Simplify(f);
    for (int trial = 0; trial < 12; ++trial) {
      rel::Instance instance =
          testing_util::RandomInstance(schema, 3, 0.35, &rng);
      EXPECT_EQ(Satisfies(instance, schema, f),
                Satisfies(instance, schema, s))
          << text;
    }
  }
}

TEST(NormalizeTest, PrenexShapeAndSemantics) {
  rel::Schema schema = TestSchema();
  const char* cases[] = {
      "(exists x. S(x)) & (forall y. S(y) -> exists z. R(y, z))",
      "!(exists x. S(x) & !(exists y. R(x, y)))",
      "(exists x. S(x)) | (exists x. R(x, x))",
      "forall x. S(x) <-> exists y. R(x, y)",
  };
  Pcg32 rng(541);
  for (const char* text : cases) {
    Formula f = ParseSentence(text, schema).value();
    Formula prenex = ToPrenex(f);
    EXPECT_TRUE(IsPrenex(prenex)) << text << " => "
                                  << prenex.ToString(schema);
    for (int trial = 0; trial < 10; ++trial) {
      rel::Instance instance =
          testing_util::RandomInstance(schema, 3, 0.35, &rng);
      EXPECT_EQ(Satisfies(instance, schema, f),
                Satisfies(instance, schema, prenex))
          << text << " on " << instance.ToString(schema);
    }
  }
}

TEST(NormalizeTest, PrenexRenamesApart) {
  rel::Schema schema = TestSchema();
  // Two sibling quantifiers over the same name must get distinct fresh
  // names in the prefix.
  Formula f = ParseSentence("(exists x. S(x)) & (exists x. R(x, x))",
                            schema)
                  .value();
  Formula prenex = ToPrenex(f);
  ASSERT_EQ(prenex.kind(), FormulaKind::kExists);
  ASSERT_EQ(prenex.children()[0].kind(), FormulaKind::kExists);
  EXPECT_NE(prenex.quantified_var(),
            prenex.children()[0].quantified_var());
}

TEST(NormalizeTest, GuardAblationAgreesWithGuardedEvaluation) {
  // The guard optimization is semantics-preserving: evaluating with
  // guards off yields identical verdicts (the ablation correctness
  // check backing EvalOptions::use_guards).
  rel::Schema schema = TestSchema();
  const char* cases[] = {
      "exists x. S(x) & exists y. R(x, y)",
      "forall x y. R(x, y) -> S(x) | x = y",
      "!(exists x. S(x) & !(exists y. R(x, y) & y != x))",
  };
  Pcg32 rng(521);
  EvalOptions no_guards;
  no_guards.use_guards = false;
  for (const char* text : cases) {
    Formula f = ParseSentence(text, schema).value();
    for (int trial = 0; trial < 10; ++trial) {
      rel::Instance instance =
          testing_util::RandomInstance(schema, 3, 0.3, &rng);
      auto guarded = Evaluate(instance, schema, f);
      auto unguarded = Evaluate(instance, schema, f, {}, no_guards);
      ASSERT_TRUE(guarded.ok());
      ASSERT_TRUE(unguarded.ok());
      EXPECT_EQ(guarded.value(), unguarded.value()) << text;
    }
  }
}

}  // namespace
}  // namespace logic
}  // namespace ipdb
