// Regression test for the compile-time observability switch: with
// IPDB_OBSERVABILITY_DISABLED defined (what -DIPDB_OBSERVABILITY=OFF
// does for the whole build), every IPDB_OBS_* macro must still compile
// in statement position and must record nothing. This file forces the
// define locally so the default build exercises the disabled expansion
// of obs.h alongside the enabled one; ci.sh additionally builds and
// tests the whole tree with the option off.

#define IPDB_OBSERVABILITY_DISABLED 1

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.h"

namespace ipdb {
namespace obs {
namespace {

int InstrumentedFunction(int x) {
  IPDB_OBS_SPAN("off.span", "test");
  IPDB_OBS_SCOPED_TIMER("off.timer_ns");
  IPDB_OBS_COUNT("off.counter", 1);
  IPDB_OBS_GAUGE_SET("off.gauge", 7);
  IPDB_OBS_GAUGE_ADD("off.gauge", 1);
  IPDB_OBS_OBSERVE("off.histogram", 123);
  [[maybe_unused]] const LabelId label = InternLabel("off.label");
  IPDB_OBS_COUNT_LABELED("off.family", "cell", label, 1);
  IPDB_OBS_OBSERVE_LABELED("off.hist_family", "cell", label, 99);
  if (x > 0) IPDB_OBS_COUNT("off.counter", x);  // unbraced-if position
  if (x > 0)
    IPDB_OBS_COUNT_LABELED("off.family", "cell", label, x);  // same, labeled
  return x * 2;
}

TEST(ObsOffTest, MacrosCompileOutAndRecordNothing) {
  SetTracingEnabled(true);
  TraceRecorder::Global().Drain();
  EXPECT_EQ(InstrumentedFunction(21), 42);
  SetTracingEnabled(false);

  // No span reached the recorder...
  EXPECT_TRUE(TraceRecorder::Global().Drain().empty());

  // ...and no metric reached the registry.
  MetricsSnapshot snapshot = GlobalMetrics().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("off.counter"), 0);
  EXPECT_EQ(snapshot.GaugeValue("off.gauge"), 0);
  EXPECT_EQ(snapshot.FindHistogram("off.timer_ns"), nullptr);
  EXPECT_EQ(snapshot.FindHistogram("off.histogram"), nullptr);
  for (const auto& [name, value] : snapshot.counters) {
    EXPECT_NE(name.rfind("off.", 0), 0u) << name;
  }
  // The labeled-family macros compiled to no-ops too: no family was
  // ever registered, structurally or under a decorated name.
  for (const auto& cell : snapshot.counter_families) {
    EXPECT_NE(cell.name.rfind("off.", 0), 0u) << cell.name;
  }
  for (const auto& cell : snapshot.histogram_families) {
    EXPECT_NE(cell.name.rfind("off.", 0), 0u) << cell.name;
  }
}

// The library APIs stay available when only the macros are disabled:
// a binary compiled with the define can still read metrics written by
// code compiled without it.
TEST(ObsOffTest, RegistryAndRecorderApisStillWork) {
  MetricsRegistry registry;
  registry.GetCounter("explicit.counter").Increment(3);
  EXPECT_EQ(registry.Snapshot().CounterValue("explicit.counter"), 3);

  std::vector<TraceEvent> no_events;
  std::string json = ChromeTraceJson(no_events);
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace ipdb
