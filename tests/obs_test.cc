// Tests for the observability layer: metrics-registry concurrency
// (exact totals under contention), histogram bucketing, span nesting,
// and the Chrome-trace exporter (validated with a small JSON parser so
// the emitted file is known to be syntactically sound, not just
// string-matched).

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.h"

namespace ipdb {
namespace obs {
namespace {

// ---------------------------------------------------------------------
// A minimal JSON reader, just enough to validate exporter output.
// Values are doubles, strings, bools, null, arrays and objects.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char escaped = text_[pos_++];
        switch (escaped) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u':
            if (pos_ + 4 > text_.size()) return false;
            pos_ += 4;  // tests never inspect non-ASCII content
            out->push_back('?');
            break;
          default: out->push_back(escaped); break;
        }
      } else {
        out->push_back(c);
      }
    }
    return Consume('"');
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      SkipSpace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Busy-waits long enough for the monotonic clock to visibly advance, so
// span durations are strictly positive and containment is checkable.
void SpinFor(int64_t ns) {
  int64_t start = MonotonicNowNs();
  while (MonotonicNowNs() - start < ns) {
  }
}

// ---------------------------------------------------------------------
// Metrics registry.

TEST(MetricsTest, CounterConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kIncrements);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("test.concurrent"),
            int64_t{kThreads} * kIncrements);
}

TEST(MetricsTest, CounterDeltasAndReset) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.delta");
  counter.Increment(5);
  counter.Increment(37);
  EXPECT_EQ(counter.Value(), 42);
  registry.Reset();
  EXPECT_EQ(counter.Value(), 0);  // the handle survives a reset
  counter.Increment();
  EXPECT_EQ(counter.Value(), 1);
}

TEST(MetricsTest, GetReturnsSameMetricForSameName) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("same");
  Counter& b = registry.GetCounter("same");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(b.Value(), 3);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("test.gauge");
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  EXPECT_EQ(registry.Snapshot().GaugeValue("test.gauge"), 7);
}

TEST(MetricsTest, HistogramConcurrentObservationsExact) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("test.histogram");
  constexpr int kThreads = 8;
  constexpr int kObservations = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kObservations; ++i) {
        histogram.Observe(t + 1);  // values 1..8
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  HistogramStats stats = histogram.Read();
  EXPECT_EQ(stats.count, int64_t{kThreads} * kObservations);
  // sum = 20000 * (1 + 2 + ... + 8)
  EXPECT_EQ(stats.sum, int64_t{kObservations} * 36);
  EXPECT_EQ(stats.min, 1);
  EXPECT_EQ(stats.max, 8);
  int64_t bucket_total = 0;
  for (const auto& [lower, count] : stats.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, stats.count);
}

TEST(MetricsTest, HistogramBucketIndexIsBitWidth) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024);
}

TEST(MetricsTest, EmptyHistogramReadsAsZeros) {
  MetricsRegistry registry;
  HistogramStats stats = registry.GetHistogram("never.observed").Read();
  EXPECT_EQ(stats.count, 0);
  EXPECT_EQ(stats.sum, 0);
  EXPECT_EQ(stats.min, 0);
  EXPECT_EQ(stats.max, 0);
  EXPECT_TRUE(stats.buckets.empty());
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zebra");
  registry.GetCounter("alpha");
  registry.GetCounter("middle");
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      snapshot.counters.begin(), snapshot.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(MetricsTest, SnapshotJsonParses) {
  MetricsRegistry registry;
  registry.GetCounter("c.one").Increment(7);
  registry.GetGauge("g.one").Set(-2);
  registry.GetHistogram("h.one").Observe(100);
  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.Snapshot().ToJson()).Parse(&root));
  const JsonValue* schema = root.Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "ipdb-metrics-v1");
  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c = counters->Find("c.one");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->number, 7.0);
  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("g.one")->number, -2.0);
  const JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* h = histograms->Find("h.one");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Find("count")->number, 1.0);
  EXPECT_EQ(h->Find("sum")->number, 100.0);
}

// ---------------------------------------------------------------------
// Macros against the global registry. Only meaningful when the macros
// are compiled in: ci.sh also builds this test with
// -DIPDB_OBSERVABILITY=OFF, where they expand to nothing (the
// compiled-out behaviour itself is pinned down by obs_off_test).
#if !defined(IPDB_OBSERVABILITY_DISABLED)

TEST(MacrosTest, CountMacroRecordsWhenEnabled) {
  SetMetricsEnabled(true);
  int64_t before =
      GlobalMetrics().Snapshot().CounterValue("obs_test.macro_counter");
  IPDB_OBS_COUNT("obs_test.macro_counter", 2);
  IPDB_OBS_COUNT("obs_test.macro_counter", 3);
  EXPECT_EQ(
      GlobalMetrics().Snapshot().CounterValue("obs_test.macro_counter"),
      before + 5);
}

TEST(MacrosTest, CountMacroSkipsWhenDisabled) {
  SetMetricsEnabled(true);
  IPDB_OBS_COUNT("obs_test.toggled", 1);  // ensure the metric exists
  int64_t before = GlobalMetrics().Snapshot().CounterValue("obs_test.toggled");
  SetMetricsEnabled(false);
  IPDB_OBS_COUNT("obs_test.toggled", 100);
  SetMetricsEnabled(true);
  EXPECT_EQ(GlobalMetrics().Snapshot().CounterValue("obs_test.toggled"),
            before);
}

TEST(MacrosTest, ScopedTimerObservesOnce) {
  SetMetricsEnabled(true);
  const HistogramStats* found =
      GlobalMetrics().Snapshot().FindHistogram("obs_test.timer_ns");
  int64_t before = found == nullptr ? 0 : found->count;
  {
    IPDB_OBS_SCOPED_TIMER("obs_test.timer_ns");
    SpinFor(1000);
  }
  MetricsSnapshot snapshot = GlobalMetrics().Snapshot();
  const HistogramStats* stats = snapshot.FindHistogram("obs_test.timer_ns");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, before + 1);
  EXPECT_GT(stats->sum, 0);
}

#endif  // !IPDB_OBSERVABILITY_DISABLED

// ---------------------------------------------------------------------
// Tracing. These tests share the global recorder, so each drains first.

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder& recorder = TraceRecorder::Global();
  SetTracingEnabled(false);
  recorder.Drain();
  {
    Span span("trace_test.invisible", "test");
    SpinFor(1000);
  }
  EXPECT_TRUE(recorder.Drain().empty());
}

TEST(TraceTest, NestedSpansRecordDepthAndContainment) {
  TraceRecorder& recorder = TraceRecorder::Global();
  SetTracingEnabled(false);
  recorder.Drain();
  SetTracingEnabled(true);
  {
    Span outer("trace_test.outer", "test");
    SpinFor(20000);
    {
      Span middle("trace_test.middle", "test");
      SpinFor(20000);
      {
        Span inner("trace_test.inner", "test");
        SpinFor(20000);
      }
    }
    {
      Span sibling("trace_test.sibling", "test");
      SpinFor(20000);
    }
  }
  SetTracingEnabled(false);
  std::vector<TraceEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 4u);

  auto find = [&](const std::string& name) -> const TraceEvent& {
    for (const TraceEvent& event : events) {
      if (name == event.name) return event;
    }
    ADD_FAILURE() << "missing span " << name;
    static TraceEvent none;
    return none;
  };
  const TraceEvent& outer = find("trace_test.outer");
  const TraceEvent& middle = find("trace_test.middle");
  const TraceEvent& inner = find("trace_test.inner");
  const TraceEvent& sibling = find("trace_test.sibling");

  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(middle.depth, 1);
  EXPECT_EQ(inner.depth, 2);
  EXPECT_EQ(sibling.depth, 1);
  for (const TraceEvent& event : events) {
    EXPECT_GT(event.duration_ns, 0) << event.name;
    EXPECT_EQ(event.tid, outer.tid);  // all on this thread
  }

  auto contains = [](const TraceEvent& parent, const TraceEvent& child) {
    return parent.start_ns <= child.start_ns &&
           child.start_ns + child.duration_ns <=
               parent.start_ns + parent.duration_ns;
  };
  EXPECT_TRUE(contains(outer, middle));
  EXPECT_TRUE(contains(middle, inner));
  EXPECT_TRUE(contains(outer, sibling));
  // Siblings are disjoint in time.
  EXPECT_TRUE(middle.start_ns + middle.duration_ns <= sibling.start_ns ||
              sibling.start_ns + sibling.duration_ns <= middle.start_ns);

  // Drain sorted parents before children (tid, start, -duration).
  EXPECT_EQ(std::string(events[0].name), "trace_test.outer");
}

TEST(TraceTest, SpanOpenStateIsCapturedAtConstruction) {
  TraceRecorder& recorder = TraceRecorder::Global();
  SetTracingEnabled(false);
  recorder.Drain();
  SetTracingEnabled(true);
  std::unique_ptr<Span> span =
      std::make_unique<Span>("trace_test.captured", "test");
  SetTracingEnabled(false);
  span.reset();  // still records: it opened while tracing was on
  std::vector<TraceEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), "trace_test.captured");
}

TEST(TraceTest, ChromeTraceJsonParsesAndIsWellNested) {
  TraceRecorder& recorder = TraceRecorder::Global();
  SetTracingEnabled(false);
  recorder.Drain();
  SetTracingEnabled(true);
  std::thread other([] {
    Span span("trace_test.other_thread", "test");
    SpinFor(20000);
  });
  {
    Span a("trace_test.a", "test");
    SpinFor(20000);
    {
      Span b("trace_test.b", "test");
      SpinFor(20000);
    }
  }
  other.join();
  SetTracingEnabled(false);
  std::vector<TraceEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 3u);

  MetricsRegistry registry;
  registry.GetCounter("trace_test.counter").Increment(9);
  MetricsSnapshot snapshot = registry.Snapshot();
  std::string json = ChromeTraceJson(events, &snapshot, 0);

  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue* trace_events = root.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(trace_events->array.size(), 3u);

  // Every event is a complete ("X") event with the expected fields, and
  // events on one thread are well-nested: for any two, either disjoint
  // in time or one contains the other and depth increases inward.
  std::map<std::string, const JsonValue*> by_name;
  for (const JsonValue& event : trace_events->array) {
    ASSERT_EQ(event.kind, JsonValue::Kind::kObject);
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string, "X");
    ASSERT_NE(event.Find("name"), nullptr);
    ASSERT_NE(event.Find("cat"), nullptr);
    ASSERT_NE(event.Find("ts"), nullptr);
    ASSERT_NE(event.Find("dur"), nullptr);
    ASSERT_NE(event.Find("tid"), nullptr);
    EXPECT_GE(event.Find("ts")->number, 0.0);  // normalized to earliest
    EXPECT_GT(event.Find("dur")->number, 0.0);
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->Find("depth"), nullptr);
    by_name[event.Find("name")->string] = &event;
  }
  ASSERT_EQ(by_name.size(), 3u);
  for (const auto& [name_a, ea] : by_name) {
    for (const auto& [name_b, eb] : by_name) {
      if (name_a == name_b) continue;
      if (ea->Find("tid")->number != eb->Find("tid")->number) continue;
      double a0 = ea->Find("ts")->number;
      double a1 = a0 + ea->Find("dur")->number;
      double b0 = eb->Find("ts")->number;
      double b1 = b0 + eb->Find("dur")->number;
      bool disjoint = a1 <= b0 || b1 <= a0;
      bool a_in_b = b0 <= a0 && a1 <= b1;
      bool b_in_a = a0 <= b0 && b1 <= a1;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << name_a << " vs " << name_b;
      if (a_in_b && !b_in_a) {
        EXPECT_GT(ea->Find("args")->Find("depth")->number,
                  eb->Find("args")->Find("depth")->number);
      }
    }
  }

  // The metrics snapshot rides along under otherData.
  const JsonValue* other_data = root.Find("otherData");
  ASSERT_NE(other_data, nullptr);
  const JsonValue* metrics = other_data->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("trace_test.counter")->number, 9.0);
  EXPECT_EQ(other_data->Find("droppedEvents")->number, 0.0);
}

TEST(TraceTest, EmptyTraceStillParses) {
  JsonValue root;
  ASSERT_TRUE(JsonParser(ChromeTraceJson({})).Parse(&root));
  const JsonValue* trace_events = root.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  EXPECT_TRUE(trace_events->array.empty());
}

}  // namespace
}  // namespace obs
}  // namespace ipdb
