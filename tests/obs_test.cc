// Tests for the observability layer: metrics-registry concurrency
// (exact totals under contention), labeled counter/histogram families,
// histogram bucketing, span nesting, request trace-context propagation
// (including through the thread pool), the bounded TraceStore, the
// per-tenant time-series / SLO burn-rate engine, and the Chrome-trace /
// Prometheus exporters (validated with the shared test JSON parser so
// emitted files are known to be syntactically sound, not just
// string-matched).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_reader.h"
#include "obs/obs.h"
#include "obs/timeseries.h"
#include "util/parallel.h"

namespace ipdb {
namespace obs {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

// Busy-waits long enough for the monotonic clock to visibly advance, so
// span durations are strictly positive and containment is checkable.
void SpinFor(int64_t ns) {
  int64_t start = MonotonicNowNs();
  while (MonotonicNowNs() - start < ns) {
  }
}

// ---------------------------------------------------------------------
// Metrics registry.

TEST(MetricsTest, CounterConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kIncrements);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("test.concurrent"),
            int64_t{kThreads} * kIncrements);
}

TEST(MetricsTest, CounterDeltasAndReset) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.delta");
  counter.Increment(5);
  counter.Increment(37);
  EXPECT_EQ(counter.Value(), 42);
  registry.Reset();
  EXPECT_EQ(counter.Value(), 0);  // the handle survives a reset
  counter.Increment();
  EXPECT_EQ(counter.Value(), 1);
}

TEST(MetricsTest, GetReturnsSameMetricForSameName) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("same");
  Counter& b = registry.GetCounter("same");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(b.Value(), 3);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("test.gauge");
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  EXPECT_EQ(registry.Snapshot().GaugeValue("test.gauge"), 7);
}

TEST(MetricsTest, HistogramConcurrentObservationsExact) {
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("test.histogram");
  constexpr int kThreads = 8;
  constexpr int kObservations = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kObservations; ++i) {
        histogram.Observe(t + 1);  // values 1..8
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  HistogramStats stats = histogram.Read();
  EXPECT_EQ(stats.count, int64_t{kThreads} * kObservations);
  // sum = 20000 * (1 + 2 + ... + 8)
  EXPECT_EQ(stats.sum, int64_t{kObservations} * 36);
  EXPECT_EQ(stats.min, 1);
  EXPECT_EQ(stats.max, 8);
  int64_t bucket_total = 0;
  for (const auto& [lower, count] : stats.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, stats.count);
}

TEST(MetricsTest, HistogramBucketIndexIsBitWidth) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketLowerBound(0), 0);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024);
}

TEST(MetricsTest, EmptyHistogramReadsAsZeros) {
  MetricsRegistry registry;
  HistogramStats stats = registry.GetHistogram("never.observed").Read();
  EXPECT_EQ(stats.count, 0);
  EXPECT_EQ(stats.sum, 0);
  EXPECT_EQ(stats.min, 0);
  EXPECT_EQ(stats.max, 0);
  EXPECT_TRUE(stats.buckets.empty());
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zebra");
  registry.GetCounter("alpha");
  registry.GetCounter("middle");
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      snapshot.counters.begin(), snapshot.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(MetricsTest, SnapshotJsonParses) {
  MetricsRegistry registry;
  registry.GetCounter("c.one").Increment(7);
  registry.GetGauge("g.one").Set(-2);
  registry.GetHistogram("h.one").Observe(100);
  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.Snapshot().ToJson()).Parse(&root));
  const JsonValue* schema = root.Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "ipdb-metrics-v1");
  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c = counters->Find("c.one");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->number, 7.0);
  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("g.one")->number, -2.0);
  const JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* h = histograms->Find("h.one");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Find("count")->number, 1.0);
  EXPECT_EQ(h->Find("sum")->number, 100.0);
}

// ---------------------------------------------------------------------
// Macros against the global registry. Only meaningful when the macros
// are compiled in: ci.sh also builds this test with
// -DIPDB_OBSERVABILITY=OFF, where they expand to nothing (the
// compiled-out behaviour itself is pinned down by obs_off_test).
#if !defined(IPDB_OBSERVABILITY_DISABLED)

TEST(MacrosTest, CountMacroRecordsWhenEnabled) {
  SetMetricsEnabled(true);
  int64_t before =
      GlobalMetrics().Snapshot().CounterValue("obs_test.macro_counter");
  IPDB_OBS_COUNT("obs_test.macro_counter", 2);
  IPDB_OBS_COUNT("obs_test.macro_counter", 3);
  EXPECT_EQ(
      GlobalMetrics().Snapshot().CounterValue("obs_test.macro_counter"),
      before + 5);
}

TEST(MacrosTest, CountMacroSkipsWhenDisabled) {
  SetMetricsEnabled(true);
  IPDB_OBS_COUNT("obs_test.toggled", 1);  // ensure the metric exists
  int64_t before = GlobalMetrics().Snapshot().CounterValue("obs_test.toggled");
  SetMetricsEnabled(false);
  IPDB_OBS_COUNT("obs_test.toggled", 100);
  SetMetricsEnabled(true);
  EXPECT_EQ(GlobalMetrics().Snapshot().CounterValue("obs_test.toggled"),
            before);
}

TEST(MacrosTest, ScopedTimerObservesOnce) {
  SetMetricsEnabled(true);
  const MetricsSnapshot initial = GlobalMetrics().Snapshot();
  const HistogramStats* found = initial.FindHistogram("obs_test.timer_ns");
  int64_t before = found == nullptr ? 0 : found->count;
  {
    IPDB_OBS_SCOPED_TIMER("obs_test.timer_ns");
    SpinFor(1000);
  }
  MetricsSnapshot snapshot = GlobalMetrics().Snapshot();
  const HistogramStats* stats = snapshot.FindHistogram("obs_test.timer_ns");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->count, before + 1);
  EXPECT_GT(stats->sum, 0);
}

#endif  // !IPDB_OBSERVABILITY_DISABLED

// ---------------------------------------------------------------------
// Tracing. These tests share the global recorder, so each drains first.

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder& recorder = TraceRecorder::Global();
  SetTracingEnabled(false);
  recorder.Drain();
  {
    Span span("trace_test.invisible", "test");
    SpinFor(1000);
  }
  EXPECT_TRUE(recorder.Drain().empty());
}

TEST(TraceTest, NestedSpansRecordDepthAndContainment) {
  TraceRecorder& recorder = TraceRecorder::Global();
  SetTracingEnabled(false);
  recorder.Drain();
  SetTracingEnabled(true);
  {
    Span outer("trace_test.outer", "test");
    SpinFor(20000);
    {
      Span middle("trace_test.middle", "test");
      SpinFor(20000);
      {
        Span inner("trace_test.inner", "test");
        SpinFor(20000);
      }
    }
    {
      Span sibling("trace_test.sibling", "test");
      SpinFor(20000);
    }
  }
  SetTracingEnabled(false);
  std::vector<TraceEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 4u);

  auto find = [&](const std::string& name) -> const TraceEvent& {
    for (const TraceEvent& event : events) {
      if (name == event.name) return event;
    }
    ADD_FAILURE() << "missing span " << name;
    static TraceEvent none;
    return none;
  };
  const TraceEvent& outer = find("trace_test.outer");
  const TraceEvent& middle = find("trace_test.middle");
  const TraceEvent& inner = find("trace_test.inner");
  const TraceEvent& sibling = find("trace_test.sibling");

  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(middle.depth, 1);
  EXPECT_EQ(inner.depth, 2);
  EXPECT_EQ(sibling.depth, 1);
  for (const TraceEvent& event : events) {
    EXPECT_GT(event.duration_ns, 0) << event.name;
    EXPECT_EQ(event.tid, outer.tid);  // all on this thread
  }

  auto contains = [](const TraceEvent& parent, const TraceEvent& child) {
    return parent.start_ns <= child.start_ns &&
           child.start_ns + child.duration_ns <=
               parent.start_ns + parent.duration_ns;
  };
  EXPECT_TRUE(contains(outer, middle));
  EXPECT_TRUE(contains(middle, inner));
  EXPECT_TRUE(contains(outer, sibling));
  // Siblings are disjoint in time.
  EXPECT_TRUE(middle.start_ns + middle.duration_ns <= sibling.start_ns ||
              sibling.start_ns + sibling.duration_ns <= middle.start_ns);

  // Drain sorted parents before children (tid, start, -duration).
  EXPECT_EQ(std::string(events[0].name), "trace_test.outer");
}

TEST(TraceTest, SpanOpenStateIsCapturedAtConstruction) {
  TraceRecorder& recorder = TraceRecorder::Global();
  SetTracingEnabled(false);
  recorder.Drain();
  SetTracingEnabled(true);
  std::unique_ptr<Span> span =
      std::make_unique<Span>("trace_test.captured", "test");
  SetTracingEnabled(false);
  span.reset();  // still records: it opened while tracing was on
  std::vector<TraceEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), "trace_test.captured");
}

TEST(TraceTest, ChromeTraceJsonParsesAndIsWellNested) {
  TraceRecorder& recorder = TraceRecorder::Global();
  SetTracingEnabled(false);
  recorder.Drain();
  SetTracingEnabled(true);
  std::thread other([] {
    Span span("trace_test.other_thread", "test");
    SpinFor(20000);
  });
  {
    Span a("trace_test.a", "test");
    SpinFor(20000);
    {
      Span b("trace_test.b", "test");
      SpinFor(20000);
    }
  }
  other.join();
  SetTracingEnabled(false);
  std::vector<TraceEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 3u);

  MetricsRegistry registry;
  registry.GetCounter("trace_test.counter").Increment(9);
  MetricsSnapshot snapshot = registry.Snapshot();
  std::string json = ChromeTraceJson(events, &snapshot, 0);

  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue* trace_events = root.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(trace_events->array.size(), 3u);

  // Every event is a complete ("X") event with the expected fields, and
  // events on one thread are well-nested: for any two, either disjoint
  // in time or one contains the other and depth increases inward.
  std::map<std::string, const JsonValue*> by_name;
  for (const JsonValue& event : trace_events->array) {
    ASSERT_EQ(event.kind, JsonValue::Kind::kObject);
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string, "X");
    ASSERT_NE(event.Find("name"), nullptr);
    ASSERT_NE(event.Find("cat"), nullptr);
    ASSERT_NE(event.Find("ts"), nullptr);
    ASSERT_NE(event.Find("dur"), nullptr);
    ASSERT_NE(event.Find("tid"), nullptr);
    EXPECT_GE(event.Find("ts")->number, 0.0);  // normalized to earliest
    EXPECT_GT(event.Find("dur")->number, 0.0);
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->Find("depth"), nullptr);
    by_name[event.Find("name")->string] = &event;
  }
  ASSERT_EQ(by_name.size(), 3u);
  for (const auto& [name_a, ea] : by_name) {
    for (const auto& [name_b, eb] : by_name) {
      if (name_a == name_b) continue;
      if (ea->Find("tid")->number != eb->Find("tid")->number) continue;
      double a0 = ea->Find("ts")->number;
      double a1 = a0 + ea->Find("dur")->number;
      double b0 = eb->Find("ts")->number;
      double b1 = b0 + eb->Find("dur")->number;
      bool disjoint = a1 <= b0 || b1 <= a0;
      bool a_in_b = b0 <= a0 && a1 <= b1;
      bool b_in_a = a0 <= b0 && b1 <= a1;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << name_a << " vs " << name_b;
      if (a_in_b && !b_in_a) {
        EXPECT_GT(ea->Find("args")->Find("depth")->number,
                  eb->Find("args")->Find("depth")->number);
      }
    }
  }

  // The metrics snapshot rides along under otherData.
  const JsonValue* other_data = root.Find("otherData");
  ASSERT_NE(other_data, nullptr);
  const JsonValue* metrics = other_data->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* counters = metrics->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("trace_test.counter")->number, 9.0);
  EXPECT_EQ(other_data->Find("droppedEvents")->number, 0.0);
}

TEST(TraceTest, EmptyTraceStillParses) {
  JsonValue root;
  ASSERT_TRUE(JsonParser(ChromeTraceJson({})).Parse(&root));
  const JsonValue* trace_events = root.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  EXPECT_TRUE(trace_events->array.empty());
}

TEST(TraceTest, RecorderDropsPastCapCountsAndFlagsTruncation) {
  TraceRecorder& recorder = TraceRecorder::Global();
  SetTracingEnabled(false);
  recorder.Drain();
  SetTracingEnabled(true);
  const int64_t extra = 10;
  const int64_t total =
      static_cast<int64_t>(TraceRecorder::kMaxEventsPerThread) + extra;
  for (int64_t i = 0; i < total; ++i) {
    Span span("trace_test.flood", "test");
  }
  SetTracingEnabled(false);
  const int64_t dropped = recorder.dropped_events();
  EXPECT_EQ(dropped, extra);
  std::vector<TraceEvent> events = recorder.Drain();
  EXPECT_EQ(events.size(), TraceRecorder::kMaxEventsPerThread);
  // Drain resets the tally.
  EXPECT_EQ(recorder.dropped_events(), 0);

  // The export carries both the count and the boolean truncation flag.
  JsonValue root;
  ASSERT_TRUE(
      JsonParser(ChromeTraceJson({}, nullptr, dropped)).Parse(&root));
  const JsonValue* other_data = root.Find("otherData");
  ASSERT_NE(other_data, nullptr);
  EXPECT_EQ(other_data->Find("droppedEvents")->number,
            static_cast<double>(extra));
  const JsonValue* truncated = other_data->Find("truncated");
  ASSERT_NE(truncated, nullptr);
  EXPECT_TRUE(truncated->boolean);
  JsonValue clean;
  ASSERT_TRUE(JsonParser(ChromeTraceJson({}, nullptr, 0)).Parse(&clean));
  EXPECT_FALSE(clean.Find("otherData")->Find("truncated")->boolean);
}

#if !defined(IPDB_OBSERVABILITY_DISABLED)
TEST(TraceTest, DroppedEventsFeedTheRegistryCounter) {
  TraceRecorder& recorder = TraceRecorder::Global();
  SetTracingEnabled(false);
  recorder.Drain();
  SetMetricsEnabled(true);
  const int64_t before =
      GlobalMetrics().Snapshot().CounterValue("obs.trace.dropped_events");
  SetTracingEnabled(true);
  const int64_t total =
      static_cast<int64_t>(TraceRecorder::kMaxEventsPerThread) + 5;
  for (int64_t i = 0; i < total; ++i) {
    Span span("trace_test.flood2", "test");
  }
  SetTracingEnabled(false);
  recorder.Drain();
  EXPECT_EQ(
      GlobalMetrics().Snapshot().CounterValue("obs.trace.dropped_events"),
      before + 5);
}
#endif  // !IPDB_OBSERVABILITY_DISABLED

// ---------------------------------------------------------------------
// Labeled metric families.

TEST(LabelTest, InternIsIdempotentAndRoundTrips) {
  const LabelId a = InternLabel("label_test.alpha");
  const LabelId b = InternLabel("label_test.beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(InternLabel("label_test.alpha"), a);
  EXPECT_EQ(LabelValue(a), "label_test.alpha");
  EXPECT_EQ(LabelValue(b), "label_test.beta");
}

TEST(FamilyTest, CounterFamilyCellsAreIndependent) {
  MetricsRegistry registry;
  CounterFamily& family = registry.GetCounterFamily("fam.requests", "tenant");
  const LabelId a = InternLabel("fam_test.a");
  const LabelId b = InternLabel("fam_test.b");
  family.At(a).Increment(3);
  family.At(b).Increment(7);
  family.At(a).Increment(2);
  EXPECT_EQ(family.At(a).Value(), 5);
  EXPECT_EQ(family.At(b).Value(), 7);
  EXPECT_EQ(&registry.GetCounterFamily("fam.requests", "tenant"), &family);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counter_families.size(), 2u);
  // The structured view is sorted by (name, label value).
  EXPECT_EQ(snapshot.counter_families[0].label_value, "fam_test.a");
  EXPECT_EQ(snapshot.counter_families[0].value, 5);
  EXPECT_EQ(snapshot.counter_families[1].label_value, "fam_test.b");
  EXPECT_EQ(snapshot.counter_families[1].value, 7);
  // Cells also surface under decorated names in the flat counter list.
  EXPECT_EQ(snapshot.CounterValue("fam.requests{tenant=\"fam_test.a\"}"), 5);
  EXPECT_EQ(snapshot.CounterValue("fam.requests{tenant=\"fam_test.b\"}"), 7);
}

TEST(FamilyTest, ConcurrentIncrementsAndGrowsSumExactly) {
  MetricsRegistry registry;
  CounterFamily& family = registry.GetCounterFamily("fam.grow", "cell");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  // Pre-intern half the labels; the rest are interned mid-flight so the
  // copy-on-write Grow path runs concurrently with hot increments.
  std::vector<LabelId> ids(kThreads);
  for (int t = 0; t < kThreads; t += 2) {
    ids[t] = InternLabel("fam_grow." + std::to_string(t));
  }
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&family, &ids, t] {
      if (t % 2 == 1) {
        ids[t] = InternLabel("fam_grow." + std::to_string(t));
      }
      for (int i = 0; i < kIncrements; ++i) family.At(ids[t]).Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(family.At(ids[t]).Value(), kIncrements) << t;
  }
  int64_t total = 0;
  for (const auto& [id, value] : family.Read()) total += value;
  EXPECT_EQ(total, int64_t{kThreads} * kIncrements);
}

TEST(FamilyTest, HistogramFamilyMergedTotalsMatchUnlabeledAggregate) {
  MetricsRegistry registry;
  Histogram& plain = registry.GetHistogram("fam.latency");
  HistogramFamily& family = registry.GetHistogramFamily("fam.latency", "who");
  const LabelId x = InternLabel("fam_hist.x");
  const LabelId y = InternLabel("fam_hist.y");
  for (int i = 1; i <= 100; ++i) {
    const LabelId cell = i % 3 == 0 ? y : x;
    family.At(cell).Observe(i);
    plain.Observe(i);  // the engine records both sinks for every serve
  }
  HistogramStats aggregate = plain.Read();
  int64_t labeled_count = 0;
  int64_t labeled_sum = 0;
  for (const auto& [id, stats] : family.Read()) {
    labeled_count += stats.count;
    labeled_sum += stats.sum;
  }
  // Zero drift: the per-label cells partition the unlabeled stream.
  EXPECT_EQ(labeled_count, aggregate.count);
  EXPECT_EQ(labeled_sum, aggregate.sum);
}

TEST(FamilyTest, SnapshotIsSortedAndStableAcrossCalls) {
  MetricsRegistry registry;
  registry.GetCounter("zed");
  registry.GetCounter("abc");
  CounterFamily& family = registry.GetCounterFamily("mid", "k");
  family.At(InternLabel("v2")).Increment(1);
  family.At(InternLabel("v1")).Increment(2);
  registry.GetHistogramFamily("hist", "k").At(InternLabel("v1")).Observe(4);

  MetricsSnapshot first = registry.Snapshot();
  MetricsSnapshot second = registry.Snapshot();
  auto names_of = [](const MetricsSnapshot& snapshot) {
    std::vector<std::string> names;
    for (const auto& [name, value] : snapshot.counters) names.push_back(name);
    return names;
  };
  std::vector<std::string> names = names_of(first);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  // Identical ordering on every call (the registry maps are unordered;
  // the snapshot is the deterministic view).
  EXPECT_EQ(names, names_of(second));
  EXPECT_EQ(first.ToJson(), second.ToJson());
  ASSERT_EQ(first.counter_families.size(), 2u);
  EXPECT_EQ(first.counter_families[0].label_value, "v1");
  EXPECT_EQ(first.counter_families[1].label_value, "v2");
}

TEST(FamilyTest, ToPrometheusExportsAllKinds) {
  MetricsRegistry registry;
  registry.GetCounter("prom.count").Increment(7);
  registry.GetGauge("prom.gauge").Set(-2);
  registry.GetHistogram("prom.lat").Observe(5);
  registry.GetCounterFamily("prom.fam", "tenant")
      .At(InternLabel("acme"))
      .Increment(3);
  std::string text = registry.Snapshot().ToPrometheus();
  // Names are sanitized: '.' -> '_'.
  EXPECT_NE(text.find("# TYPE prom_count counter"), std::string::npos) << text;
  EXPECT_NE(text.find("prom_count 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("prom_gauge -2"), std::string::npos);
  EXPECT_NE(text.find("prom_fam{tenant=\"acme\"} 3"), std::string::npos);
  // Observe(5) lands in the [4,7] bucket; le is the inclusive upper
  // bound, and the cumulative series ends at +Inf with the total count.
  EXPECT_NE(text.find("prom_lat_bucket{le=\"7\"} 1"), std::string::npos);
  EXPECT_NE(text.find("prom_lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("prom_lat_sum 5"), std::string::npos);
  EXPECT_NE(text.find("prom_lat_count 1"), std::string::npos);
}

// ---------------------------------------------------------------------
// Request trace context: propagation across threads and the TraceStore.

TEST(ContextTest, ScopedContextInstallsAndRestores) {
  EXPECT_FALSE(CurrentTraceContext().active());
  TraceContext ctx;
  ctx.trace_id = NewTraceId();
  ctx.span_id = NewSpanId();
  ctx.sampled = true;
  {
    ScopedTraceContext scope(ctx);
    EXPECT_TRUE(CurrentTraceContext().active());
    EXPECT_EQ(CurrentTraceContext().trace_id, ctx.trace_id);
    EXPECT_EQ(CurrentTraceContext().span_id, ctx.span_id);
    EXPECT_TRUE(CurrentTraceContext().sampled);
  }
  EXPECT_FALSE(CurrentTraceContext().active());
}

TEST(ContextTest, SpansChainParentIdsUnderAContext) {
  TraceRecorder& recorder = TraceRecorder::Global();
  SetTracingEnabled(false);
  recorder.Drain();
  SetTracingEnabled(true);
  TraceContext ctx;
  ctx.trace_id = NewTraceId();
  ctx.span_id = NewSpanId();  // the synthetic request root
  {
    ScopedTraceContext scope(ctx);
    Span outer("ctx_test.outer", "test");
    SpinFor(1000);
    {
      Span inner("ctx_test.inner", "test");
      SpinFor(1000);
    }
    // After inner closed, new spans parent under outer again.
    Span sibling("ctx_test.sibling", "test");
    SpinFor(1000);
  }
  SetTracingEnabled(false);
  std::vector<TraceEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 3u);
  auto find = [&](const std::string& name) -> const TraceEvent& {
    for (const TraceEvent& event : events) {
      if (name == event.name) return event;
    }
    ADD_FAILURE() << "missing span " << name;
    static TraceEvent none;
    return none;
  };
  const TraceEvent& outer = find("ctx_test.outer");
  const TraceEvent& inner = find("ctx_test.inner");
  const TraceEvent& sibling = find("ctx_test.sibling");
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.trace_id, ctx.trace_id) << event.name;
    EXPECT_NE(event.span_id, 0u) << event.name;
  }
  EXPECT_EQ(outer.parent_span_id, ctx.span_id);
  EXPECT_EQ(inner.parent_span_id, outer.span_id);
  EXPECT_EQ(sibling.parent_span_id, outer.span_id);
}

TEST(ContextTest, ThreadPoolPostCarriesContextToTheWorker) {
  TraceRecorder& recorder = TraceRecorder::Global();
  SetTracingEnabled(false);
  recorder.Drain();
  SetTracingEnabled(true);
  ThreadPool pool(2);  // one worker: Post never runs inline
  TraceContext ctx;
  ctx.trace_id = NewTraceId();
  ctx.span_id = NewSpanId();
  std::atomic<uint64_t> seen_trace{0};
  {
    ScopedTraceContext scope(ctx);
    pool.Post([&seen_trace] {
      seen_trace.store(CurrentTraceContext().trace_id);
      Span span("ctx_test.worker", "test");
      SpinFor(1000);
    });
  }
  pool.DrainTasks();
  SetTracingEnabled(false);
  EXPECT_EQ(seen_trace.load(), ctx.trace_id);
  std::vector<TraceEvent> events = recorder.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, ctx.trace_id);
  EXPECT_EQ(events[0].parent_span_id, ctx.span_id);
}

TEST(ContextTest, ParallelForInstallsContextOnEveryShard) {
  ThreadPool pool(4);
  TraceContext ctx;
  ctx.trace_id = NewTraceId();
  ctx.span_id = NewSpanId();
  constexpr int64_t kShards = 64;
  std::vector<uint64_t> seen(kShards, 0);
  {
    ScopedTraceContext scope(ctx);
    pool.ParallelFor(kShards, [&seen](int64_t i) {
      seen[i] = CurrentTraceContext().trace_id;
    });
  }
  for (int64_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(seen[i], ctx.trace_id) << i;
  }
  EXPECT_FALSE(CurrentTraceContext().active());
}

// Satellite: early-cancelled TryParallelFor batches must still close
// every span they opened — drained (never-executed) indices open no
// spans, executed ones close theirs via RAII even on the error path.
// ci.sh runs this file under TSan, covering the context handoff races.
TEST(ContextTest, TryParallelForEarlyCancelClosesEverySpan) {
  TraceRecorder& recorder = TraceRecorder::Global();
  SetTracingEnabled(false);
  recorder.Drain();
  SetTracingEnabled(true);
  ThreadPool pool(4);
  TraceContext ctx;
  ctx.trace_id = NewTraceId();
  ctx.span_id = NewSpanId();
  std::atomic<int> executed{0};
  std::atomic<int> context_mismatches{0};
  Status status;
  {
    ScopedTraceContext scope(ctx);
    status = pool.TryParallelFor(256, [&](int64_t i) -> Status {
      Span span("ctx_test.shard", "test");
      if (CurrentTraceContext().trace_id != ctx.trace_id) {
        context_mismatches.fetch_add(1);
      }
      executed.fetch_add(1);
      if (i == 3) return InvalidArgumentError("shard failure");
      return Status::Ok();
    });
  }
  SetTracingEnabled(false);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(context_mismatches.load(), 0);
  std::vector<TraceEvent> events = recorder.Drain();
  int shard_spans = 0;
  for (const TraceEvent& event : events) {
    if (std::string(event.name) == "ctx_test.shard") {
      ++shard_spans;
      // A drained event is by construction a *closed* span; balanced
      // begin/end means exactly one event per executed index, each
      // attributed to the request.
      EXPECT_GE(event.duration_ns, 0);
      EXPECT_EQ(event.trace_id, ctx.trace_id);
      EXPECT_EQ(event.parent_span_id, ctx.span_id);
    }
  }
  EXPECT_EQ(shard_spans, executed.load());
  EXPECT_LT(executed.load(), 256);  // the cancel actually cut the batch
  EXPECT_FALSE(CurrentTraceContext().active());
}

TEST(TraceStoreTest, BuildsNestedTreeJson) {
  TraceStore store;
  const uint64_t trace = NewTraceId();
  store.Begin(trace);
  EXPECT_EQ(store.size(), 1u);
  const uint64_t root = NewSpanId();
  const uint64_t child_a = NewSpanId();
  const uint64_t child_b = NewSpanId();
  StoredSpan span;
  span.span_id = child_b;
  span.parent_span_id = root;
  span.name = "store_test.b";
  span.category = "test";
  span.start_ns = 300;
  span.duration_ns = 50;
  store.Record(trace, span);
  span.span_id = child_a;
  span.name = "store_test.a";
  span.start_ns = 150;
  store.Record(trace, span);
  span.span_id = root;
  span.parent_span_id = 0;
  span.name = "store_test.root";
  span.start_ns = 100;
  span.duration_ns = 400;
  store.Record(trace, span);
  store.Finish(trace);

  JsonValue parsed;
  ASSERT_TRUE(JsonParser(store.TreeJson(trace)).Parse(&parsed));
  EXPECT_EQ(parsed.Find("schema")->string, "ipdb-trace-tree-v1");
  EXPECT_TRUE(parsed.Find("finished")->boolean);
  EXPECT_FALSE(parsed.Find("truncated")->boolean);
  EXPECT_EQ(parsed.Find("spanCount")->number, 3.0);
  const JsonValue* roots = parsed.Find("roots");
  ASSERT_NE(roots, nullptr);
  ASSERT_EQ(roots->array.size(), 1u);
  const JsonValue& tree_root = roots->array[0];
  EXPECT_EQ(tree_root.Find("name")->string, "store_test.root");
  const JsonValue* children = tree_root.Find("children");
  ASSERT_NE(children, nullptr);
  ASSERT_EQ(children->array.size(), 2u);
  // Children sorted by start time.
  EXPECT_EQ(children->array[0].Find("name")->string, "store_test.a");
  EXPECT_EQ(children->array[1].Find("name")->string, "store_test.b");

  // Unknown ids answer empty (the daemon turns this into an error).
  EXPECT_TRUE(store.TreeJson(trace + 12345).empty());
}

TEST(TraceStoreTest, EvictsOldestTraceAtCapacity) {
  TraceStore store;
  const uint64_t first = NewTraceId();
  store.Begin(first);
  std::vector<uint64_t> later;
  for (size_t i = 0; i < TraceStore::kMaxTraces; ++i) {
    const uint64_t id = NewTraceId();
    later.push_back(id);
    store.Begin(id);
  }
  EXPECT_EQ(store.size(), TraceStore::kMaxTraces);
  EXPECT_TRUE(store.TreeJson(first).empty());          // evicted
  EXPECT_FALSE(store.TreeJson(later.back()).empty());  // newest survives
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
}

TEST(TraceStoreTest, SampledSpansRecordWithoutTheChromeRecorder) {
  SetTracingEnabled(false);
  TraceRecorder::Global().Drain();
  TraceContext ctx;
  ctx.trace_id = NewTraceId();
  ctx.span_id = NewSpanId();
  ctx.sampled = true;
  TraceStore::Global().Begin(ctx.trace_id);
  {
    ScopedTraceContext scope(ctx);
    Span span("store_test.sampled", "test");
    SpinFor(1000);
  }
  TraceStore::Global().Finish(ctx.trace_id);
  JsonValue parsed;
  ASSERT_TRUE(
      JsonParser(TraceStore::Global().TreeJson(ctx.trace_id)).Parse(&parsed));
  ASSERT_EQ(parsed.Find("roots")->array.size(), 1u);
  EXPECT_EQ(parsed.Find("roots")->array[0].Find("name")->string,
            "store_test.sampled");
  // Nothing reached the (disabled) Chrome recorder.
  EXPECT_TRUE(TraceRecorder::Global().Drain().empty());
}

// ---------------------------------------------------------------------
// Per-tenant time series and SLO burn rates (clock injected, so every
// assertion is deterministic).

constexpr int64_t kNs = 1000000000;

TEST(TimeSeriesTest, RollupComputesCountsRatesAndQuantiles) {
  SloPolicy policy;  // no objectives; rollups work regardless
  TenantSeries series(policy);
  const int64_t t0 = 5000 * kNs;
  for (int i = 0; i < 90; ++i) {
    series.RecordServed(t0, /*latency_ns=*/1000, /*ok=*/true,
                        /*degraded=*/false);
  }
  for (int i = 0; i < 10; ++i) {
    series.RecordServed(t0, /*latency_ns=*/1000000, /*ok=*/false,
                        /*degraded=*/true);
  }
  for (int i = 0; i < 25; ++i) series.RecordShed(t0);

  SeriesRollup rollup = series.Rollup(t0, 60);
  EXPECT_EQ(rollup.window_s, 60);
  EXPECT_EQ(rollup.served, 100);
  EXPECT_EQ(rollup.ok, 90);
  EXPECT_EQ(rollup.errors, 10);
  EXPECT_EQ(rollup.shed, 25);
  EXPECT_EQ(rollup.degraded, 10);
  EXPECT_DOUBLE_EQ(rollup.qps, 100.0 / 60.0);
  EXPECT_DOUBLE_EQ(rollup.error_rate, 0.1);
  EXPECT_DOUBLE_EQ(rollup.degraded_rate, 0.1);
  EXPECT_DOUBLE_EQ(rollup.shed_rate, 25.0 / 125.0);
  // Quantiles report power-of-two bucket lower bounds: 1000ns lands in
  // [512, 1024), 1000000ns in [524288, 1048576).
  EXPECT_EQ(rollup.p50_ns, 512);
  EXPECT_EQ(rollup.p99_ns, 524288);
}

TEST(TimeSeriesTest, WindowsExpireAfterTheRingDepth) {
  TenantSeries series(SloPolicy{});
  const int64_t t0 = 9000 * kNs;
  series.RecordServed(t0, 1000, true, false);
  EXPECT_EQ(series.Rollup(t0, 60).served, 1);
  // Ten minutes later the ring slot has been reused/reset.
  const int64_t t1 = t0 + (TenantSeries::kWindows + 5) * kNs;
  EXPECT_EQ(series.Rollup(t1, TenantSeries::kSlowWindowS).served, 0);
}

TEST(TimeSeriesTest, NoSloPolicyReportsNoSlo) {
  TenantSeries series(SloPolicy{});
  SloReport report = series.Evaluate(7000 * kNs);
  EXPECT_EQ(report.state, "no_slo");
  EXPECT_FALSE(report.latency.enabled);
  EXPECT_FALSE(report.availability.enabled);
}

TEST(TimeSeriesTest, AvailabilityBreachNeedsBothWindowsBurning) {
  SloPolicy policy;
  policy.availability_target = 0.9;  // allows 10% bad
  policy.burn_alert = 1.0;
  TenantSeries series(policy);

  // 540s of clean traffic, then a 60s shed burst. The fast window sees
  // 50% shed (burn 5), but the slow window has absorbed enough good
  // traffic that its burn stays under 1 -> not breaching yet.
  const int64_t t0 = 20000 * kNs;
  for (int64_t s = 0; s < 540; ++s) {
    for (int i = 0; i < 10; ++i) {
      series.RecordServed(t0 + s * kNs, 1000, true, false);
    }
  }
  const int64_t burst = t0 + 540 * kNs;
  for (int64_t s = 0; s < 60; ++s) {
    series.RecordServed(burst + s * kNs, 1000, true, false);
    series.RecordShed(burst + s * kNs);
  }
  const int64_t now = burst + 59 * kNs;
  SloReport partial = series.Evaluate(now);
  ASSERT_TRUE(partial.availability.enabled);
  EXPECT_GT(partial.availability.fast, 1.0);
  EXPECT_LT(partial.availability.slow, 1.0);
  EXPECT_EQ(partial.state, "ok");

  // Keep shedding half the traffic long enough and the slow window
  // burns too -> breaching.
  for (int64_t s = 60; s < 600; ++s) {
    series.RecordServed(burst + s * kNs, 1000, true, false);
    series.RecordShed(burst + s * kNs);
  }
  SloReport sustained = series.Evaluate(burst + 599 * kNs);
  EXPECT_GT(sustained.availability.fast, 1.0);
  EXPECT_GT(sustained.availability.slow, 1.0);
  EXPECT_EQ(sustained.state, "breaching");
}

TEST(TimeSeriesTest, LatencyObjectiveBurnsOnSlowRequests) {
  SloPolicy policy;
  policy.latency_threshold_ms = 1.0;  // 1ms p99 target
  policy.latency_target = 0.99;       // 1% slow allowed
  policy.burn_alert = 1.0;
  TenantSeries series(policy);
  const int64_t t0 = 40000 * kNs;
  // Half the requests blow the threshold: bad fraction 0.5 vs 0.01
  // allowed -> burn 50 in any window containing them.
  for (int i = 0; i < 50; ++i) {
    series.RecordServed(t0, /*latency_ns=*/100000, true, false);
    series.RecordServed(t0, /*latency_ns=*/5000000, true, false);
  }
  SloReport report = series.Evaluate(t0);
  ASSERT_TRUE(report.latency.enabled);
  EXPECT_NEAR(report.latency.fast, 50.0, 1e-9);
  EXPECT_NEAR(report.latency.slow, 50.0, 1e-9);
  EXPECT_EQ(report.state, "breaching");

  // All-fast traffic burns nothing.
  TenantSeries healthy(policy);
  for (int i = 0; i < 100; ++i) {
    healthy.RecordServed(t0, 100000, true, false);
  }
  EXPECT_EQ(healthy.Evaluate(t0).state, "ok");
}

TEST(TimeSeriesTest, ServiceStatsReportJsonParses) {
  ServiceStats stats;
  SloPolicy slo;
  slo.availability_target = 0.99;
  TenantSeries& alpha = stats.GetSeries("alpha", slo);
  stats.GetSeries("beta", SloPolicy{});
  EXPECT_EQ(&stats.GetSeries("alpha", SloPolicy{}), &alpha);  // first wins
  const int64_t t0 = 60000 * kNs;
  alpha.RecordServed(t0, 2000, true, false);
  alpha.RecordServed(t0, 3000, false, true);
  alpha.RecordShed(t0);

  JsonValue parsed;
  ASSERT_TRUE(JsonParser(stats.ReportJson(t0)).Parse(&parsed));
  EXPECT_EQ(parsed.Find("schema")->string, "ipdb-stats-v1");
  const JsonValue* tenants = parsed.Find("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_EQ(tenants->object.size(), 2u);
  const JsonValue* alpha_json = tenants->Find("alpha");
  ASSERT_NE(alpha_json, nullptr);
  const JsonValue* fast = alpha_json->Find("1m");
  ASSERT_NE(fast, nullptr);
  EXPECT_EQ(fast->Find("served")->number, 2.0);
  EXPECT_EQ(fast->Find("shed")->number, 1.0);
  ASSERT_NE(alpha_json->Find("10m"), nullptr);
  const JsonValue* slo_json = alpha_json->Find("slo");
  ASSERT_NE(slo_json, nullptr);
  EXPECT_EQ(slo_json->Find("state")->string, "breaching");
  const JsonValue* beta_slo = tenants->Find("beta")->Find("slo");
  ASSERT_NE(beta_slo, nullptr);
  EXPECT_EQ(beta_slo->Find("state")->string, "no_slo");
}

}  // namespace
}  // namespace obs
}  // namespace ipdb
