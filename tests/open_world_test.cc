#include "pqe/open_world.h"

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "pqe/wmc.h"

namespace ipdb {
namespace pqe {
namespace {

rel::Schema TestSchema() { return rel::Schema({{"R", 2}}); }

rel::Fact R(int64_t a, int64_t b) {
  return rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)});
}

TEST(OpenWorldTest, IntervalBracketsClosedWorld) {
  rel::Schema schema = TestSchema();
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {{R(1, 2), 0.5}});
  logic::Formula query =
      logic::ParseSentence("exists x y z. R(x, y) & R(y, z)", schema)
          .value();
  // Closed world: no 2-path exists (needs R(2, _)); probability 0.
  auto interval = OpenQueryProbabilityInterval(ti, query, 0.3,
                                               {R(2, 3), R(2, 1)});
  ASSERT_TRUE(interval.ok()) << interval.status().ToString();
  EXPECT_DOUBLE_EQ(interval.value().lo(), 0.0);
  // Upper: R(1,2) present AND at least one of R(2,3)/R(2,1) at 0.3, or a
  // path among the unknowns themselves (R(2,1) & R(1,2)):
  // verified against direct WMC on the completed TI.
  pdb::TiPdb<double> completed = pdb::TiPdb<double>::CreateOrDie(
      schema, {{R(1, 2), 0.5}, {R(2, 3), 0.3}, {R(2, 1), 0.3}});
  EXPECT_NEAR(interval.value().hi(),
              QueryProbability(completed, query).value(), 1e-12);
  EXPECT_GT(interval.value().hi(), 0.0);
}

TEST(OpenWorldTest, LambdaZeroCollapsesToPoint) {
  rel::Schema schema = TestSchema();
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {{R(1, 2), 0.5}});
  logic::Formula query =
      logic::ParseSentence("exists x y. R(x, y)", schema).value();
  auto interval =
      OpenQueryProbabilityInterval(ti, query, 0.0, {R(7, 7)});
  ASSERT_TRUE(interval.ok());
  EXPECT_DOUBLE_EQ(interval.value().lo(), 0.5);
  EXPECT_DOUBLE_EQ(interval.value().hi(), 0.5);
}

TEST(OpenWorldTest, KnownFactsNotOverwritten) {
  // A candidate that is already a known fact keeps its stated marginal.
  rel::Schema schema = TestSchema();
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {{R(1, 2), 0.5}});
  logic::Formula query =
      logic::ParseSentence("exists x y. R(x, y)", schema).value();
  auto interval =
      OpenQueryProbabilityInterval(ti, query, 0.99, {R(1, 2)});
  ASSERT_TRUE(interval.ok());
  EXPECT_DOUBLE_EQ(interval.value().hi(), 0.5);
}

TEST(OpenWorldTest, NonMonotoneRejected) {
  rel::Schema schema = TestSchema();
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {{R(1, 2), 0.5}});
  logic::Formula query =
      logic::ParseSentence("!(exists x y. R(x, y))", schema).value();
  auto interval = OpenQueryProbabilityInterval(ti, query, 0.3, {});
  EXPECT_FALSE(interval.ok());
  EXPECT_EQ(interval.status().code(), StatusCode::kFailedPrecondition);
}

TEST(OpenWorldTest, Validation) {
  rel::Schema schema = TestSchema();
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {{R(1, 2), 0.5}});
  logic::Formula query =
      logic::ParseSentence("exists x y. R(x, y)", schema).value();
  EXPECT_FALSE(OpenQueryProbabilityInterval(ti, query, -0.1, {}).ok());
  EXPECT_FALSE(OpenQueryProbabilityInterval(ti, query, 1.5, {}).ok());
  rel::Fact bad(3, {rel::Value::Int(1)});
  EXPECT_FALSE(
      OpenQueryProbabilityInterval(ti, query, 0.5, {bad}).ok());
}

}  // namespace
}  // namespace pqe
}  // namespace ipdb
