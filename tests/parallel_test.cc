#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/paper_examples.h"
#include "logic/parser.h"
#include "pdb/sampling.h"
#include "pdb/ti_pdb.h"
#include "pqe/expected_answers.h"
#include "pqe/monte_carlo.h"
#include "util/budget.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/status.h"

namespace ipdb {
namespace {

pdb::TiPdb<double> MakeTi(int n) {
  rel::Schema schema({{"U", 1}});
  pdb::TiPdb<double>::FactList facts;
  for (int i = 0; i < n; ++i) {
    facts.emplace_back(rel::Fact(0, {rel::Value::Int(i)}),
                       0.5 / (i + 1.0));
  }
  return pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  const int64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](int64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(100, [&](int64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 100 * 99 / 2);
  }
}

TEST(ThreadPoolTest, EmptyAndSingletonBatches) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(1, [&](int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, SequentialFallbackPreservesOrder) {
  // threads == 1 must run in index order on the calling thread.
  std::vector<int64_t> order;
  ParallelFor(1, 10, [&](int64_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelAccumulateTest, BitIdenticalAcrossThreadCounts) {
  pdb::TiPdb<double> ti = MakeTi(10);
  Pcg32 base(2024, 11);
  auto sampler = [&ti](Pcg32* rng) { return ti.Sample(rng); };
  pdb::SamplingOptions options;
  options.threads = 1;
  pdb::EmpiricalDistribution one =
      pdb::Accumulate(sampler, 20000, base, options);
  options.threads = 2;
  pdb::EmpiricalDistribution two =
      pdb::Accumulate(sampler, 20000, base, options);
  options.threads = 8;
  pdb::EmpiricalDistribution eight =
      pdb::Accumulate(sampler, 20000, base, options);
  EXPECT_EQ(one.total(), 20000);
  EXPECT_EQ(one.counts(), two.counts());
  EXPECT_EQ(one.counts(), eight.counts());
}

TEST(ParallelAccumulateTest, MatchesTargetDistribution) {
  pdb::TiPdb<double> ti = MakeTi(4);
  Pcg32 base(7);
  pdb::SamplingOptions options;
  options.threads = 4;
  pdb::EmpiricalDistribution empirical = pdb::Accumulate(
      [&ti](Pcg32* rng) { return ti.Sample(rng); }, 50000, base, options);
  EXPECT_LT(empirical.TvDistance(ti.Expand()), 0.02);
}

TEST(ParallelAccumulateTest, UnevenShardSplitCoversAllSamples) {
  pdb::TiPdb<double> ti = MakeTi(3);
  Pcg32 base(5);
  pdb::SamplingOptions options;
  options.threads = 3;
  options.shards = 7;  // 100 = 7*14 + 2: shards get uneven sample counts
  pdb::EmpiricalDistribution empirical = pdb::Accumulate(
      [&ti](Pcg32* rng) { return ti.Sample(rng); }, 100, base, options);
  EXPECT_EQ(empirical.total(), 100);
}

TEST(ParallelEstimateTest, FiniteBitIdenticalAcrossThreadCounts) {
  pdb::TiPdb<double> ti = MakeTi(8);
  logic::Formula query =
      logic::ParseSentence("exists x. U(x)", ti.schema()).value();
  Pcg32 base(42, 54);
  pdb::SamplingOptions options;
  std::vector<double> estimates;
  for (int threads : {1, 2, 8}) {
    options.threads = threads;
    auto result =
        pqe::EstimateQueryProbability(ti, query, 20000, base, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    estimates.push_back(result.value().estimate);
    EXPECT_EQ(result.value().samples, 20000);
  }
  EXPECT_EQ(estimates[0], estimates[1]);
  EXPECT_EQ(estimates[0], estimates[2]);
  // And the estimate is near the exact probability 1 - Π(1 - p_i).
  double exact = 1.0;
  for (const auto& [fact, p] : ti.facts()) exact *= 1.0 - p;
  exact = 1.0 - exact;
  EXPECT_NEAR(estimates[0], exact, 0.02);
}

TEST(ParallelEstimateTest, CountableBitIdenticalAcrossThreadCounts) {
  pdb::CountableTiPdb ti = core::Example56Ti();
  logic::Formula query =
      logic::ParseSentence("exists x. U(x)", ti.schema()).value();
  Pcg32 base(99, 3);
  pdb::SamplingOptions options;
  std::vector<double> estimates;
  for (int threads : {1, 2, 8}) {
    options.threads = threads;
    auto result = pqe::EstimateQueryProbability(ti, query, 2000, base,
                                                options, 0.99, 1e-3);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    estimates.push_back(result.value().estimate);
    EXPECT_DOUBLE_EQ(result.value().sampler_bias, 1e-3);
  }
  EXPECT_EQ(estimates[0], estimates[1]);
  EXPECT_EQ(estimates[0], estimates[2]);
}

TEST(ParallelEstimateTest, ValidatesArguments) {
  pdb::TiPdb<double> ti = MakeTi(4);
  logic::Formula sentence =
      logic::ParseSentence("exists x. U(x)", ti.schema()).value();
  logic::Formula open =
      logic::ParseFormula("U(x)", ti.schema()).value();
  Pcg32 base(1);
  pdb::SamplingOptions options;
  EXPECT_EQ(pqe::EstimateQueryProbability(ti, sentence, 0, base, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(pqe::EstimateQueryProbability(ti, sentence, 100, base, options,
                                          1.5)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(pqe::EstimateQueryProbability(ti, open, 100, base, options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  pdb::CountableTiPdb countable = core::Example56Ti();
  logic::Formula countable_query =
      logic::ParseSentence("exists x. U(x)", countable.schema())
          .value();
  EXPECT_EQ(pqe::EstimateQueryProbability(countable, countable_query, 100,
                                          base, options, 0.99, 0.0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ParallelExpectedAnswersTest, MatchesSequentialResult) {
  rel::Schema schema({{"R", 2}});
  pdb::TiPdb<double>::FactList facts;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      facts.emplace_back(
          rel::Fact(0, {rel::Value::Int(i), rel::Value::Int(10 + j)}),
          0.1 + 0.05 * (i + j));
    }
  }
  pdb::TiPdb<double> ti =
      pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
  logic::Formula query =
      logic::ParseFormula("exists y. R(x, y)", ti.schema()).value();
  pdb::SamplingOptions sequential;
  sequential.threads = 1;
  pdb::SamplingOptions parallel;
  parallel.threads = 4;
  auto seq = pqe::RankedAnswers(ti, query, {"x"}, sequential);
  auto par = pqe::RankedAnswers(ti, query, {"x"}, parallel);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  ASSERT_EQ(seq.value().size(), par.value().size());
  for (size_t i = 0; i < seq.value().size(); ++i) {
    EXPECT_EQ(seq.value()[i].tuple, par.value()[i].tuple);
    EXPECT_EQ(seq.value()[i].probability, par.value()[i].probability);
  }
  auto seq_count = pqe::ExpectedAnswerCount(ti, query, {"x"}, sequential);
  auto par_count = pqe::ExpectedAnswerCount(ti, query, {"x"}, parallel);
  ASSERT_TRUE(seq_count.ok());
  ASSERT_TRUE(par_count.ok());
  EXPECT_EQ(seq_count.value(), par_count.value());
}

TEST(TryParallelForTest, AllOkRunsEveryIndexOnce) {
  ThreadPool pool(4);
  const int64_t n = 500;
  std::vector<std::atomic<int>> hits(n);
  Status status = pool.TryParallelFor(n, [&](int64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(TryParallelForTest, FirstErrorCancelsBatchAndPoolStaysUsable) {
  ThreadPool pool(4);
  const int64_t n = 10000;
  std::atomic<int64_t> executed{0};
  Status status = pool.TryParallelFor(n, [&](int64_t i) -> Status {
    executed.fetch_add(1, std::memory_order_relaxed);
    if (i >= 100) return OutOfRangeError("boom " + std::to_string(i));
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(status.message().rfind("boom ", 0), 0u) << status.message();

  // Regression: the drain must still claim every remaining index so the
  // batch completes (no deadlock) and the pool accepts the next batch.
  std::atomic<int64_t> second{0};
  Status again = pool.TryParallelFor(1000, [&](int64_t) {
    second.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  });
  EXPECT_TRUE(again.ok());
  EXPECT_EQ(second.load(), 1000);
}

TEST(TryParallelForTest, PreCancelledTokenSkipsAllWork) {
  CancelToken token;
  token.Cancel();
  std::atomic<int64_t> executed{0};
  Status status = TryParallelFor(4, 256, [&](int64_t) {
    executed.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }, &token);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(executed.load(), 0);
}

TEST(TryParallelForTest, SequentialFastPathStopsAtFirstError) {
  std::vector<int64_t> executed;
  Status status = TryParallelFor(1, 100, [&](int64_t i) -> Status {
    executed.push_back(i);
    if (i == 3) return InternalError("boom 3");
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "boom 3");
  EXPECT_EQ(executed, (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(TryParallelForTest, MidBatchCancellationReportsCancelled) {
  CancelToken token;
  std::atomic<int64_t> executed{0};
  Status status = TryParallelFor(4, 50000, [&](int64_t i) {
    if (i == 0) token.Cancel();
    executed.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }, &token);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  // Cooperative: some indices ran, but the batch stopped early.
  EXPECT_LT(executed.load(), 50000);
}

}  // namespace
}  // namespace ipdb
