#include "relational/parse.h"

#include <gtest/gtest.h>

namespace ipdb {
namespace rel {
namespace {

Schema TestSchema() { return Schema({{"R", 2}, {"S", 1}, {"E", 0}}); }

TEST(ParseInstanceTest, BasicFacts) {
  Schema schema = TestSchema();
  auto instance =
      ParseInstance("R(1, 'a'); S(-3); E(); S(null)", schema);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_EQ(instance.value().size(), 4);
  EXPECT_TRUE(instance.value().Contains(
      Fact(0, {Value::Int(1), Value::Symbol("a")})));
  EXPECT_TRUE(instance.value().Contains(Fact(1, {Value::Int(-3)})));
  EXPECT_TRUE(instance.value().Contains(Fact(2, {})));
  EXPECT_TRUE(instance.value().Contains(Fact(1, {Value::Null()})));
}

TEST(ParseInstanceTest, WhitespaceAndTrailingSeparator) {
  Schema schema = TestSchema();
  auto instance = ParseInstance("  S( 7 ) ;\n R('x','y') ; ", schema);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_EQ(instance.value().size(), 2);
}

TEST(ParseInstanceTest, DuplicatesCollapse) {
  Schema schema = TestSchema();
  auto instance = ParseInstance("S(1); S(1); S(2)", schema);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance.value().size(), 2);
}

TEST(ParseInstanceTest, EmptyTextIsEmptyInstance) {
  Schema schema = TestSchema();
  auto instance = ParseInstance("   ", schema);
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(instance.value().empty());
}

TEST(ParseInstanceTest, Errors) {
  Schema schema = TestSchema();
  EXPECT_FALSE(ParseInstance("T(1)", schema).ok());       // unknown rel
  EXPECT_FALSE(ParseInstance("S(1, 2)", schema).ok());    // arity
  EXPECT_FALSE(ParseInstance("S(x)", schema).ok());       // bare symbol
  EXPECT_FALSE(ParseInstance("S(1", schema).ok());        // unbalanced
  EXPECT_FALSE(ParseInstance("S(1) S(2)", schema).ok());  // missing ';'
  EXPECT_FALSE(ParseInstance("S('a)", schema).ok());      // unterminated
  EXPECT_FALSE(ParseInstance("S(-)", schema).ok());       // bad number
}

TEST(ParseFactTest, SingleFact) {
  Schema schema = TestSchema();
  auto fact = ParseFact("R(0, 'b')", schema);
  ASSERT_TRUE(fact.ok());
  EXPECT_EQ(fact.value(), Fact(0, {Value::Int(0), Value::Symbol("b")}));
  EXPECT_FALSE(ParseFact("R(0, 'b'); S(1)", schema).ok());  // trailing
}

TEST(ParseInstanceTest, RoundTripsWithToString) {
  // ToString output uses the same fact syntax modulo braces/commas; a
  // parsed copy of a hand-built instance compares equal.
  Schema schema = TestSchema();
  Instance original({Fact(0, {Value::Int(1), Value::Int(2)}),
                     Fact(1, {Value::Symbol("q")})});
  auto reparsed = ParseInstance("R(1, 2); S('q')", schema);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(original, reparsed.value());
}

}  // namespace
}  // namespace rel
}  // namespace ipdb
