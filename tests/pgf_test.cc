#include "prob/pgf.h"

#include <gtest/gtest.h>

#include "prob/poisson_binomial.h"

namespace ipdb {
namespace prob {
namespace {

using math::Rational;

TEST(RationalPolynomialTest, Algebra) {
  RationalPolynomial p({Rational(1), Rational(2)});   // 1 + 2x
  RationalPolynomial q({Rational(0), Rational(1), Rational(3)});  // x+3x²
  RationalPolynomial sum = p + q;
  EXPECT_EQ(sum.Coefficient(0), Rational(1));
  EXPECT_EQ(sum.Coefficient(1), Rational(3));
  EXPECT_EQ(sum.Coefficient(2), Rational(3));
  RationalPolynomial product = p * q;
  // (1+2x)(x+3x²) = x + 5x² + 6x³.
  EXPECT_EQ(product.Coefficient(1), Rational(1));
  EXPECT_EQ(product.Coefficient(2), Rational(5));
  EXPECT_EQ(product.Coefficient(3), Rational(6));
  EXPECT_EQ(product.degree(), 3);
  // Derivative of the product: 1 + 10x + 18x².
  RationalPolynomial derivative = product.Derivative();
  EXPECT_EQ(derivative.Coefficient(0), Rational(1));
  EXPECT_EQ(derivative.Coefficient(1), Rational(10));
  EXPECT_EQ(derivative.Coefficient(2), Rational(18));
  // Evaluation.
  EXPECT_EQ(p.Evaluate(Rational::Ratio(1, 2)), Rational(2));
  // Zero handling.
  EXPECT_EQ(RationalPolynomial().degree(), -1);
  EXPECT_EQ(RationalPolynomial({Rational(0)}).degree(), -1);
}

TEST(PgfTest, PmfCoefficientsMatchDp) {
  std::vector<Rational> marginals = {
      Rational::Ratio(1, 2), Rational::Ratio(1, 4), Rational::Ratio(2, 3)};
  RationalPolynomial pgf = TiSizePgf(marginals);
  // Coefficients sum to 1 and match the double DP.
  std::vector<double> dp =
      PoissonBinomialPmf({0.5, 0.25, 2.0 / 3.0});
  Rational total;
  for (int64_t k = 0; k <= pgf.degree(); ++k) {
    total += pgf.Coefficient(k);
    EXPECT_NEAR(pgf.Coefficient(k).ToDouble(), dp[k], 1e-12) << k;
  }
  EXPECT_EQ(total, Rational(1));
  EXPECT_EQ(pgf.Evaluate(Rational(1)), Rational(1));
}

TEST(PgfTest, ExactMomentsOfBernoulliSum) {
  // Two fair coins: S ~ Binomial(2, 1/2): E[S] = 1, E[S²] = 3/2,
  // E[S³] = 0·(1/4) + 1·(1/2) + 8·(1/4) = 5/2.
  std::vector<Rational> marginals = {Rational::Ratio(1, 2),
                                     Rational::Ratio(1, 2)};
  RationalPolynomial pgf = TiSizePgf(marginals);
  EXPECT_EQ(RawMomentFromPgf(pgf, 0), Rational(1));
  EXPECT_EQ(RawMomentFromPgf(pgf, 1), Rational(1));
  EXPECT_EQ(RawMomentFromPgf(pgf, 2), Rational::Ratio(3, 2));
  EXPECT_EQ(RawMomentFromPgf(pgf, 3), Rational::Ratio(5, 2));
  // Factorial moments: E[S(S-1)] = 2·(1/2)² = 1/2.
  EXPECT_EQ(FactorialMomentFromPgf(pgf, 2), Rational::Ratio(1, 2));
}

TEST(PgfTest, MomentsMatchDoubleDp) {
  std::vector<Rational> exact = {Rational::Ratio(1, 10),
                                 Rational::Ratio(9, 10),
                                 Rational::Ratio(1, 2),
                                 Rational::Ratio(3, 10)};
  std::vector<double> approx = {0.1, 0.9, 0.5, 0.3};
  RationalPolynomial pgf = TiSizePgf(exact);
  std::vector<double> pmf = PoissonBinomialPmf(approx);
  for (int k = 0; k <= 5; ++k) {
    EXPECT_NEAR(RawMomentFromPgf(pgf, k).ToDouble(),
                MomentFromPmf(pmf, k), 1e-9)
        << k;
  }
}

TEST(PgfTest, LemmaC1BoundHoldsExactly) {
  // The Lemma C.1 inequality E[S^k] <= E[S^{k-1}](k-1+E[S]) as an exact
  // rational comparison — the quantitative engine of Proposition 3.2.
  std::vector<Rational> marginals = {
      Rational::Ratio(1, 3), Rational::Ratio(2, 5), Rational::Ratio(1, 7),
      Rational::Ratio(4, 5)};
  RationalPolynomial pgf = TiSizePgf(marginals);
  Rational mean = RawMomentFromPgf(pgf, 1);
  for (int k = 1; k <= 6; ++k) {
    Rational lhs = RawMomentFromPgf(pgf, k);
    Rational rhs = RawMomentFromPgf(pgf, k - 1) *
                   (Rational(k - 1) + mean);
    EXPECT_LE(lhs, rhs) << k;
  }
}

TEST(PgfTest, StirlingNumbers) {
  // Row n = 4: S(4, 0..4) = 0, 1, 7, 6, 1.
  std::vector<math::BigInt> row = StirlingSecondKind(4);
  ASSERT_EQ(row.size(), 5u);
  EXPECT_EQ(row[0], math::BigInt(0));
  EXPECT_EQ(row[1], math::BigInt(1));
  EXPECT_EQ(row[2], math::BigInt(7));
  EXPECT_EQ(row[3], math::BigInt(6));
  EXPECT_EQ(row[4], math::BigInt(1));
  // Row 0.
  std::vector<math::BigInt> zero = StirlingSecondKind(0);
  ASSERT_EQ(zero.size(), 1u);
  EXPECT_EQ(zero[0], math::BigInt(1));
}

}  // namespace
}  // namespace prob
}  // namespace ipdb
