#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "logic/parser.h"
#include "pqe/lineage.h"
#include "pqe/wmc.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace pqe {
namespace {

TEST(LineageTest, SimplificationRules) {
  Lineage lineage;
  NodeId x = lineage.Var(0);
  NodeId y = lineage.Var(1);
  // Constant folding.
  EXPECT_EQ(lineage.MakeAnd({x, lineage.False()}), Lineage::kFalseId);
  EXPECT_EQ(lineage.MakeOr({x, lineage.True()}), Lineage::kTrueId);
  EXPECT_EQ(lineage.MakeAnd({x, lineage.True()}), x);
  EXPECT_EQ(lineage.MakeOr({x, lineage.False()}), x);
  // Idempotence and flattening.
  EXPECT_EQ(lineage.MakeAnd({x, x}), x);
  NodeId xy = lineage.MakeAnd({x, y});
  EXPECT_EQ(lineage.MakeAnd({xy, x}), xy);
  // Complement detection.
  EXPECT_EQ(lineage.MakeAnd({x, lineage.MakeNot(x)}), Lineage::kFalseId);
  EXPECT_EQ(lineage.MakeOr({x, lineage.MakeNot(x)}), Lineage::kTrueId);
  // Double negation.
  EXPECT_EQ(lineage.MakeNot(lineage.MakeNot(x)), x);
  // Hash consing: same structure, same id.
  EXPECT_EQ(lineage.MakeAnd({y, x}), xy);
}

TEST(LineageTest, SupportAndEvaluate) {
  Lineage lineage;
  NodeId x = lineage.Var(0);
  NodeId z = lineage.Var(2);
  NodeId f = lineage.MakeOr({lineage.MakeAnd({x, z}), lineage.MakeNot(x)});
  std::vector<int> support = lineage.Support(f);
  EXPECT_EQ(support, (std::vector<int>{0, 2}));
  EXPECT_TRUE(lineage.Evaluate(f, {true, false, true}));
  EXPECT_FALSE(lineage.Evaluate(f, {true, false, false}));
  EXPECT_TRUE(lineage.Evaluate(f, {false, false, false}));
}

TEST(LineageTest, Restrict) {
  Lineage lineage;
  NodeId x = lineage.Var(0);
  NodeId y = lineage.Var(1);
  NodeId f = lineage.MakeAnd({x, y});
  EXPECT_EQ(lineage.Restrict(f, 0, true), y);
  EXPECT_EQ(lineage.Restrict(f, 0, false), Lineage::kFalseId);
  EXPECT_EQ(lineage.Restrict(f, 7, true), f);  // untouched variable
}

pdb::TiPdb<double> PathTi() {
  // R(1,2), R(2,3), R(1,3), S(2) with assorted marginals.
  rel::Schema schema({{"R", 2}, {"S", 1}});
  auto r = [](int64_t a, int64_t b) {
    return rel::Fact(0, {rel::Value::Int(a), rel::Value::Int(b)});
  };
  return pdb::TiPdb<double>::CreateOrDie(
      schema, {{r(1, 2), 0.5},
               {r(2, 3), 0.25},
               {r(1, 3), 0.75},
               {rel::Fact(1, {rel::Value::Int(2)}), 0.4}});
}

TEST(GroundingTest, AtomicAndBooleanQueries) {
  pdb::TiPdb<double> ti = PathTi();
  const rel::Schema& schema = ti.schema();
  Lineage lineage;
  // A present fact grounds to its variable.
  auto root = GroundSentence(
      ti, logic::ParseSentence("R(1, 2)", schema).value(), &lineage);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(lineage.kind(root.value()), NodeKind::kVar);
  // An absent fact grounds to false.
  root = GroundSentence(
      ti, logic::ParseSentence("R(9, 9)", schema).value(), &lineage);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value(), Lineage::kFalseId);
}

TEST(GroundingTest, RequiresSentence) {
  pdb::TiPdb<double> ti = PathTi();
  Lineage lineage;
  auto open = logic::ParseFormula("S(x)", ti.schema()).value();
  EXPECT_FALSE(GroundSentence(ti, open, &lineage).ok());
}

TEST(WmcTest, MatchesHandComputation) {
  pdb::TiPdb<double> ti = PathTi();
  const rel::Schema& schema = ti.schema();
  // Pr(∃x,y,z path x→y→z) — the only 2-path is 1→2→3:
  // P = 0.5 · 0.25.
  auto p = QueryProbability(
      ti,
      logic::ParseSentence("exists x y z. R(x, y) & R(y, z)", schema)
          .value());
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_NEAR(p.value(), 0.125, 1e-12);
  // Independent OR: Pr(R(1,2) ∨ R(2,3)) = 1 − 0.5·0.75.
  p = QueryProbability(
      ti, logic::ParseSentence("R(1, 2) | R(2, 3)", schema).value());
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 1.0 - 0.375, 1e-12);
}

struct PqeCase {
  std::string name;
  std::string sentence;
};

class PqeAgreementTest : public ::testing::TestWithParam<PqeCase> {};

TEST_P(PqeAgreementTest, WmcMatchesBruteForce) {
  pdb::TiPdb<double> ti = PathTi();
  const rel::Schema& schema = ti.schema();
  logic::Formula sentence =
      logic::ParseSentence(GetParam().sentence, schema).value();
  auto exact = QueryProbability(ti, sentence);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  auto brute = QueryProbabilityBruteForce(ti, sentence);
  ASSERT_TRUE(brute.ok()) << brute.status().ToString();
  EXPECT_NEAR(exact.value(), brute.value(), 1e-10) << GetParam().sentence;
}

INSTANTIATE_TEST_SUITE_P(
    Sentences, PqeAgreementTest,
    ::testing::Values(
        PqeCase{"Path2", "exists x y z. R(x, y) & R(y, z)"},
        PqeCase{"Reach13", "R(1, 3) | exists y. R(1, y) & R(y, 3)"},
        PqeCase{"Negation", "!(exists x. S(x))"},
        PqeCase{"Universal", "forall x y. R(x, y) -> x = 1 | x = 2"},
        PqeCase{"Mixed",
                "exists x. S(x) & forall y. R(x, y) -> S(y) | y = 3"},
        PqeCase{"Iff", "R(1, 2) <-> S(2)"},
        PqeCase{"EqualityOnly", "exists x. x = 1 & !S(x)"},
        PqeCase{"Triangle",
                "exists x y z. R(x, y) & R(y, z) & R(x, z)"},
        PqeCase{"TwoDisjointPatterns", "S(2) & R(1, 3)"},
        PqeCase{"DeMorgan", "!(R(1, 2) & R(2, 3))"}),
    [](const ::testing::TestParamInfo<PqeCase>& info) {
      return info.param.name;
    });

TEST(WmcTest, RandomizedAgainstBruteForce) {
  Pcg32 rng(97);
  rel::Schema schema({{"R", 2}, {"S", 1}});
  const char* sentences[] = {
      "exists x y. R(x, y) & S(y)",
      "forall x. S(x) -> exists y. R(x, y)",
      "exists x. !S(x) & exists y. R(x, y)",
  };
  for (int trial = 0; trial < 6; ++trial) {
    pdb::TiPdb<math::Rational> exact_ti =
        testing_util::RandomRationalTi(schema, 6, 3, 8, &rng);
    // Double version of the same TI.
    pdb::TiPdb<double>::FactList facts;
    for (const auto& [fact, marginal] : exact_ti.facts()) {
      facts.emplace_back(fact, marginal.ToDouble());
    }
    pdb::TiPdb<double> ti =
        pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
    for (const char* text : sentences) {
      logic::Formula sentence =
          logic::ParseSentence(text, schema).value();
      auto wmc = QueryProbability(ti, sentence);
      auto brute = QueryProbabilityBruteForce(ti, sentence);
      ASSERT_TRUE(wmc.ok()) << text;
      ASSERT_TRUE(brute.ok()) << text;
      EXPECT_NEAR(wmc.value(), brute.value(), 1e-9) << text;
    }
  }
}

TEST(WmcTest, DecompositionStatisticsReported) {
  // Two independent conjuncts: a decomposition, no Shannon expansion.
  pdb::TiPdb<double> ti = PathTi();
  WmcStats stats;
  auto p = QueryProbability(
      ti,
      logic::ParseSentence("S(2) & R(1, 3)", ti.schema()).value(), &stats);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 0.4 * 0.75, 1e-12);
  EXPECT_EQ(stats.shannon_expansions, 0);
  EXPECT_GE(stats.decompositions, 1);
}

TEST(WmcTest, DecompositionAblationAgrees) {
  // With decomposition disabled everything goes through Shannon
  // expansion — slower, but the probabilities must be identical.
  pdb::TiPdb<double> ti = PathTi();
  const rel::Schema& schema = ti.schema();
  const char* sentences[] = {
      "exists x y z. R(x, y) & R(y, z)",
      "S(2) & R(1, 3)",
      "forall x y. R(x, y) -> x = 1 | x = 2",
  };
  WmcOptions no_decompose;
  no_decompose.decompose = false;
  for (const char* text : sentences) {
    logic::Formula sentence = logic::ParseSentence(text, schema).value();
    Lineage lineage;
    auto root = GroundSentence(ti, sentence, &lineage);
    ASSERT_TRUE(root.ok());
    std::vector<double> probs;
    for (const auto& [fact, marginal] : ti.facts()) {
      probs.push_back(marginal);
    }
    WmcStats with_stats;
    WmcStats without_stats;
    auto with = ComputeProbability(&lineage, root.value(), probs,
                                   &with_stats);
    auto without = ComputeProbability(&lineage, root.value(), probs,
                                      &without_stats, no_decompose);
    ASSERT_TRUE(with.ok());
    ASSERT_TRUE(without.ok());
    EXPECT_NEAR(with.value(), without.value(), 1e-12) << text;
    EXPECT_EQ(without_stats.decompositions, 0) << text;
  }
}

TEST(WmcTest, SharedVariableNeedsShannon) {
  // (x ∧ y) ∨ (x ∧ z): x is shared, forcing Shannon expansion.
  Lineage lineage;
  NodeId x = lineage.Var(0);
  NodeId y = lineage.Var(1);
  NodeId z = lineage.Var(2);
  NodeId f = lineage.MakeOr(
      {lineage.MakeAnd({x, y}), lineage.MakeAnd({x, z})});
  WmcStats stats;
  auto p = ComputeProbability(&lineage, f, {0.5, 0.5, 0.5}, &stats);
  ASSERT_TRUE(p.ok());
  // P = P(x)·P(y ∨ z) = 0.5 · 0.75.
  EXPECT_NEAR(p.value(), 0.375, 1e-12);
  EXPECT_GE(stats.shannon_expansions, 1);
}

}  // namespace
}  // namespace pqe
}  // namespace ipdb
