#include <gtest/gtest.h>

#include <cmath>

#include "prob/distribution.h"
#include "prob/moments.h"
#include "prob/poisson_binomial.h"
#include "util/random.h"

namespace ipdb {
namespace prob {
namespace {

TEST(DistributionTest, GeometricPmfAndTail) {
  IntDistribution g = Geometric(0.5);
  EXPECT_DOUBLE_EQ(g.pmf(0), 0.5);
  EXPECT_DOUBLE_EQ(g.pmf(2), 0.125);
  EXPECT_DOUBLE_EQ(g.pmf(-1), 0.0);
  // Tail bound is exact for geometric.
  EXPECT_DOUBLE_EQ(g.tail_upper(3), 0.125);
  double mass = 0.0;
  for (int i = 0; i < 64; ++i) mass += g.pmf(i);
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(DistributionTest, GeometricMoments) {
  IntDistribution g = Geometric(0.5);
  // E[X] = q/(1-q) = 1; E[X²] = q(1+q)/(1-q)² = 3.
  Interval m1 = MomentInterval(g, 1);
  ASSERT_TRUE(m1.is_finite());
  EXPECT_TRUE(m1.Contains(1.0));
  Interval m2 = MomentInterval(g, 2);
  ASSERT_TRUE(m2.is_finite());
  EXPECT_TRUE(m2.Contains(3.0));
}

TEST(DistributionTest, PoissonPmfAndMean) {
  IntDistribution p = Poisson(3.0);
  double mass = 0.0;
  double mean = 0.0;
  for (int i = 0; i < 128; ++i) {
    mass += p.pmf(i);
    mean += i * p.pmf(i);
  }
  EXPECT_NEAR(mass, 1.0, 1e-12);
  EXPECT_NEAR(mean, 3.0, 1e-10);
  Interval m1 = MomentInterval(p, 1);
  ASSERT_TRUE(m1.is_finite());
  EXPECT_TRUE(m1.Contains(3.0));
  // E[X²] = λ² + λ = 12.
  Interval m2 = MomentInterval(p, 2);
  ASSERT_TRUE(m2.is_finite());
  EXPECT_TRUE(m2.Contains(12.0));
  // Tail bound dominates the true tail.
  double true_tail = 1.0;
  for (int i = 0; i < 10; ++i) true_tail -= p.pmf(i);
  EXPECT_GE(p.tail_upper(10), true_tail);
}

TEST(DistributionTest, PowerLawMomentFiniteness) {
  IntDistribution z = PowerLaw(3.5);
  double mass = 0.0;
  for (int i = 0; i < (1 << 16); ++i) mass += z.pmf(i);
  EXPECT_NEAR(mass, 1.0, 1e-3);
  // k = 1, 2 finite (s - k > 1); k = 3 infinite.
  EXPECT_TRUE(MomentInterval(z, 1).is_finite());
  EXPECT_TRUE(MomentInterval(z, 2).is_finite());
  EXPECT_FALSE(MomentInterval(z, 3).is_finite());
}

TEST(DistributionTest, SamplingMatchesPmf) {
  IntDistribution g = Geometric(0.4);
  Pcg32 rng(77);
  int counts[4] = {0, 0, 0, 0};
  const int samples = 40000;
  for (int i = 0; i < samples; ++i) {
    int64_t x = Sample(g, &rng);
    if (x < 4) ++counts[x];
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(samples), g.pmf(i), 0.01);
  }
}

TEST(PoissonBinomialTest, MatchesBinomialClosedForm) {
  // Equal p: S ~ Binomial(n, p).
  const int n = 10;
  const double p = 0.3;
  std::vector<double> marginals(n, p);
  std::vector<double> pmf = PoissonBinomialPmf(marginals);
  ASSERT_EQ(pmf.size(), static_cast<size_t>(n + 1));
  double binom = 1.0;
  for (int k = 0; k <= n; ++k) {
    double expected =
        binom * std::pow(p, k) * std::pow(1 - p, n - k);
    EXPECT_NEAR(pmf[k], expected, 1e-12) << k;
    binom = binom * (n - k) / (k + 1.0);
  }
}

TEST(PoissonBinomialTest, HeterogeneousSmallCase) {
  // p = {0.5, 0.25}: P(0)=3/8, P(1)=1/2, P(2)=1/8.
  std::vector<double> pmf = PoissonBinomialPmf({0.5, 0.25});
  EXPECT_DOUBLE_EQ(pmf[0], 0.375);
  EXPECT_DOUBLE_EQ(pmf[1], 0.5);
  EXPECT_DOUBLE_EQ(pmf[2], 0.125);
}

TEST(PoissonBinomialTest, MomentsMatchFormulas) {
  std::vector<double> p = {0.1, 0.9, 0.5, 0.3};
  std::vector<double> pmf = PoissonBinomialPmf(p);
  double mu = 0.1 + 0.9 + 0.5 + 0.3;
  EXPECT_NEAR(MomentFromPmf(pmf, 0), 1.0, 1e-12);
  EXPECT_NEAR(MomentFromPmf(pmf, 1), mu, 1e-12);
  // Var = Σ p(1-p); E[S²] = Var + mu².
  double var = 0.1 * 0.9 + 0.9 * 0.1 + 0.5 * 0.5 + 0.3 * 0.7;
  EXPECT_NEAR(MomentFromPmf(pmf, 2), var + mu * mu, 1e-12);
}

TEST(PoissonBinomialTest, LemmaC1BoundHolds) {
  // E[S^k] <= Π_{i<k} (i + E[S]) — the iterated Lemma C.1 bound.
  std::vector<double> p = {0.2, 0.7, 0.4, 0.6, 0.1};
  std::vector<double> pmf = PoissonBinomialPmf(p);
  double mu = MomentFromPmf(pmf, 1);
  for (int k = 1; k <= 5; ++k) {
    EXPECT_LE(MomentFromPmf(pmf, k), BernoulliSumMomentUpper(mu, k) + 1e-9)
        << k;
  }
}

TEST(PoissonBinomialTest, MomentIntervalEnclosesTruth) {
  // Treat a 12-fact TI as a truncated infinite one: the interval from the
  // 8-fact prefix plus the exact remaining mass must contain the true
  // moment.
  std::vector<double> all = {0.3, 0.1, 0.25, 0.4,  0.05, 0.2,
                             0.15, 0.35, 0.1,  0.05, 0.02, 0.01};
  std::vector<double> prefix(all.begin(), all.begin() + 8);
  double tail_mass = 0.0;
  for (size_t i = 8; i < all.size(); ++i) tail_mass += all[i];
  std::vector<double> full_pmf = PoissonBinomialPmf(all);
  for (int k = 1; k <= 4; ++k) {
    Interval enclosure = PoissonBinomialMomentInterval(prefix, tail_mass, k);
    double truth = MomentFromPmf(full_pmf, k);
    EXPECT_TRUE(enclosure.Contains(truth))
        << "k=" << k << " " << enclosure.ToString() << " truth " << truth;
  }
}

TEST(MomentsTest, FiniteSizeMoment) {
  std::vector<std::pair<int64_t, double>> dist = {{0, 0.5}, {2, 0.25},
                                                  {4, 0.25}};
  EXPECT_DOUBLE_EQ(SizeMomentFinite(dist, 0), 1.0);
  EXPECT_DOUBLE_EQ(SizeMomentFinite(dist, 1), 1.5);
  EXPECT_DOUBLE_EQ(SizeMomentFinite(dist, 2), 5.0);
}

TEST(MomentsTest, MomentSeriesWithCertificates) {
  // Family: size i, prob (1/2)^{i+1} — E[size] = Σ i 2^{-(i+1)} = 1.
  MomentTailCertificates certs;
  certs.upper = [](int k, int64_t N) {
    // Ratio bound: a_{i+1}/a_i = ((i+1)/i)^k / 2 <= ((N+1)/N)^k / 2.
    auto term = [k](int64_t i) {
      return std::pow(static_cast<double>(i), static_cast<double>(k)) *
             std::pow(0.5, static_cast<double>(i + 1));
    };
    int64_t n = std::max<int64_t>(N, 2 * k + 2);
    double skipped = 0.0;
    for (int64_t i = N; i < n; ++i) skipped += term(i);
    double ratio = std::pow((n + 1.0) / n, k) / 2.0;
    return skipped + RatioTailBound(term(n), ratio);
  };
  Series series = MakeMomentSeries(
      [](int64_t i) { return i; },
      [](int64_t i) { return std::pow(0.5, static_cast<double>(i + 1)); },
      1, certs);
  SumAnalysis result = AnalyzeSum(series);
  ASSERT_EQ(result.kind, SumAnalysis::Kind::kConverged);
  EXPECT_TRUE(result.enclosure.Contains(1.0));
}

TEST(DistributionTest, RatioTailBound) {
  EXPECT_DOUBLE_EQ(RatioTailBound(1.0, 0.5), 2.0);
  EXPECT_TRUE(std::isinf(RatioTailBound(1.0, 1.0)));
}

}  // namespace
}  // namespace prob
}  // namespace ipdb
