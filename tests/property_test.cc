// Property-based suites (parameterized sweeps over random seeds): laws
// that must hold for every PDB/view/condition, exercised across many
// random fixtures.

#include <gtest/gtest.h>

#include "core/finite_completeness.h"
#include "logic/parser.h"
#include "pdb/conditioning.h"
#include "pdb/metrics.h"
#include "pdb/pushforward.h"
#include "pdb/sampling.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace {

using math::Rational;

class RandomPdbProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomPdbProperty, PushforwardPreservesMassAndMergesPreimages) {
  Pcg32 rng(1000 + GetParam());
  rel::Schema in({{"R", 2}, {"S", 1}});
  rel::Schema out({{"T", 1}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x"};
  def.body = logic::ParseFormula("exists y. R(x, y) & S(y)", in).value();
  logic::FoView view = logic::FoView::Create(in, out, {def}).value();

  pdb::FinitePdb<Rational> input =
      testing_util::RandomRationalPdb(in, 5, 3, 0.3, 36, &rng);
  pdb::FinitePdb<Rational> image = pdb::PushforwardOrDie(input, view);
  // Mass 1 (validated by Create) and per-world consistency:
  for (const auto& [world, probability] : image.worlds()) {
    Rational direct;
    for (const auto& [pre, p] : input.worlds()) {
      if (view.ApplyOrDie(pre) == world) direct += p;
    }
    EXPECT_EQ(direct, probability);
  }
}

TEST_P(RandomPdbProperty, ConditioningIsIdempotentAndConsistent) {
  Pcg32 rng(2000 + GetParam());
  rel::Schema schema({{"S", 1}});
  pdb::FinitePdb<Rational> input =
      testing_util::RandomRationalPdb(schema, 6, 4, 0.4, 48, &rng);
  logic::Formula phi =
      logic::ParseSentence("exists x. S(x)", schema).value();
  auto conditioned = pdb::Condition(input, phi);
  if (!conditioned.ok()) return;  // event had probability 0: fine
  // Conditioning again on the same event changes nothing.
  auto twice = pdb::Condition(conditioned.value(), phi);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(conditioned.value(), twice.value());
  // Bayes consistency: P(D | φ) · P(φ) = P(D) for satisfying worlds.
  Rational mass = pdb::EventProbability(input, phi).value();
  for (const auto& [world, probability] : conditioned.value().worlds()) {
    EXPECT_EQ(probability * mass, input.Probability(world));
  }
}

TEST_P(RandomPdbProperty, TotalVariationIsAMetricOnRandomTriples) {
  Pcg32 rng(3000 + GetParam());
  rel::Schema schema({{"S", 1}});
  pdb::FinitePdb<double> a = testing_util::ToDoublePdb(
      testing_util::RandomRationalPdb(schema, 4, 3, 0.4, 24, &rng));
  pdb::FinitePdb<double> b = testing_util::ToDoublePdb(
      testing_util::RandomRationalPdb(schema, 4, 3, 0.4, 24, &rng));
  pdb::FinitePdb<double> c = testing_util::ToDoublePdb(
      testing_util::RandomRationalPdb(schema, 4, 3, 0.4, 24, &rng));
  double ab = pdb::TotalVariationDistance(a, b);
  double bc = pdb::TotalVariationDistance(b, c);
  double ac = pdb::TotalVariationDistance(a, c);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0 + 1e-12);
  EXPECT_NEAR(ab, pdb::TotalVariationDistance(b, a), 1e-12);
  EXPECT_LE(ac, ab + bc + 1e-12);
  EXPECT_DOUBLE_EQ(pdb::TotalVariationDistance(a, a), 0.0);
}

TEST_P(RandomPdbProperty, TiExpansionRoundTripsMarginals) {
  Pcg32 rng(4000 + GetParam());
  rel::Schema schema({{"R", 2}});
  pdb::TiPdb<Rational> ti =
      testing_util::RandomRationalTi(schema, 5, 3, 16, &rng);
  pdb::FinitePdb<Rational> expanded = ti.Expand();
  EXPECT_TRUE(expanded.IsTupleIndependent());
  for (const auto& [fact, marginal] : ti.facts()) {
    EXPECT_EQ(expanded.Marginal(fact), marginal);
  }
  // World probabilities factorize exactly.
  for (const auto& [world, probability] : expanded.worlds()) {
    EXPECT_EQ(ti.WorldProbability(world), probability);
  }
}

TEST_P(RandomPdbProperty, FiniteCompletenessAlwaysExact) {
  Pcg32 rng(5000 + GetParam());
  rel::Schema schema({{"S", 1}});
  pdb::FinitePdb<Rational> input =
      testing_util::RandomRationalPdb(schema, 3 + GetParam() % 4, 3, 0.4,
                                      60, &rng);
  auto built = core::BuildFiniteCompleteness(input);
  ASSERT_TRUE(built.ok());
  auto tv = core::VerifyFiniteCompleteness(input, built.value());
  ASSERT_TRUE(tv.ok());
  EXPECT_DOUBLE_EQ(tv.value(), 0.0);
}

TEST_P(RandomPdbProperty, SamplerMatchesDistribution) {
  Pcg32 rng(6000 + GetParam());
  rel::Schema schema({{"S", 1}});
  pdb::FinitePdb<double> input = testing_util::ToDoublePdb(
      testing_util::RandomRationalPdb(schema, 5, 3, 0.4, 20, &rng));
  pdb::EmpiricalDistribution empirical = pdb::Accumulate(
      [&] { return pdb::SampleWorld(input, &rng); }, 20000);
  EXPECT_LT(empirical.TvDistance(input), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPdbProperty,
                         ::testing::Range(0, 8));

class MomentLawProperty : public ::testing::TestWithParam<int> {};

TEST_P(MomentLawProperty, JensenOrderingOfMoments) {
  // E[X]^2 <= E[X^2] and E[X^2]^{3/2} <= ... spot-check the first two
  // via Cauchy-Schwarz on random TI size distributions.
  Pcg32 rng(7000 + GetParam());
  rel::Schema schema({{"S", 1}});
  pdb::TiPdb<Rational> exact =
      testing_util::RandomRationalTi(schema, 6, 8, 12, &rng);
  pdb::TiPdb<double>::FactList facts;
  for (const auto& [fact, marginal] : exact.facts()) {
    facts.emplace_back(fact, marginal.ToDouble());
  }
  pdb::TiPdb<double> ti =
      pdb::TiPdb<double>::CreateOrDie(schema, std::move(facts));
  double m1 = ti.SizeMoment(1);
  double m2 = ti.SizeMoment(2);
  double m3 = ti.SizeMoment(3);
  EXPECT_LE(m1 * m1, m2 + 1e-12);
  EXPECT_LE(m2 * m2, m1 * m3 + 1e-12);  // Cauchy-Schwarz on X^{1/2}·X^{3/2}
}

INSTANTIATE_TEST_SUITE_P(Seeds, MomentLawProperty,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace ipdb
