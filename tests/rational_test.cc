#include "math/rational.h"

#include <gtest/gtest.h>

namespace ipdb {
namespace math {
namespace {

TEST(RationalTest, CanonicalForm) {
  Rational r(BigInt(6), BigInt(-8));
  EXPECT_EQ(r.ToString(), "-3/4");
  EXPECT_EQ(Rational(BigInt(0), BigInt(7)).ToString(), "0");
  EXPECT_EQ(Rational(BigInt(10), BigInt(5)).ToString(), "2");
}

TEST(RationalTest, Arithmetic) {
  Rational half = Rational::Ratio(1, 2);
  Rational third = Rational::Ratio(1, 3);
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half / third).ToString(), "3/2");
  EXPECT_EQ((-half).ToString(), "-1/2");
  EXPECT_EQ(half.Abs(), (-half).Abs());
}

TEST(RationalTest, TelescopingSumIsExact) {
  // Σ_{i=1..n} 1/(i(i+1)) = n/(n+1), exactly.
  Rational total;
  const int n = 50;
  for (int i = 1; i <= n; ++i) {
    total += Rational::Ratio(1, static_cast<int64_t>(i) * (i + 1));
  }
  EXPECT_EQ(total, Rational::Ratio(n, n + 1));
}

TEST(RationalTest, Pow) {
  Rational half = Rational::Ratio(1, 2);
  EXPECT_EQ(half.Pow(10).ToString(), "1/1024");
  EXPECT_EQ(half.Pow(0).ToString(), "1");
  EXPECT_EQ(half.Pow(-3).ToString(), "8");
  EXPECT_EQ(Rational::Ratio(-2, 3).Pow(2).ToString(), "4/9");
  EXPECT_EQ(Rational::Ratio(-2, 3).Pow(3).ToString(), "-8/27");
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational::Ratio(1, 3), Rational::Ratio(1, 2));
  EXPECT_LT(Rational::Ratio(-1, 2), Rational::Ratio(-1, 3));
  EXPECT_LE(Rational::Ratio(2, 4), Rational::Ratio(1, 2));
  EXPECT_GT(Rational(1), Rational::Ratio(999, 1000));
}

TEST(RationalTest, FromString) {
  EXPECT_EQ(Rational::FromString("3/9").value().ToString(), "1/3");
  EXPECT_EQ(Rational::FromString("-4").value().ToString(), "-4");
  EXPECT_EQ(Rational::FromString("8/-6").value().ToString(), "-4/3");
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("a/b").ok());
}

TEST(RationalTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational::Ratio(1, 2).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational::Ratio(-3, 4).ToDouble(), -0.75);
  EXPECT_NEAR(Rational::Ratio(1, 3).ToDouble(), 1.0 / 3.0, 1e-15);
  // Huge numerator/denominator still produce an accurate quotient.
  Rational huge(BigInt(2).Pow(600) + BigInt(1), BigInt(2).Pow(601));
  EXPECT_NEAR(huge.ToDouble(), 0.5, 1e-12);
}

TEST(RationalTest, GeometricSeriesClosedForm) {
  // Σ_{i=0..n-1} (1/2)^i = 2 - 2^{1-n}, exactly.
  Rational total;
  Rational term(1);
  Rational half = Rational::Ratio(1, 2);
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    total += term;
    term *= half;
  }
  EXPECT_EQ(total, Rational(2) - Rational::Ratio(1, int64_t{1} << 29));
}

}  // namespace
}  // namespace math
}  // namespace ipdb
