#include <gtest/gtest.h>

#include "relational/fact.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace ipdb {
namespace rel {
namespace {

TEST(ValueTest, KindsAndPayloads) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_EQ(Value::Int(3).int_value(), 3);
  EXPECT_TRUE(Value::Symbol("a").is_symbol());
  EXPECT_EQ(Value::Symbol("a").symbol(), "a");
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value::Null(), Value::Int(-100));
  EXPECT_LT(Value::Int(5), Value::Symbol(""));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::Symbol("a"), Value::Symbol("b"));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, EqualityAndHash) {
  EXPECT_EQ(Value::Int(7), Value::Int(7));
  EXPECT_NE(Value::Int(7), Value::Int(8));
  EXPECT_NE(Value::Int(0), Value::Null());
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_NE(Value::Int(7).Hash(), Value::Symbol("7").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "_|_");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Symbol("x").ToString(), "x");
}

TEST(SchemaTest, AddAndLookup) {
  Schema schema;
  auto r = schema.AddRelation("R", 2);
  ASSERT_TRUE(r.ok());
  auto s = schema.AddRelation("S", 0);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(schema.num_relations(), 2);
  EXPECT_EQ(schema.arity(r.value()), 2);
  EXPECT_EQ(schema.relation_name(s.value()), "S");
  EXPECT_EQ(schema.max_arity(), 2);
  EXPECT_TRUE(schema.FindRelation("R").ok());
  EXPECT_FALSE(schema.FindRelation("T").ok());
}

TEST(SchemaTest, RejectsBadInput) {
  Schema schema;
  EXPECT_FALSE(schema.AddRelation("", 1).ok());
  EXPECT_FALSE(schema.AddRelation("R", -1).ok());
  ASSERT_TRUE(schema.AddRelation("R", 1).ok());
  EXPECT_FALSE(schema.AddRelation("R", 2).ok());
}

TEST(SchemaTest, InitializerList) {
  Schema schema({{"R", 2}, {"S", 1}});
  EXPECT_EQ(schema.ToString(), "{R/2, S/1}");
}

TEST(FactTest, SchemaMatching) {
  Schema schema({{"R", 2}});
  Fact good(0, {Value::Int(1), Value::Int(2)});
  Fact bad_arity(0, {Value::Int(1)});
  Fact bad_relation(5, {Value::Int(1)});
  EXPECT_TRUE(good.MatchesSchema(schema));
  EXPECT_FALSE(bad_arity.MatchesSchema(schema));
  EXPECT_FALSE(bad_relation.MatchesSchema(schema));
  EXPECT_EQ(good.ToString(schema), "R(1, 2)");
}

TEST(FactTest, Ordering) {
  Fact a(0, {Value::Int(1)});
  Fact b(0, {Value::Int(2)});
  Fact c(1, {Value::Int(0)});
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, Fact(0, {Value::Int(1)}));
}

TEST(InstanceTest, CanonicalForm) {
  Fact a(0, {Value::Int(1)});
  Fact b(0, {Value::Int(2)});
  Instance x({b, a, a});
  EXPECT_EQ(x.size(), 2);
  EXPECT_EQ(x, Instance({a, b}));
  EXPECT_TRUE(x.Contains(a));
  EXPECT_FALSE(x.Contains(Fact(0, {Value::Int(3)})));
}

TEST(InstanceTest, InsertEraseSubset) {
  Fact a(0, {Value::Int(1)});
  Fact b(0, {Value::Int(2)});
  Instance x;
  x.Insert(a);
  x.Insert(a);
  EXPECT_EQ(x.size(), 1);
  x.Insert(b);
  EXPECT_TRUE(Instance({a}).IsSubsetOf(x));
  EXPECT_FALSE(x.IsSubsetOf(Instance({a})));
  x.Erase(a);
  EXPECT_EQ(x, Instance({b}));
  x.Erase(a);  // no-op
  EXPECT_EQ(x.size(), 1);
}

TEST(InstanceTest, SetOperations) {
  Fact a(0, {Value::Int(1)});
  Fact b(0, {Value::Int(2)});
  Fact c(0, {Value::Int(3)});
  Instance x({a, b});
  Instance y({b, c});
  EXPECT_EQ(Instance::Union(x, y), Instance({a, b, c}));
  EXPECT_EQ(Instance::Intersection(x, y), Instance({b}));
  EXPECT_EQ(Instance::Difference(x, y), Instance({a}));
}

TEST(InstanceTest, ActiveDomain) {
  Schema schema({{"R", 2}});
  Instance x({Fact(0, {Value::Int(2), Value::Int(1)}),
              Fact(0, {Value::Int(1), Value::Symbol("a")})});
  std::vector<Value> adom = x.ActiveDomain();
  ASSERT_EQ(adom.size(), 3u);
  EXPECT_EQ(adom[0], Value::Int(1));
  EXPECT_EQ(adom[1], Value::Int(2));
  EXPECT_EQ(adom[2], Value::Symbol("a"));
}

TEST(InstanceTest, FactsOfRelation) {
  Instance x({Fact(0, {Value::Int(1)}), Fact(1, {Value::Int(2)}),
              Fact(0, {Value::Int(3)})});
  EXPECT_EQ(x.FactsOf(0).size(), 2u);
  EXPECT_EQ(x.FactsOf(1).size(), 1u);
  EXPECT_EQ(x.FactsOf(2).size(), 0u);
}

TEST(InstanceTest, OrderingAndHash) {
  Fact a(0, {Value::Int(1)});
  Fact b(0, {Value::Int(2)});
  EXPECT_LT(Instance({a}), Instance({b}));
  EXPECT_LT(Instance(), Instance({a}));
  EXPECT_EQ(Instance({a, b}).Hash(), Instance({b, a}).Hash());
}

}  // namespace
}  // namespace rel
}  // namespace ipdb
