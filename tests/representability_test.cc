#include "core/representability.h"

#include <gtest/gtest.h>

#include "core/idb.h"
#include "core/paper_examples.h"
#include "logic/parser.h"
#include "pdb/pushforward.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace core {
namespace {

TEST(RepresentabilityTest, Example35IsOut) {
  pdb::CountablePdb ex35 = Example35();
  RepresentabilityReport report =
      DecideRepresentability(ex35, nullptr, 2, 0);
  EXPECT_EQ(report.verdict, Verdict::kNotInFoTi);
  EXPECT_NE(report.explanation.find("Proposition 3.4"), std::string::npos);
}

TEST(RepresentabilityTest, Example55IsIn) {
  pdb::CountablePdb ex55 = Example55();
  CriterionFamily criterion = Example55Criterion();
  RepresentabilityReport report =
      DecideRepresentability(ex55, &criterion, 3, 3);
  EXPECT_EQ(report.verdict, Verdict::kInFoTi);
  EXPECT_EQ(report.criterion.witness_c, 1);
}

TEST(RepresentabilityTest, Example39IsInTheGap) {
  // The pipeline alone cannot decide Example 3.9 — the honest outcome.
  pdb::CountablePdb ex39 = Example39();
  RepresentabilityReport report =
      DecideRepresentability(ex39, nullptr, 4, 0);
  EXPECT_EQ(report.verdict, Verdict::kUndecided);
  EXPECT_TRUE(report.moments.all_finite_certified);
}

TEST(RepresentabilityTest, ReportRendersAllParts) {
  pdb::CountablePdb ex35 = Example35();
  RepresentabilityReport report =
      DecideRepresentability(ex35, nullptr, 2, 0);
  std::string text = report.ToString();
  EXPECT_NE(text.find("NOT in FO(TI)"), std::string::npos);
  EXPECT_NE(text.find("E[|D|^2]"), std::string::npos);
}

TEST(IdbViewCommutationTest, Observation62OnRandomPdbs) {
  // V(IDB(D)) = IDB(V(D)), exactly as Observation 6.2 states.
  Pcg32 rng(701);
  rel::Schema in({{"R", 2}, {"S", 1}});
  rel::Schema out({{"T", 1}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x"};
  def.body =
      logic::ParseFormula("exists y. R(x, y) & S(y)", in).value();
  logic::FoView view = logic::FoView::Create(in, out, {def}).value();
  for (int trial = 0; trial < 8; ++trial) {
    pdb::FinitePdb<math::Rational> random_pdb =
        testing_util::RandomRationalPdb(in, 5, 3, 0.3, 30, &rng);
    Idb direct = InducedIdb(pdb::PushforwardOrDie(random_pdb, view));
    auto image = ApplyViewToIdb(InducedIdb(random_pdb), view);
    ASSERT_TRUE(image.ok());
    EXPECT_EQ(direct, image.value()) << trial;
  }
}

}  // namespace
}  // namespace core
}  // namespace ipdb
