#include "pqe/safe_plan.h"

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "pqe/wmc.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace pqe {
namespace {

rel::Schema Schema3() { return rel::Schema({{"R", 1}, {"S", 2}, {"T", 1}}); }

pdb::TiPdb<double> RandomTi(const rel::Schema& schema, int universe,
                            Pcg32* rng, int facts = 8) {
  pdb::TiPdb<math::Rational> exact =
      testing_util::RandomRationalTi(schema, facts, universe, 10, rng);
  pdb::TiPdb<double>::FactList list;
  for (const auto& [fact, marginal] : exact.facts()) {
    list.emplace_back(fact, marginal.ToDouble());
  }
  return pdb::TiPdb<double>::CreateOrDie(schema, std::move(list));
}

TEST(SafePlanTest, ParseAndClassify) {
  rel::Schema schema = Schema3();
  auto h1 = logic::ParseSentence("exists x y. R(x) & S(x, y)", schema);
  auto parsed = ParseSelfJoinFreeCq(h1.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(IsHierarchical(parsed.value()));

  // The canonical non-hierarchical (#P-hard) query H0:
  // ∃x∃y R(x) ∧ S(x,y) ∧ T(y).
  auto h0 = logic::ParseSentence("exists x y. R(x) & S(x, y) & T(y)",
                                 schema);
  auto parsed0 = ParseSelfJoinFreeCq(h0.value());
  ASSERT_TRUE(parsed0.ok());
  EXPECT_FALSE(IsHierarchical(parsed0.value()));

  // Self-joins rejected.
  rel::Schema schema2({{"E", 2}});
  auto sj =
      logic::ParseSentence("exists x y z. E(x, y) & E(y, z)", schema2);
  EXPECT_FALSE(ParseSelfJoinFreeCq(sj.value()).ok());

  // Non-CQ shapes rejected.
  auto neg = logic::ParseSentence("!(exists x. R(x))", schema);
  EXPECT_FALSE(ParseSelfJoinFreeCq(neg.value()).ok());
}

TEST(SafePlanTest, GroundQuery) {
  rel::Schema schema = Schema3();
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {{rel::Fact(0, {rel::Value::Int(1)}), 0.4},
               {rel::Fact(2, {rel::Value::Int(2)}), 0.5}});
  auto p = SafeQueryProbability(
      ti, logic::ParseSentence("R(1) & T(2)", schema).value());
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value(), 0.2);
  // Missing fact: probability 0.
  p = SafeQueryProbability(
      ti, logic::ParseSentence("R(9)", schema).value());
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value(), 0.0);
}

TEST(SafePlanTest, IndependentProjectHandComputed) {
  // Pr(∃x R(x)) = 1 − Π (1 − p_a).
  rel::Schema schema = Schema3();
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {{rel::Fact(0, {rel::Value::Int(1)}), 0.5},
               {rel::Fact(0, {rel::Value::Int(2)}), 0.25}});
  SafePlanStats stats;
  auto p = SafeQueryProbability(
      ti, logic::ParseSentence("exists x. R(x)", schema).value(), &stats);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value(), 1.0 - 0.5 * 0.75);
  EXPECT_EQ(stats.independent_projects, 1);
}

TEST(SafePlanTest, NonHierarchicalRejected) {
  rel::Schema schema = Schema3();
  Pcg32 rng(331);
  pdb::TiPdb<double> ti = RandomTi(schema, 3, &rng);
  auto p = SafeQueryProbability(
      ti,
      logic::ParseSentence("exists x y. R(x) & S(x, y) & T(y)", schema)
          .value());
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kFailedPrecondition);
}

struct SafeCase {
  std::string name;
  std::string sentence;
};

class SafePlanAgreement : public ::testing::TestWithParam<SafeCase> {};

TEST_P(SafePlanAgreement, MatchesWmcOnRandomTis) {
  rel::Schema schema = Schema3();
  logic::Formula sentence =
      logic::ParseSentence(GetParam().sentence, schema).value();
  Pcg32 rng(347);
  for (int trial = 0; trial < 8; ++trial) {
    pdb::TiPdb<double> ti = RandomTi(schema, 3, &rng, 9);
    auto safe = SafeQueryProbability(ti, sentence);
    ASSERT_TRUE(safe.ok()) << safe.status().ToString();
    auto wmc = QueryProbability(ti, sentence);
    ASSERT_TRUE(wmc.ok());
    EXPECT_NEAR(safe.value(), wmc.value(), 1e-10)
        << GetParam().sentence << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, SafePlanAgreement,
    ::testing::Values(
        SafeCase{"ExistsR", "exists x. R(x)"},
        SafeCase{"ExistsS", "exists x y. S(x, y)"},
        SafeCase{"RJoinS", "exists x y. R(x) & S(x, y)"},
        SafeCase{"SAndT", "(exists x y. S(x, y)) & (exists z. T(z))"},
        SafeCase{"Rooted", "exists x. R(x) & T(x) & (exists y. S(x, y))"},
        SafeCase{"GroundMixed", "exists x. S(1, x)"},
        SafeCase{"RepeatedVarAtom", "exists x. S(x, x)"}),
    [](const ::testing::TestParamInfo<SafeCase>& info) {
      return info.param.name;
    });

TEST(SafePlanTest, StatsReflectPlanShape) {
  rel::Schema schema = Schema3();
  Pcg32 rng(353);
  pdb::TiPdb<double> ti = RandomTi(schema, 3, &rng, 10);
  SafePlanStats stats;
  auto p = SafeQueryProbability(
      ti,
      logic::ParseSentence("(exists x y. S(x, y)) & (exists z. T(z))",
                           schema)
          .value(),
      &stats);
  ASSERT_TRUE(p.ok());
  EXPECT_GE(stats.independent_joins, 1);
  EXPECT_GE(stats.independent_projects, 2);
  EXPECT_GE(stats.ground_lookups, 1);
}

}  // namespace
}  // namespace pqe
}  // namespace ipdb
