#include "pqe/safe_plan.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>

#include "logic/parser.h"
#include "math/rational.h"
#include "pqe/wmc.h"
#include "test_util.h"
#include "util/budget.h"
#include "util/random.h"

namespace ipdb {
namespace pqe {
namespace {

rel::Schema Schema3() { return rel::Schema({{"R", 1}, {"S", 2}, {"T", 1}}); }

pdb::TiPdb<double> RandomTi(const rel::Schema& schema, int universe,
                            Pcg32* rng, int facts = 8) {
  pdb::TiPdb<math::Rational> exact =
      testing_util::RandomRationalTi(schema, facts, universe, 10, rng);
  pdb::TiPdb<double>::FactList list;
  for (const auto& [fact, marginal] : exact.facts()) {
    list.emplace_back(fact, marginal.ToDouble());
  }
  return pdb::TiPdb<double>::CreateOrDie(schema, std::move(list));
}

TEST(SafePlanTest, ParseAndClassify) {
  rel::Schema schema = Schema3();
  auto h1 = logic::ParseSentence("exists x y. R(x) & S(x, y)", schema);
  auto parsed = ParseSelfJoinFreeCq(h1.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(IsHierarchical(parsed.value()));

  // The canonical non-hierarchical (#P-hard) query H0:
  // ∃x∃y R(x) ∧ S(x,y) ∧ T(y).
  auto h0 = logic::ParseSentence("exists x y. R(x) & S(x, y) & T(y)",
                                 schema);
  auto parsed0 = ParseSelfJoinFreeCq(h0.value());
  ASSERT_TRUE(parsed0.ok());
  EXPECT_FALSE(IsHierarchical(parsed0.value()));

  // Self-joins rejected.
  rel::Schema schema2({{"E", 2}});
  auto sj =
      logic::ParseSentence("exists x y z. E(x, y) & E(y, z)", schema2);
  EXPECT_FALSE(ParseSelfJoinFreeCq(sj.value()).ok());

  // Non-CQ shapes rejected.
  auto neg = logic::ParseSentence("!(exists x. R(x))", schema);
  EXPECT_FALSE(ParseSelfJoinFreeCq(neg.value()).ok());
}

TEST(SafePlanTest, GroundQuery) {
  rel::Schema schema = Schema3();
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {{rel::Fact(0, {rel::Value::Int(1)}), 0.4},
               {rel::Fact(2, {rel::Value::Int(2)}), 0.5}});
  auto p = SafeQueryProbability(
      ti, logic::ParseSentence("R(1) & T(2)", schema).value());
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value(), 0.2);
  // Missing fact: probability 0.
  p = SafeQueryProbability(
      ti, logic::ParseSentence("R(9)", schema).value());
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value(), 0.0);
}

TEST(SafePlanTest, IndependentProjectHandComputed) {
  // Pr(∃x R(x)) = 1 − Π (1 − p_a).
  rel::Schema schema = Schema3();
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {{rel::Fact(0, {rel::Value::Int(1)}), 0.5},
               {rel::Fact(0, {rel::Value::Int(2)}), 0.25}});
  SafePlanStats stats;
  auto p = SafeQueryProbability(
      ti, logic::ParseSentence("exists x. R(x)", schema).value(), &stats);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p.value(), 1.0 - 0.5 * 0.75);
  EXPECT_EQ(stats.independent_projects, 1);
}

TEST(SafePlanTest, NonHierarchicalRejected) {
  rel::Schema schema = Schema3();
  Pcg32 rng(331);
  pdb::TiPdb<double> ti = RandomTi(schema, 3, &rng);
  auto p = SafeQueryProbability(
      ti,
      logic::ParseSentence("exists x y. R(x) & S(x, y) & T(y)", schema)
          .value());
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kFailedPrecondition);
}

struct SafeCase {
  std::string name;
  std::string sentence;
};

class SafePlanAgreement : public ::testing::TestWithParam<SafeCase> {};

TEST_P(SafePlanAgreement, MatchesWmcOnRandomTis) {
  rel::Schema schema = Schema3();
  logic::Formula sentence =
      logic::ParseSentence(GetParam().sentence, schema).value();
  Pcg32 rng(347);
  // Force the circuit rung on the WMC side: the default ladder would
  // answer safe queries via the very plan under test.
  QueryOptions circuit_only;
  circuit_only.lifted = false;
  for (int trial = 0; trial < 8; ++trial) {
    pdb::TiPdb<double> ti = RandomTi(schema, 3, &rng, 9);
    auto safe = SafeQueryProbability(ti, sentence);
    ASSERT_TRUE(safe.ok()) << safe.status().ToString();
    auto wmc = QueryProbability(ti, sentence, circuit_only);
    ASSERT_TRUE(wmc.ok());
    EXPECT_NEAR(safe.value(), wmc.value().probability, 1e-10)
        << GetParam().sentence << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, SafePlanAgreement,
    ::testing::Values(
        SafeCase{"ExistsR", "exists x. R(x)"},
        SafeCase{"ExistsS", "exists x y. S(x, y)"},
        SafeCase{"RJoinS", "exists x y. R(x) & S(x, y)"},
        SafeCase{"SAndT", "(exists x y. S(x, y)) & (exists z. T(z))"},
        SafeCase{"Rooted", "exists x. R(x) & T(x) & (exists y. S(x, y))"},
        SafeCase{"GroundMixed", "exists x. S(1, x)"},
        SafeCase{"RepeatedVarAtom", "exists x. S(x, x)"},
        SafeCase{"Shadowed", "(exists x. R(x)) & (exists x y. S(x, y))"},
        SafeCase{"NestedShadow", "exists x. R(x) & (exists x. T(x))"},
        SafeCase{"Vacuous", "exists x y. R(x)"}),
    [](const ::testing::TestParamInfo<SafeCase>& info) {
      return info.param.name;
    });

TEST(SafePlanTest, ShadowedQuantifiersAreIndependent) {
  // Regression: ∃x R(x) ∧ ∃x T(x) used to alias the two quantifier
  // scopes by name, wrongly merging independent components and
  // computing P(∃x (R(x) ∧ T(x))). Hand-computed witness:
  //   P(∃x R(x)) = 1 − (1 − 0.5)(1 − 0.25) = 0.625
  //   P(∃x T(x)) = 0.5
  //   independent join: 0.625 · 0.5 = 0.3125
  // whereas the aliased query gives 1 − (1 − 0.5·0.5) = 0.25.
  rel::Schema schema = Schema3();
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      schema, {{rel::Fact(0, {rel::Value::Int(1)}), 0.5},
               {rel::Fact(0, {rel::Value::Int(2)}), 0.25},
               {rel::Fact(2, {rel::Value::Int(1)}), 0.5}});
  logic::Formula sentence =
      logic::ParseSentence("(exists x. R(x)) & (exists x. T(x))", schema)
          .value();
  auto parsed = ParseSelfJoinFreeCq(sentence);
  ASSERT_TRUE(parsed.ok());
  // Alpha-renaming keeps the two quantifiers distinct.
  ASSERT_EQ(parsed.value().variables.size(), 2u);
  EXPECT_NE(parsed.value().variables[0], parsed.value().variables[1]);

  SafePlanStats stats;
  auto p = SafeQueryProbability(ti, sentence, &stats);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_DOUBLE_EQ(p.value(), 0.3125);
  EXPECT_GE(stats.independent_joins, 1);

  auto brute = QueryProbabilityBruteForce(ti, sentence);
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(p.value(), brute.value(), 1e-12);

  // Nested shadowing: ∃x (R(x) ∧ ∃x T(x)) means the same query.
  auto nested = SafeQueryProbability(
      ti,
      logic::ParseSentence("exists x. R(x) & (exists x. T(x))", schema)
          .value());
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  EXPECT_DOUBLE_EQ(nested.value(), 0.3125);
}

TEST(SafePlanTest, StableComplementAccumulation) {
  // Π(1 − 2⁻⁴⁰) over 512 facts: the naive running complement product
  // loses ~4 digits to cancellation (each 1 − p rounds near 1); the
  // log1p/expm1 accumulation keeps full double precision. Property-test
  // the double semiring against the exact rational one.
  rel::Schema schema = Schema3();
  const int64_t denom = int64_t{1} << 40;
  pdb::TiPdb<math::Rational>::FactList exact_facts;
  pdb::TiPdb<double>::FactList double_facts;
  for (int i = 0; i < 512; ++i) {
    rel::Fact fact(0, {rel::Value::Int(i)});
    exact_facts.emplace_back(fact, math::Rational::Ratio(1, denom));
    double_facts.emplace_back(fact, std::ldexp(1.0, -40));
  }
  pdb::TiPdb<math::Rational> exact_ti =
      pdb::TiPdb<math::Rational>::CreateOrDie(schema,
                                              std::move(exact_facts));
  pdb::TiPdb<double> ti =
      pdb::TiPdb<double>::CreateOrDie(schema, std::move(double_facts));
  logic::Formula sentence =
      logic::ParseSentence("exists x. R(x)", schema).value();

  auto plan = LiftedPlan::Compile(sentence);
  ASSERT_TRUE(plan.ok());
  auto exact = plan.value().Evaluate(exact_ti);
  ASSERT_TRUE(exact.ok());
  auto approx = plan.value().Evaluate(ti);
  ASSERT_TRUE(approx.ok());
  const double truth = exact.value().ToDouble();
  ASSERT_GT(truth, 0.0);
  // ~4.66e-10: far below the 1e-4 relative error of the naive product.
  EXPECT_LT(std::abs(approx.value() - truth) / truth, 1e-12);
}

TEST(SafePlanTest, PlanIrShapeAndToString) {
  rel::Schema schema = Schema3();
  auto plan = LiftedPlan::Compile(
      logic::ParseSentence("exists x. R(x) & (exists y. S(x, y))", schema)
          .value());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().depth(), 2);
  int joins = 0, projects = 0, lookups = 0;
  for (const PlanNode& node : plan.value().nodes()) {
    if (node.op == PlanOp::kIndependentJoin) ++joins;
    if (node.op == PlanOp::kIndependentProject) ++projects;
    if (node.op == PlanOp::kGroundLookup) ++lookups;
  }
  EXPECT_EQ(joins, 1);
  EXPECT_EQ(projects, 2);
  EXPECT_EQ(lookups, 2);
  EXPECT_EQ(plan.value().ToString(schema),
            "project[x](join(lookup(R(x)), project[y](lookup(S(x, y)))))");
}

TEST(SafePlanTest, IntervalSemiringMatchesDouble) {
  rel::Schema schema = Schema3();
  Pcg32 rng(359);
  pdb::TiPdb<double> ti = RandomTi(schema, 3, &rng, 10);
  logic::Formula sentence =
      logic::ParseSentence("exists x y. R(x) & S(x, y)", schema).value();
  auto plan = LiftedPlan::Compile(sentence);
  ASSERT_TRUE(plan.ok());
  auto enclosure = plan.value().EvaluateInterval(ti);
  ASSERT_TRUE(enclosure.ok());
  auto point = plan.value().Evaluate(ti);
  ASSERT_TRUE(point.ok());
  EXPECT_NEAR(enclosure.value().midpoint(), point.value(), 1e-9);
  EXPECT_LT(enclosure.value().width(), 1e-9);
}

TEST(SafePlanTest, BudgetExhaustionUnwinds) {
  rel::Schema schema = Schema3();
  Pcg32 rng(367);
  pdb::TiPdb<double> ti = RandomTi(schema, 3, &rng, 12);
  logic::Formula sentence =
      logic::ParseSentence("exists x y. R(x) & S(x, y)", schema).value();
  auto plan = LiftedPlan::Compile(sentence);
  ASSERT_TRUE(plan.ok());

  // Expired deadline.
  ExecutionBudget expired;
  expired.deadline =
      ExecutionBudget::Clock::now() - std::chrono::seconds(1);
  LiftedOptions options;
  options.budget = &expired;
  auto p = plan.value().Evaluate(ti, options);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kDeadlineExceeded);

  // Cancellation.
  CancelToken cancel;
  cancel.Cancel();
  ExecutionBudget cancelled;
  cancelled.cancel = &cancel;
  options.budget = &cancelled;
  p = plan.value().Evaluate(ti, options);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kCancelled);

  // The plan's static project-nesting depth against the recursion cap.
  ExecutionBudget shallow;
  shallow.max_recursion_depth = 1;
  options.budget = &shallow;
  p = plan.value().Evaluate(ti, options);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kResourceExhausted);
}

TEST(SafePlanTest, LadderReportsLiftedAnswers) {
  rel::Schema schema = Schema3();
  Pcg32 rng(373);
  pdb::TiPdb<double> ti = RandomTi(schema, 3, &rng, 9);
  logic::Formula safe =
      logic::ParseSentence("exists x y. R(x) & S(x, y)", schema).value();

  // Default ladder: the safe query is answered on the lifted rung.
  auto answer = QueryProbability(ti, safe, QueryOptions{});
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer.value().lifted);
  EXPECT_EQ(answer.value().quality, AnswerQuality::kExact);
  auto brute = QueryProbabilityBruteForce(ti, safe);
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(answer.value().probability, brute.value(), 1e-10);

  // Opting out forces the circuit rung; the probability agrees.
  QueryOptions circuit_only;
  circuit_only.lifted = false;
  auto circuit = QueryProbability(ti, safe, circuit_only);
  ASSERT_TRUE(circuit.ok());
  EXPECT_FALSE(circuit.value().lifted);
  EXPECT_NEAR(circuit.value().probability, answer.value().probability,
              1e-10);

  // A non-hierarchical query falls through to the circuit rung.
  logic::Formula h0 =
      logic::ParseSentence("exists x y. R(x) & S(x, y) & T(y)", schema)
          .value();
  auto hard = QueryProbability(ti, h0, QueryOptions{});
  ASSERT_TRUE(hard.ok());
  EXPECT_FALSE(hard.value().lifted);
  EXPECT_EQ(hard.value().quality, AnswerQuality::kExact);

  // A budget trip inside the lifted rung skips the circuit rung and
  // degrades straight to the (equally doomed) fallback: kFailed.
  CancelToken cancel;
  cancel.Cancel();
  ExecutionBudget cancelled;
  cancelled.cancel = &cancel;
  QueryOptions governed;
  governed.budget = &cancelled;
  auto failed = QueryProbability(ti, safe, governed);
  ASSERT_TRUE(failed.ok());
  EXPECT_EQ(failed.value().quality, AnswerQuality::kFailed);
  EXPECT_EQ(failed.value().exact_error.code(), StatusCode::kCancelled);
}

TEST(SafePlanTest, StatsReflectPlanShape) {
  rel::Schema schema = Schema3();
  Pcg32 rng(353);
  pdb::TiPdb<double> ti = RandomTi(schema, 3, &rng, 10);
  SafePlanStats stats;
  auto p = SafeQueryProbability(
      ti,
      logic::ParseSentence("(exists x y. S(x, y)) & (exists z. T(z))",
                           schema)
          .value(),
      &stats);
  ASSERT_TRUE(p.ok());
  EXPECT_GE(stats.independent_joins, 1);
  EXPECT_GE(stats.independent_projects, 2);
  EXPECT_GE(stats.ground_lookups, 1);
}

}  // namespace
}  // namespace pqe
}  // namespace ipdb
