#include "core/segment_construction.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/paper_examples.h"
#include "util/random.h"
#include "logic/evaluator.h"
#include "pdb/conditioning.h"
#include "pdb/pushforward.h"

namespace ipdb {
namespace core {
namespace {

rel::Schema UnarySchema() { return rel::Schema({{"U", 1}}); }

rel::Instance World(std::vector<int64_t> values) {
  std::vector<rel::Fact> facts;
  for (int64_t v : values) {
    facts.emplace_back(0, std::vector<rel::Value>{rel::Value::Int(v)});
  }
  return rel::Instance(std::move(facts));
}

TEST(SegmentConstructionTest, TwoWorldsSingleSegment) {
  rel::Schema schema = UnarySchema();
  pdb::FinitePdb<double> input = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{World({1}), 0.25}, {World({2}), 0.75}});
  auto built = BuildSegmentConstruction(input, 1);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built.value().ti.num_facts(), 2);  // one segment per world
  auto tv = VerifySegmentConstruction(input, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_NEAR(tv.value(), 0.0, 1e-12);
}

TEST(SegmentConstructionTest, EmptyWorldIncluded) {
  rel::Schema schema = UnarySchema();
  pdb::FinitePdb<double> input = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{World({}), 0.5}, {World({1}), 0.5}});
  auto built = BuildSegmentConstruction(input, 1);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto tv = VerifySegmentConstruction(input, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_NEAR(tv.value(), 0.0, 1e-12);
}

TEST(SegmentConstructionTest, MultiSegmentChains) {
  // c = 1 with a 3-fact world: a chain of 3 segments with next pointers.
  rel::Schema schema = UnarySchema();
  pdb::FinitePdb<double> input = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{World({1, 2, 3}), 0.5}, {World({7}), 0.5}});
  auto built = BuildSegmentConstruction(input, 1);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built.value().ti.num_facts(), 4);
  auto tv = VerifySegmentConstruction(input, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_NEAR(tv.value(), 0.0, 1e-12);
}

TEST(SegmentConstructionTest, WiderSegmentsC2) {
  // c = 2 packs two facts per segment: the 3-fact world needs 2 segments.
  rel::Schema schema = UnarySchema();
  pdb::FinitePdb<double> input = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{World({1, 2, 3}), 0.25}, {World({4, 5}), 0.75}});
  auto built = BuildSegmentConstruction(input, 2);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built.value().ti.num_facts(), 3);  // 2 + 1 segments
  auto tv = VerifySegmentConstruction(input, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_NEAR(tv.value(), 0.0, 1e-12);
}

TEST(SegmentConstructionTest, MultiRelationSchema) {
  rel::Schema schema({{"A", 1}, {"B", 2}});
  rel::Instance w1({rel::Fact(0, {rel::Value::Int(1)}),
                    rel::Fact(1, {rel::Value::Int(1), rel::Value::Int(2)})});
  rel::Instance w2({rel::Fact(1, {rel::Value::Int(3), rel::Value::Int(3)})});
  pdb::FinitePdb<double> input = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{w1, 0.5}, {w2, 0.5}});
  auto built = BuildSegmentConstruction(input, 2);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto tv = VerifySegmentConstruction(input, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_NEAR(tv.value(), 0.0, 1e-12);
}

TEST(SegmentConstructionTest, BoundedSizeCorollary54) {
  // Corollary 5.4: c = max size makes every world one fact; the marginal
  // sum is bounded by Σ p/(1+p) < 1.
  rel::Schema schema = UnarySchema();
  pdb::FinitePdb<double> input = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{World({1, 2}), 0.2},
               {World({3}), 0.3},
               {World({4, 5}), 0.5}});
  auto built = BuildBoundedSizeConstruction(input);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(built.value().c, 2);
  EXPECT_EQ(built.value().ti.num_facts(), 3);
  EXPECT_LT(built.value().marginal_sum, 1.0);
  auto tv = VerifySegmentConstruction(input, built.value());
  ASSERT_TRUE(tv.ok()) << tv.status().ToString();
  EXPECT_NEAR(tv.value(), 0.0, 1e-12);
}

TEST(SegmentConstructionTest, ConditionSemantics) {
  // The sentence φ holds exactly on "representations": instances
  // containing one complete chain.
  rel::Schema schema = UnarySchema();
  pdb::FinitePdb<double> input = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{World({1, 2}), 0.5}, {World({3}), 0.5}});
  auto built = BuildSegmentConstruction(input, 1);
  ASSERT_TRUE(built.ok());
  const auto& ti = built.value().ti;
  ASSERT_EQ(ti.num_facts(), 3);  // 2-chain + 1-chain

  // Facts: world 0 segments (0,0), (0,1); world 1 segment (1,0).
  rel::Fact w0s0 = ti.facts()[0].first;
  rel::Fact w0s1 = ti.facts()[1].first;
  rel::Fact w1s0 = ti.facts()[2].first;
  const auto& phi = built.value().condition;
  const auto& hat = built.value().hat_schema;

  // Complete chain of world 0: representation.
  EXPECT_TRUE(
      logic::Satisfies(rel::Instance({w0s0, w0s1}), hat, phi));
  // Incomplete chain: not a representation.
  EXPECT_FALSE(logic::Satisfies(rel::Instance({w0s0}), hat, phi));
  // Dangling tail without segment 0: not a representation.
  EXPECT_FALSE(logic::Satisfies(rel::Instance({w0s1}), hat, phi));
  // Two complete chains: not a representation (must be unique).
  EXPECT_FALSE(logic::Satisfies(
      rel::Instance({w0s0, w0s1, w1s0}), hat, phi));
  // Complete chain plus a stray incomplete fact: still a representation.
  EXPECT_TRUE(
      logic::Satisfies(rel::Instance({w1s0, w0s1}), hat, phi));
  // Empty instance: no chain at all.
  EXPECT_FALSE(logic::Satisfies(rel::Instance(), hat, phi));
}

TEST(SegmentConstructionTest, ViewExtractsRepresentedWorld) {
  rel::Schema schema = UnarySchema();
  pdb::FinitePdb<double> input = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{World({1, 2}), 0.5}, {World({3}), 0.5}});
  auto built = BuildSegmentConstruction(input, 1);
  ASSERT_TRUE(built.ok());
  const auto& ti = built.value().ti;
  rel::Fact w0s0 = ti.facts()[0].first;
  rel::Fact w0s1 = ti.facts()[1].first;
  rel::Fact w1s0 = ti.facts()[2].first;
  // Representation of world 0 with a stray fact from world 1's chain —
  // the view must output exactly world 0.
  rel::Instance rep({w0s0, w0s1});
  EXPECT_EQ(built.value().view.ApplyOrDie(rep), World({1, 2}));
  rel::Instance rep_with_stray({w1s0});
  EXPECT_EQ(built.value().view.ApplyOrDie(rep_with_stray), World({3}));
}

TEST(SegmentConstructionTest, CountableFamilyFromExample55) {
  // Lemma 5.1 on the full (infinite) Example 5.5: the segmented-fact
  // family is a well-defined countable TI-PDB — the constructive content
  // of "Example 5.5 is in FO(TI)".
  pdb::CountablePdb ex55 = core::Example55();
  CriterionFamily criterion = Example55Criterion();
  // For c = 1 the ceiling criterion equals the plain criterion.
  auto built = BuildSegmentTiFamily(
      ex55, 1, [tail = criterion.tail_upper](int64_t N) {
        return tail(1, N);
      });
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SumAnalysis well_defined = built.value().CheckWellDefined();
  EXPECT_EQ(well_defined.kind, SumAnalysis::Kind::kConverged)
      << well_defined.ToString();

  // The family's facts follow the chain layout: world i contributes i
  // segments (c = 1), with matching marginals (p/(1+p))^{1/i}.
  int64_t index = 0;
  for (int64_t world = 0; world < 4; ++world) {
    int64_t segments = world + 1;  // |D_i| = i, i = world+1
    double p = ex55.ProbAt(world);
    double expected_q =
        std::pow(p / (1.0 + p), 1.0 / static_cast<double>(segments));
    for (int64_t j = 0; j < segments; ++j, ++index) {
      rel::Fact fact = built.value().FactAt(index);
      EXPECT_EQ(fact.args()[0], rel::Value::Int(world)) << index;
      EXPECT_EQ(fact.args()[1], rel::Value::Int(j)) << index;
      EXPECT_NEAR(built.value().MarginalAt(index), expected_q, 1e-12);
    }
  }

  // Sampled worlds satisfy the finite construction's condition with the
  // paper's probability Z = Π(1 - q_i) > 0 — at minimum, sampling works
  // and never yields a fact outside the schema.
  Pcg32 rng(211);
  auto sample = built.value().Sample(&rng, 1e-4);
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();
  EXPECT_TRUE(sample.value().MatchesSchema(built.value().schema()));
}

TEST(SegmentConstructionTest, CountableFamilyRequiresCertificate) {
  pdb::CountablePdb ex55 = core::Example55();
  EXPECT_FALSE(BuildSegmentTiFamily(ex55, 1, nullptr).ok());
  EXPECT_FALSE(BuildSegmentTiFamily(ex55, 0, [](int64_t) {
                 return 0.0;
               }).ok());
}

TEST(SegmentConstructionTest, InvalidInputs) {
  rel::Schema schema = UnarySchema();
  pdb::FinitePdb<double> input = pdb::FinitePdb<double>::CreateOrDie(
      schema, {{World({1}), 1.0}});
  EXPECT_FALSE(BuildSegmentConstruction(input, 0).ok());
  pdb::FinitePdb<double> empty;
  EXPECT_FALSE(BuildSegmentConstruction(empty, 1).ok());
}

}  // namespace
}  // namespace core
}  // namespace ipdb
