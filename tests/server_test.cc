/// Tests for the embedded query service: tenant-config parsing and
/// QueryOptions mapping (a malformed config is a Status, never an
/// abort), the admission ladder, engine end-to-end serving with exact
/// parity against single-shot pqe::QueryProbability (including the
/// 16-thread concurrent-serving run the TSan leg gates), per-tenant
/// artifact-cache accounting, graceful shutdown (drain + reject +
/// final snapshot, with the server.shutdown fault site), concurrent
/// PreparedQuery handles, and the loopback line-protocol daemon.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_reader.h"
#include "kc/cache.h"
#include "logic/parser.h"
#include "obs/obs.h"
#include "pdb/ti_pdb.h"
#include "pqe/prepared.h"
#include "pqe/wmc.h"
#include "server/admission.h"
#include "server/daemon.h"
#include "server/engine.h"
#include "server/tenant.h"
#include "storage/ti_store.h"
#include "util/fault.h"
#include "util/status.h"

namespace ipdb {
namespace server {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

// ---------------------------------------------------------------------
// Fixtures

rel::Fact FactR(int i) { return rel::Fact(0, {rel::Value::Int(i)}); }
rel::Fact FactS(int i, int j) {
  return rel::Fact(1, {rel::Value::Int(i), rel::Value::Int(j)});
}
rel::Fact FactT(int j) { return rel::Fact(2, {rel::Value::Int(j)}); }

/// A small three-relation instance: R(x), S(x, y), T(y).
pdb::TiPdbD SmallInstance(int hubs = 4) {
  rel::Schema schema({{"R", 1}, {"S", 2}, {"T", 1}});
  pdb::TiPdbD::FactList facts;
  for (int i = 0; i < hubs; ++i) {
    facts.emplace_back(FactR(i), 0.3 + 0.05 * (i % 5));
    for (int j = 0; j < 2; ++j) {
      facts.emplace_back(FactS(i, j), 0.2 + 0.04 * ((i + j) % 7));
    }
  }
  facts.emplace_back(FactT(0), 0.6);
  facts.emplace_back(FactT(1), 0.35);
  return pdb::TiPdbD::CreateOrDie(schema, facts);
}

/// Single-shot ground truth through the same governed ladder.
pqe::QueryAnswer SingleShot(const pdb::TiPdbD& ti, const std::string& text) {
  logic::Formula sentence =
      logic::ParseSentence(text, ti.schema()).value();
  StatusOr<pqe::QueryAnswer> answer =
      pqe::QueryProbability(ti, sentence, pqe::QueryOptions{});
  EXPECT_TRUE(answer.ok()) << answer.status().ToString();
  return answer.value();
}

constexpr char kSafeQuery[] = "exists x y. R(x) & S(x, y)";
constexpr char kUnsafeQuery[] = "exists x y. R(x) & S(x, y) & T(y)";

// ---------------------------------------------------------------------
// Tenant config parsing / QueryOptions mapping

TEST(TenantConfigTest, ParsesKeyValueText) {
  StatusOr<TenantConfig> config = ParseTenantConfig(
      "max_in_flight=8 budget_ms=250; fallback_samples=5000 "
      "lifted=false cache_max_entries=2");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config.value().max_in_flight, 8);
  EXPECT_EQ(config.value().budget_ms, 250);
  EXPECT_EQ(config.value().fallback_samples, 5000);
  EXPECT_FALSE(config.value().lifted);
  EXPECT_EQ(config.value().cache_max_entries, 2);
  // Untouched keys keep their defaults.
  EXPECT_TRUE(config.value().fallback);
  EXPECT_DOUBLE_EQ(config.value().fallback_confidence, 0.99);
}

TEST(TenantConfigTest, EmptyTextIsTheDefaultConfig) {
  StatusOr<TenantConfig> config = ParseTenantConfig("");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().max_in_flight, TenantConfig{}.max_in_flight);
}

TEST(TenantConfigTest, MalformedConfigsReturnStatusNeverAbort) {
  const char* malformed[] = {
      "max_in_flight",            // no '='
      "=5",                       // empty key
      "max_in_flight=",           // empty value
      "max_in_flight=abc",        // not an integer
      "max_in_flight=3x",         // trailing garbage
      "budget_ms=1e3garbage",     // bad number
      "lifted=yes",               // bad boolean
      "no_such_knob=1",           // unknown key
      "max_in_flight=0",          // quota below 1
      "max_in_flight=-3",         // negative quota
      "budget_ms=-1",             // negative cap
      "fallback_samples=0",       // sample count below 1
      "fallback_confidence=1.5",  // confidence outside (0, 1)
      "fallback_confidence=0",    // confidence outside (0, 1)
      "fallback_confidence=nan",  // NaN fails the open-interval check
  };
  for (const char* text : malformed) {
    StatusOr<TenantConfig> config = ParseTenantConfig(text);
    EXPECT_FALSE(config.ok()) << "accepted: " << text;
    EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(TenantConfigTest, ValidateRejectsBadConfigsBuiltInCode) {
  TenantConfig config;
  config.degraded_samples = 0;
  EXPECT_EQ(ValidateTenantConfig(config).code(),
            StatusCode::kInvalidArgument);
  config = TenantConfig{};
  config.cache_max_bytes = -1;
  EXPECT_EQ(ValidateTenantConfig(config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(ValidateTenantConfig(TenantConfig{}).ok());
}

TEST(TenantConfigTest, MapsOntoQueryOptionsAndBudget) {
  TenantConfig config;
  config.budget_ms = 100;
  config.max_circuit_nodes = 500;
  config.max_samples = 9000;
  config.lifted = false;
  config.fallback_samples = 7000;
  config.fallback_confidence = 0.9;
  CancelToken cancel;
  ExecutionBudget budget;
  const auto start = ExecutionBudget::Clock::now();
  pqe::QueryOptions options =
      ToQueryOptions(config, &budget, start, /*degraded=*/false, &cancel);
  EXPECT_EQ(options.budget, &budget);
  EXPECT_TRUE(budget.has_deadline());
  EXPECT_EQ(budget.deadline, start + std::chrono::milliseconds(100));
  EXPECT_EQ(budget.max_circuit_nodes, 500);
  EXPECT_EQ(budget.max_samples, 9000);
  EXPECT_EQ(budget.cancel, &cancel);
  EXPECT_FALSE(options.lifted);
  EXPECT_EQ(options.fallback_samples, 7000);
  EXPECT_DOUBLE_EQ(options.fallback_confidence, 0.9);
}

TEST(TenantConfigTest, DegradedModeCapsTheCompileRung) {
  TenantConfig config;
  config.fallback = false;  // degraded mode must still turn fallback on
  config.fallback_samples = 100000;
  config.degraded_samples = 2048;
  ExecutionBudget budget;
  pqe::QueryOptions options =
      ToQueryOptions(config, &budget, ExecutionBudget::Clock::now(),
                     /*degraded=*/true, nullptr);
  EXPECT_TRUE(options.fallback);
  EXPECT_EQ(budget.max_circuit_nodes, 1);
  EXPECT_EQ(options.fallback_samples, 2048);
  EXPECT_TRUE(options.lifted);  // the cheap exact rung stays on
}

// ---------------------------------------------------------------------
// Admission controller

TEST(AdmissionTest, LadderByQueueDepth) {
  AdmissionOptions options;
  options.max_queue_depth = 10;
  options.degrade_fraction = 0.5;
  AdmissionController controller(options);
  EXPECT_EQ(controller.Decide(0), Admission::kFull);
  EXPECT_EQ(controller.Decide(4), Admission::kFull);
  EXPECT_EQ(controller.Decide(5), Admission::kDegraded);
  EXPECT_EQ(controller.Decide(9), Admission::kDegraded);
  EXPECT_EQ(controller.Decide(10), Admission::kShed);
  EXPECT_EQ(controller.Decide(1000), Admission::kShed);
}

TEST(AdmissionTest, FallbackWindowDegradesEvenWhenIdle) {
  AdmissionOptions options;
  options.max_queue_depth = 100;
  options.fallback_degrade_rate = 0.5;
  options.window = 8;
  AdmissionController controller(options);
  // Under half a window of outcomes: no signal, stays full.
  for (int i = 0; i < 3; ++i) controller.RecordOutcome(true);
  EXPECT_EQ(controller.Decide(0), Admission::kFull);
  // A saturated window of fallbacks degrades even at depth zero.
  for (int i = 0; i < 8; ++i) controller.RecordOutcome(true);
  EXPECT_DOUBLE_EQ(controller.FallbackRate(), 1.0);
  EXPECT_EQ(controller.Decide(0), Admission::kDegraded);
  // Exact completions wash the window clean again.
  for (int i = 0; i < 8; ++i) controller.RecordOutcome(false);
  EXPECT_DOUBLE_EQ(controller.FallbackRate(), 0.0);
  EXPECT_EQ(controller.Decide(0), Admission::kFull);
}

// ---------------------------------------------------------------------
// Engine end-to-end

TEST(EngineTest, RegistrationValidates) {
  Engine engine(EngineOptions{/*threads=*/2, {}});
  EXPECT_EQ(engine.RegisterInstance("", SmallInstance()).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(engine.RegisterInstance("db", SmallInstance()).ok());
  EXPECT_EQ(engine.RegisterInstance("db", SmallInstance()).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(engine.RegisterTenant("acme", TenantConfig{}).ok());
  EXPECT_EQ(engine.RegisterTenant("acme", TenantConfig{}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.RegisterTenant("bad", "no_such_knob=1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(engine.RegisterTenant("beta", "budget_ms=100").ok());
  EXPECT_EQ(engine.Usage("nobody").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, ServesWithExactParityAgainstSingleShot) {
  pdb::TiPdbD ti = SmallInstance();
  const pqe::QueryAnswer safe_truth = SingleShot(ti, kSafeQuery);
  const pqe::QueryAnswer unsafe_truth = SingleShot(ti, kUnsafeQuery);
  ASSERT_EQ(safe_truth.quality, pqe::AnswerQuality::kExact);
  ASSERT_EQ(unsafe_truth.quality, pqe::AnswerQuality::kExact);

  Engine engine(EngineOptions{/*threads=*/2, {}});
  ASSERT_TRUE(engine.RegisterInstance("db", ti).ok());
  ASSERT_TRUE(engine.RegisterTenant("acme", TenantConfig{}).ok());

  StatusOr<QueryResult> safe = engine.Query("acme", "db", kSafeQuery);
  ASSERT_TRUE(safe.ok()) << safe.status().ToString();
  EXPECT_EQ(safe.value().answer.quality, pqe::AnswerQuality::kExact);
  EXPECT_EQ(safe.value().answer.probability, safe_truth.probability);
  EXPECT_TRUE(safe.value().answer.lifted);
  EXPECT_FALSE(safe.value().degraded);
  EXPECT_GE(safe.value().total_ns, safe.value().queue_ns);

  StatusOr<QueryResult> unsafe = engine.Query("acme", "db", kUnsafeQuery);
  ASSERT_TRUE(unsafe.ok());
  EXPECT_EQ(unsafe.value().answer.quality, pqe::AnswerQuality::kExact);
  EXPECT_EQ(unsafe.value().answer.probability, unsafe_truth.probability);
  EXPECT_FALSE(unsafe.value().answer.lifted);

  // Unknown names and malformed formulas come back as Statuses.
  EXPECT_EQ(engine.Query("ghost", "db", kSafeQuery).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Query("acme", "ghost", kSafeQuery).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine.Query("acme", "db", "exists x. NoRel(x)").ok());
  EXPECT_FALSE(engine.Query("acme", "db", "R(x) &").ok());

  StatusOr<TenantUsage> usage = engine.Usage("acme");
  ASSERT_TRUE(usage.ok());
  EXPECT_EQ(usage.value().admitted, 2);
  EXPECT_EQ(usage.value().completed, 2);
  EXPECT_EQ(usage.value().errors, 2);  // the two malformed formulas
  EXPECT_EQ(usage.value().in_flight, 0);
}

/// The 16-thread concurrent-serving run gated under TSan: every answer
/// must match the single-shot ladder bit-for-bit.
TEST(EngineTest, ConcurrentServingExactParitySixteenThreads) {
  pdb::TiPdbD ti = SmallInstance();
  const std::vector<std::string> queries = {
      kSafeQuery,
      kUnsafeQuery,
      "exists x. R(x)",
      "exists x y. S(x, y) & T(y)",
  };
  std::vector<double> truth;
  for (const std::string& query : queries) {
    const pqe::QueryAnswer answer = SingleShot(ti, query);
    ASSERT_EQ(answer.quality, pqe::AnswerQuality::kExact);
    truth.push_back(answer.probability);
  }

  Engine engine(EngineOptions{/*threads=*/4, {}});
  ASSERT_TRUE(engine.RegisterInstance("db", ti).ok());
  ASSERT_TRUE(engine.RegisterTenant("acme", TenantConfig{}).ok());
  ASSERT_TRUE(engine.RegisterTenant("beta", TenantConfig{}).ok());

  constexpr int kThreads = 16;
  constexpr int kPerThread = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      const std::string tenant = (t % 2 == 0) ? "acme" : "beta";
      for (int q = 0; q < kPerThread; ++q) {
        const size_t pick = static_cast<size_t>(t + q) % queries.size();
        StatusOr<QueryResult> result =
            engine.Query(tenant, "db", queries[pick]);
        if (!result.ok() ||
            result.value().answer.quality != pqe::AnswerQuality::kExact ||
            result.value().answer.probability != truth[pick]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(engine.queue_depth(), 0);
  StatusOr<TenantUsage> acme = engine.Usage("acme");
  StatusOr<TenantUsage> beta = engine.Usage("beta");
  ASSERT_TRUE(acme.ok());
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(acme.value().completed + beta.value().completed,
            kThreads * kPerThread);
}

TEST(EngineTest, PreparedSessionsAnswerExactlyAndMemoize) {
  pdb::TiPdbD ti = SmallInstance();
  const pqe::QueryAnswer truth = SingleShot(ti, kUnsafeQuery);
  Engine engine(EngineOptions{/*threads=*/2, {}});
  ASSERT_TRUE(engine.RegisterInstance("db", ti).ok());
  ASSERT_TRUE(engine.RegisterTenant("acme", TenantConfig{}).ok());
  for (int round = 0; round < 3; ++round) {
    StatusOr<QueryResult> result =
        engine.QueryPrepared("acme", "db", kUnsafeQuery);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result.value().prepared);
    EXPECT_EQ(result.value().answer.quality, pqe::AnswerQuality::kExact);
    EXPECT_EQ(result.value().answer.probability, truth.probability);
  }
}

TEST(EngineTest, DegradedAdmissionAnswersWithCertifiedIntervals) {
  pdb::TiPdbD ti = SmallInstance();
  const pqe::QueryAnswer safe_truth = SingleShot(ti, kSafeQuery);
  const pqe::QueryAnswer unsafe_truth = SingleShot(ti, kUnsafeQuery);
  // A warm artifact cache would answer the capped query exactly (a hit
  // is already paid for); go in cold so the cap actually bites.
  kc::GlobalCompiledQueryCache().Clear();

  EngineOptions options;
  options.threads = 2;
  options.admission.degrade_fraction = 0.0;  // every admission degrades
  Engine engine(options);
  ASSERT_TRUE(engine.RegisterInstance("db", ti).ok());
  ASSERT_TRUE(engine.RegisterTenant("acme", "degraded_samples=20000").ok());

  // The lifted rung still answers exactly in degraded mode.
  StatusOr<QueryResult> safe = engine.Query("acme", "db", kSafeQuery);
  ASSERT_TRUE(safe.ok());
  EXPECT_TRUE(safe.value().degraded);
  EXPECT_EQ(safe.value().answer.quality, pqe::AnswerQuality::kExact);
  EXPECT_EQ(safe.value().answer.probability, safe_truth.probability);

  // The circuit rung is capped out: a certified interval answers.
  StatusOr<QueryResult> unsafe = engine.Query("acme", "db", kUnsafeQuery);
  ASSERT_TRUE(unsafe.ok());
  EXPECT_TRUE(unsafe.value().degraded);
  EXPECT_EQ(unsafe.value().answer.quality, pqe::AnswerQuality::kInterval);
  EXPECT_GT(unsafe.value().answer.half_width, 0.0);
  EXPECT_NEAR(unsafe.value().answer.probability, unsafe_truth.probability,
              unsafe.value().answer.half_width + 0.05);
}

TEST(EngineTest, OverloadShedsWithUnavailable) {
  // One worker, a shallow queue, and deliberately slow queries (the
  // compile rung is capped, so each query Monte Carlos a while): the
  // submission loop outruns the worker and the ladder must shed.
  EngineOptions options;
  options.threads = 1;
  options.admission.max_queue_depth = 4;
  options.admission.degrade_fraction = 1.0;  // isolate the shed rung
  options.admission.fallback_degrade_rate = 2.0;
  Engine engine(options);
  ASSERT_TRUE(engine.RegisterInstance("db", SmallInstance()).ok());
  ASSERT_TRUE(engine
                  .RegisterTenant("acme",
                                  "lifted=false max_circuit_nodes=1 "
                                  "fallback_samples=20000")
                  .ok());

  constexpr int kBurst = 32;
  std::vector<std::shared_ptr<PendingQuery>> admitted;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    StatusOr<std::shared_ptr<PendingQuery>> pending =
        engine.Submit("acme", "db", kUnsafeQuery);
    if (pending.ok()) {
      admitted.push_back(pending.value());
    } else {
      ASSERT_EQ(pending.status().code(), StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_GT(shed, 0);
  EXPECT_LE(engine.queue_depth(), options.admission.max_queue_depth);
  for (const auto& pending : admitted) {
    const StatusOr<QueryResult>& result = pending->Wait();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  StatusOr<TenantUsage> usage = engine.Usage("acme");
  ASSERT_TRUE(usage.ok());
  EXPECT_EQ(usage.value().shed, shed);
  EXPECT_EQ(usage.value().admitted, static_cast<int64_t>(admitted.size()));
}

TEST(EngineTest, TenantQuotaShedsBeforeGlobalPressure) {
  EngineOptions options;
  options.threads = 1;
  Engine engine(options);
  ASSERT_TRUE(engine.RegisterInstance("db", SmallInstance()).ok());
  ASSERT_TRUE(engine
                  .RegisterTenant("tiny",
                                  "max_in_flight=1 lifted=false "
                                  "max_circuit_nodes=1 "
                                  "fallback_samples=20000")
                  .ok());
  StatusOr<std::shared_ptr<PendingQuery>> first =
      engine.Submit("tiny", "db", kUnsafeQuery);
  ASSERT_TRUE(first.ok());
  // With one slow query in flight, the tenant is at quota; the engine
  // queue (depth 1 of 128) is nowhere near pressure.
  int quota_shed = 0;
  for (int i = 0; i < 16 && quota_shed == 0; ++i) {
    StatusOr<std::shared_ptr<PendingQuery>> second =
        engine.Submit("tiny", "db", kUnsafeQuery);
    if (!second.ok()) {
      EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
      ++quota_shed;
    } else {
      second.value()->Wait();
    }
  }
  EXPECT_GT(quota_shed, 0);
  first.value()->Wait();
}

// ---------------------------------------------------------------------
// Per-tenant cache accounting

TEST(EngineTest, TenantCacheAccountingIsExactAndCapped) {
  kc::GlobalCompiledQueryCache().Clear();
  Engine engine(EngineOptions{/*threads=*/2, {}});
  ASSERT_TRUE(engine.RegisterInstance("db", SmallInstance()).ok());
  // Both tenants force the circuit path; A may keep only one resident
  // artifact, B is uncapped.
  ASSERT_TRUE(
      engine.RegisterTenant("capped", "lifted=false cache_max_entries=1")
          .ok());
  ASSERT_TRUE(engine.RegisterTenant("roomy", "lifted=false").ok());

  const std::vector<std::string> queries = {
      "exists x. R(x)",
      "exists x y. S(x, y)",
      "exists x. T(x)",
  };
  for (const std::string& query : queries) {
    ASSERT_TRUE(engine.Query("capped", "db", query).ok());
  }
  for (const std::string& query : queries) {
    ASSERT_TRUE(engine.Query("roomy", "db", query).ok());
  }

  StatusOr<TenantUsage> capped = engine.Usage("capped");
  StatusOr<TenantUsage> roomy = engine.Usage("roomy");
  ASSERT_TRUE(capped.ok());
  ASSERT_TRUE(roomy.ok());
  // The capped tenant compiled three distinct artifacts but may hold
  // only one: its own LRU paid for every insert.
  EXPECT_EQ(capped.value().cache.misses, 3);
  EXPECT_EQ(capped.value().cache.entries, 1);
  EXPECT_GE(capped.value().cache.evictions, 2);
  // The roomy tenant probes the same fingerprints: whatever the capped
  // tenant still holds is a hit, the rest recompile under roomy's
  // ownership. Residency stays exactly partitioned.
  EXPECT_GE(roomy.value().cache.hits, 1);
  EXPECT_GE(roomy.value().cache.entries, 2);
  EXPECT_TRUE(kc::GlobalCompiledQueryCache().CheckAccounting().ok());
}

// ---------------------------------------------------------------------
// Graceful shutdown

TEST(EngineTest, StopDrainsInFlightRejectsNewAndFlushesMetrics) {
  EngineOptions options;
  options.threads = 2;
  Engine engine(options);
  ASSERT_TRUE(engine.RegisterInstance("db", SmallInstance()).ok());
  ASSERT_TRUE(engine
                  .RegisterTenant("acme",
                                  "lifted=false max_circuit_nodes=1 "
                                  "fallback_samples=20000")
                  .ok());

  std::vector<std::shared_ptr<PendingQuery>> pendings;
  for (int i = 0; i < 8; ++i) {
    StatusOr<std::shared_ptr<PendingQuery>> pending =
        engine.Submit("acme", "db", kUnsafeQuery);
    if (pending.ok()) pendings.push_back(pending.value());
  }
  ASSERT_FALSE(pendings.empty());

  ASSERT_TRUE(engine.Stop().ok());
  // Every admitted query drained to a clean result: the cancel token
  // turns unfinished sampling into kFailed answers, never hangs.
  for (const auto& pending : pendings) {
    EXPECT_TRUE(pending->done());
    const StatusOr<QueryResult>& result = pending->Wait();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_EQ(engine.queue_depth(), 0);
  // New work is rejected, idempotent Stop stays OK.
  EXPECT_EQ(engine.Submit("acme", "db", kSafeQuery).status().code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(engine.Stop().ok());
  // The final snapshot was flushed and carries serving metrics.
  const std::string snapshot = engine.final_metrics_json();
  EXPECT_NE(snapshot.find("ipdb-metrics-v1"), std::string::npos);
#if !defined(IPDB_OBSERVABILITY_DISABLED)
  EXPECT_NE(snapshot.find("serve."), std::string::npos);
#endif
}

#if defined(IPDB_FAULT_INJECTION)
TEST(EngineTest, ShutdownFaultSiteUnwindsCleanlyAndStopRetries) {
  ASSERT_TRUE(fault::IsKnownSite("server.shutdown"));
  Engine engine(EngineOptions{/*threads=*/1, {}});
  ASSERT_TRUE(engine.RegisterInstance("db", SmallInstance()).ok());
  ASSERT_TRUE(engine.RegisterTenant("acme", TenantConfig{}).ok());
  ASSERT_TRUE(engine.Query("acme", "db", kSafeQuery).ok());
  {
    fault::ScopedFaultPlan plan({{"server.shutdown", 1}});
    const Status status = engine.Stop();
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(plan.triggered("server.shutdown"), 1);
  }
  // The injected fault hit after the drain: the engine is quiesced and
  // Stop retries to a clean shutdown with the final snapshot intact.
  EXPECT_TRUE(engine.Stop().ok());
  EXPECT_NE(engine.final_metrics_json().find("ipdb-metrics-v1"),
            std::string::npos);
}
#endif  // IPDB_FAULT_INJECTION

// ---------------------------------------------------------------------
// Concurrent PreparedQuery handles (the TSan regression)

TEST(PreparedConcurrencyTest, ManyReadersRaceTheRefreshMachinery) {
  rel::Schema schema({{"R", 1}, {"S", 2}});
  storage::TiStore::Builder builder(schema);
  for (int i = 0; i < 5; ++i) {
    builder.Add(rel::Fact(0, {rel::Value::Int(i)}), 0.3 + 0.05 * i);
    builder.Add(rel::Fact(1, {rel::Value::Int(i), rel::Value::Int(100 + i)}),
                0.2 + 0.04 * i);
  }
  StatusOr<std::shared_ptr<storage::TiStore>> built = builder.Finish();
  ASSERT_TRUE(built.ok());
  std::shared_ptr<storage::TiStore> store = built.value();
  logic::Formula sentence =
      logic::ParseSentence("exists x y. R(x) & S(x, y)", schema).value();

  pqe::PreparedQuery::Options options;
  options.allow_lifted = false;  // exercise the locked circuit path
  StatusOr<pqe::PreparedQuery> prepared =
      pqe::PreparedQuery::Prepare(store, sentence, options);
  ASSERT_TRUE(prepared.ok());
  pqe::PreparedQuery& handle = prepared.value();

  auto race = [&handle](double expected) {
    constexpr int kReaders = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&] {
        for (int i = 0; i < 16; ++i) {
          StatusOr<double> answer = handle.Query();
          // Tolerance, not equality: the circuit and the brute-force
          // enumeration round differently.
          if (!answer.ok() ||
              std::abs(answer.value() - expected) > 1e-9) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : readers) t.join();
    EXPECT_EQ(failures.load(), 0);
  };

  auto truth = [&] {
    StatusOr<pdb::TiPdbD> view = pdb::TiPdbD::FromStore(store);
    EXPECT_TRUE(view.ok());
    return pqe::QueryProbabilityBruteForce(view.value(), sentence).value();
  };

  // Round 1: readers race each other on the memoized answer.
  race(truth());
  // Round 2: a probability update (single writer, readers quiesced per
  // the TiStore contract) — readers then race the incremental refresh.
  ASSERT_TRUE(store->UpdateProbability(rel::Fact(0, {rel::Value::Int(2)}),
                                       0.85)
                  .ok());
  race(truth());
  EXPECT_GE(handle.incremental_refreshes(), 1);
  // Round 3: a structural mutation — readers race the cold recompile.
  ASSERT_TRUE(store->Erase(rel::Fact(0, {rel::Value::Int(4)})).ok());
  race(truth());
  EXPECT_GE(handle.recompiles(), 1);
}

// ---------------------------------------------------------------------
// Daemon (loopback line protocol)

class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  /// Sends one request line and reads one response line.
  std::string RoundTrip(const std::string& request) {
    if (!SendRaw(request + "\n")) return "";
    return ReadLine();
  }

  /// Sends bytes with no framing — for exercising the line cap.
  bool SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads up to the next newline; "" means the peer closed first.
  std::string ReadLine() {
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
    const size_t newline = buffer_.find('\n');
    std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return line;
  }

  /// True once the peer has closed its end (blocking read of EOF).
  bool AtEof() {
    char byte;
    return ::recv(fd_, &byte, 1, 0) <= 0;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(DaemonTest, SpeaksTheLineProtocolOverLoopback) {
  pdb::TiPdbD ti = SmallInstance();
  const pqe::QueryAnswer truth = SingleShot(ti, kSafeQuery);
  Engine engine(EngineOptions{/*threads=*/2, {}});
  ASSERT_TRUE(engine.RegisterInstance("db", ti).ok());
  ASSERT_TRUE(engine.RegisterTenant("acme", TenantConfig{}).ok());

  Daemon daemon(&engine);
  const Status started = daemon.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "no loopback sockets here: " << started.ToString();
  }
  ASSERT_GT(daemon.port(), 0);

  LineClient client(daemon.port());
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client.RoundTrip("PING"), "PONG");

  // QUERY answers match the engine (and hence the single-shot ladder).
  const std::string response =
      client.RoundTrip(std::string("QUERY acme db ") + kSafeQuery);
  std::istringstream parse(response);
  std::string tag, quality;
  double probability = -1.0, half_width = -1.0, confidence = -1.0;
  int lifted = -1, degraded = -1;
  parse >> tag >> probability >> half_width >> confidence >> quality >>
      lifted >> degraded;
  EXPECT_EQ(tag, "OK") << response;
  EXPECT_EQ(probability, truth.probability);
  EXPECT_EQ(half_width, 0.0);
  EXPECT_EQ(quality, "exact");
  EXPECT_EQ(lifted, 1);
  EXPECT_EQ(degraded, 0);

  // PQUERY serves the prepared path with the same exact answer.
  const std::string prepared =
      client.RoundTrip(std::string("PQUERY acme db ") + kSafeQuery);
  EXPECT_EQ(prepared.substr(0, 3), "OK ");
  std::istringstream reparse(prepared);
  reparse >> tag >> probability;
  EXPECT_EQ(probability, truth.probability);

  // Errors are line-framed Statuses, never connection drops.
  EXPECT_EQ(client.RoundTrip("QUERY ghost db true").substr(0, 20),
            "ERR INVALID_ARGUMENT");
  EXPECT_EQ(client.RoundTrip("NONSENSE").substr(0, 3), "ERR");
  EXPECT_EQ(client.RoundTrip("QUERY acme db").substr(0, 3), "ERR");

  // METRICS returns the one-line JSON snapshot.
  const std::string metrics = client.RoundTrip("METRICS");
  EXPECT_NE(metrics.find("ipdb-metrics-v1"), std::string::npos);
#if !defined(IPDB_OBSERVABILITY_DISABLED)
  EXPECT_NE(metrics.find("serve."), std::string::npos);
#endif

  EXPECT_EQ(client.RoundTrip("QUIT"), "BYE");
  daemon.Stop();
  EXPECT_TRUE(engine.Stop().ok());
}

// Satellite: an unterminated request line past the cap must be answered
// once and hung up on — never buffered without bound — and the listener
// must keep serving fresh connections afterwards.
TEST(DaemonTest, OversizedLineGetsOneErrorThenTheConnectionCloses) {
  Engine engine(EngineOptions{/*threads=*/1, {}});
  ASSERT_TRUE(engine.RegisterInstance("db", SmallInstance()).ok());
  Daemon daemon(&engine);
  const Status started = daemon.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "no loopback sockets here: " << started.ToString();
  }
  {
    LineClient client(daemon.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.SendRaw(
        std::string(Daemon::kMaxRequestLineBytes + 1024, 'A')));
    const std::string reply = client.ReadLine();
    EXPECT_EQ(reply.substr(0, 20), "ERR INVALID_ARGUMENT") << reply;
    EXPECT_NE(reply.find("exceeds"), std::string::npos) << reply;
    EXPECT_TRUE(client.AtEof());
  }
  LineClient after(daemon.port());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.RoundTrip("PING"), "PONG");
  daemon.Stop();
  EXPECT_TRUE(engine.Stop().ok());
}

/// Scratch durability root, removed (instance files and all) on exit.
class ServerScratchDir {
 public:
  ServerScratchDir() {
    char tmpl[] = "/tmp/ipdb_server_dur_XXXXXX";
    if (::mkdtemp(tmpl) != nullptr) path_ = tmpl;
  }
  ~ServerScratchDir() {
    if (path_.empty()) return;
    for (const char* name : {"db"}) {
      const std::string dir = path_ + "/" + name;
      std::remove((dir + "/snapshot.ipdb").c_str());
      std::remove((dir + "/snapshot.ipdb.tmp").c_str());
      std::remove((dir + "/wal.log").c_str());
      ::rmdir(dir.c_str());
    }
    ::rmdir(path_.c_str());
  }
  bool ok() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Tentpole: SAVE persists a registered instance under durability_dir and
// a fresh engine over the same root restores it at boot with the exact
// same served answer.
TEST(EngineTest, DurabilityDirSavesAndRestoresOnBoot) {
  ServerScratchDir scratch;
  ASSERT_TRUE(scratch.ok());
  pdb::TiPdbD ti = SmallInstance();
  const pqe::QueryAnswer truth = SingleShot(ti, kSafeQuery);

  EngineOptions options;
  options.threads = 1;
  options.durability_dir = scratch.path();
  {
    Engine engine(options);
    EXPECT_EQ(engine.boot_restored(), 0);  // an empty root restores nothing
    ASSERT_TRUE(engine.boot_restore_status().ok());
    ASSERT_TRUE(engine.RegisterInstance("db", ti).ok());
    ASSERT_TRUE(engine.RegisterTenant("acme", TenantConfig{}).ok());
    ASSERT_TRUE(engine.SaveInstance("db").ok());
    StatusOr<QueryResult> before = engine.Query("acme", "db", kSafeQuery);
    ASSERT_TRUE(before.ok());
    EXPECT_EQ(before.value().answer.probability, truth.probability);
    EXPECT_TRUE(engine.Stop().ok());
  }
  {
    Engine engine(options);
    EXPECT_EQ(engine.boot_restored(), 1);
    ASSERT_TRUE(engine.boot_restore_status().ok());
    ASSERT_TRUE(engine.RegisterTenant("acme", TenantConfig{}).ok());
    StatusOr<QueryResult> after = engine.Query("acme", "db", kSafeQuery);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after.value().answer.probability, truth.probability);
    EXPECT_TRUE(engine.Stop().ok());
  }
  // Durability off: the commands refuse instead of inventing a path.
  Engine off(EngineOptions{/*threads=*/1, {}});
  ASSERT_TRUE(off.RegisterInstance("db", ti).ok());
  EXPECT_EQ(off.SaveInstance("db").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(off.LoadInstance("other").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(off.Stop().ok());
}

// SAVE/LOAD over the line protocol: one daemon saves, a second engine's
// daemon loads the instance from disk and serves it with exact parity.
TEST(DaemonTest, SaveAndLoadCommandsRoundTripAcrossEngines) {
  ServerScratchDir scratch;
  ASSERT_TRUE(scratch.ok());
  pdb::TiPdbD ti = SmallInstance();
  const pqe::QueryAnswer truth = SingleShot(ti, kSafeQuery);

  EngineOptions options;
  options.threads = 1;
  options.durability_dir = scratch.path();
  Engine writer(options);
  ASSERT_TRUE(writer.RegisterInstance("db", ti).ok());
  // Constructed while the root is still empty, so nothing boot-restores
  // and LOAD below genuinely reads the files the SAVE wrote.
  Engine reader(options);
  ASSERT_TRUE(reader.RegisterTenant("acme", TenantConfig{}).ok());
  EXPECT_EQ(reader.boot_restored(), 0);

  Daemon write_daemon(&writer);
  Daemon read_daemon(&reader);
  const Status started = write_daemon.Start();
  if (!started.ok() || !read_daemon.Start().ok()) {
    GTEST_SKIP() << "no loopback sockets here";
  }
  LineClient save_client(write_daemon.port());
  ASSERT_TRUE(save_client.ok());
  EXPECT_EQ(save_client.RoundTrip("SAVE db"), "OK");
  EXPECT_EQ(save_client.RoundTrip("SAVE ghost").substr(0, 3), "ERR");
  EXPECT_EQ(save_client.RoundTrip("SAVE").substr(0, 3), "ERR");

  LineClient load_client(read_daemon.port());
  ASSERT_TRUE(load_client.ok());
  EXPECT_EQ(load_client.RoundTrip("LOAD db"), "OK");
  EXPECT_EQ(load_client.RoundTrip("LOAD db").substr(0, 3),
            "ERR");  // already registered
  EXPECT_EQ(load_client.RoundTrip("LOAD ghost").substr(0, 3), "ERR");
  const std::string served =
      load_client.RoundTrip(std::string("QUERY acme db ") + kSafeQuery);
  std::istringstream parse(served);
  std::string tag;
  double probability = -1.0;
  parse >> tag >> probability;
  EXPECT_EQ(tag, "OK") << served;
  EXPECT_EQ(probability, truth.probability);

  write_daemon.Stop();
  read_daemon.Stop();
  EXPECT_TRUE(writer.Stop().ok());
  EXPECT_TRUE(reader.Stop().ok());
}

// Satellite: the METRICS reply must be machine-readable, not just
// grep-able — parse it with the shared test JSON reader and check the
// serving counters moved.
TEST(DaemonTest, MetricsCommandReturnsParseableJson) {
  pdb::TiPdbD ti = SmallInstance();
  Engine engine(EngineOptions{/*threads=*/2, {}});
  ASSERT_TRUE(engine.RegisterInstance("db", ti).ok());
  ASSERT_TRUE(engine.RegisterTenant("acme", TenantConfig{}).ok());

  Daemon daemon(&engine);
  const Status started = daemon.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "no loopback sockets here: " << started.ToString();
  }
  LineClient client(daemon.port());
  ASSERT_TRUE(client.ok());

#if !defined(IPDB_OBSERVABILITY_DISABLED)
  const int64_t before =
      obs::GlobalMetrics().Snapshot().CounterValue("serve.completed");
#endif
  constexpr int kQueries = 3;
  for (int i = 0; i < kQueries; ++i) {
    const std::string response =
        client.RoundTrip(std::string("QUERY acme db ") + kSafeQuery);
    ASSERT_EQ(response.substr(0, 3), "OK ") << response;
  }

  JsonValue parsed;
  ASSERT_TRUE(JsonParser(client.RoundTrip("METRICS")).Parse(&parsed));
  EXPECT_EQ(parsed.Find("schema")->string, "ipdb-metrics-v1");
#if !defined(IPDB_OBSERVABILITY_DISABLED)
  const JsonValue* counters = parsed.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* completed = counters->Find("serve.completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_GE(completed->number, static_cast<double>(before + kQueries));
  ASSERT_NE(parsed.Find("histograms"), nullptr);
  const JsonValue* latency =
      parsed.Find("histograms")->Find("serve.latency_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->Find("count")->number, static_cast<double>(kQueries));
#endif

  daemon.Stop();
  EXPECT_TRUE(engine.Stop().ok());
}

// The request-scoped observability round trip over the wire: QUERY
// returns a trace id, TRACE returns that request's connected span tree,
// STATS returns the per-tenant rollups with the SLO state.
TEST(DaemonTest, StatsAndTraceCommandsRoundTrip) {
  pdb::TiPdbD ti = SmallInstance();
  Engine engine(EngineOptions{/*threads=*/2, {}});
  ASSERT_TRUE(engine.RegisterInstance("db", ti).ok());
  // trace_sample defaults to 1.0: every request is retained for TRACE.
  ASSERT_TRUE(
      engine.RegisterTenant("acme", "slo_p99_ms=5000 slo_availability=0.99")
          .ok());

  Daemon daemon(&engine);
  const Status started = daemon.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "no loopback sockets here: " << started.ToString();
  }
  LineClient client(daemon.port());
  ASSERT_TRUE(client.ok());

  const std::string response =
      client.RoundTrip(std::string("QUERY acme db ") + kSafeQuery);
  ASSERT_EQ(response.substr(0, 3), "OK ") << response;
  // The trace id is the final response field.
  std::istringstream parse(response);
  std::string tag, quality;
  double probability, half_width, confidence;
  int lifted, degraded;
  uint64_t trace_id = 0;
  parse >> tag >> probability >> half_width >> confidence >> quality >>
      lifted >> degraded >> trace_id;
  ASSERT_GT(trace_id, 0u) << response;

  // TRACE <id> answers the span tree: one root, serve.request, with the
  // pipeline stages below it.
  JsonValue tree;
  ASSERT_TRUE(
      JsonParser(client.RoundTrip("TRACE " + std::to_string(trace_id)))
          .Parse(&tree));
  EXPECT_EQ(tree.Find("schema")->string, "ipdb-trace-tree-v1");
  EXPECT_TRUE(tree.Find("finished")->boolean);
  const JsonValue* roots = tree.Find("roots");
  ASSERT_NE(roots, nullptr);
  ASSERT_EQ(roots->array.size(), 1u) << "orphan spans in the tree";
  const JsonValue& root = roots->array[0];
  EXPECT_EQ(root.Find("name")->string, "serve.request");
  std::vector<std::string> child_names;
  for (const JsonValue& child : root.Find("children")->array) {
    child_names.push_back(child.Find("name")->string);
  }
  EXPECT_NE(std::find(child_names.begin(), child_names.end(), "serve.queue"),
            child_names.end());
#if !defined(IPDB_OBSERVABILITY_DISABLED)
  // serve.execute comes from an IPDB_OBS_SPAN; only the synthesized
  // serve.request / serve.queue spans survive an obs-off build.
  EXPECT_NE(
      std::find(child_names.begin(), child_names.end(), "serve.execute"),
      child_names.end());
#endif

  // Unknown / malformed ids are line-framed errors.
  EXPECT_EQ(client.RoundTrip("TRACE 18446744073709551615").substr(0, 20),
            "ERR INVALID_ARGUMENT");
  EXPECT_EQ(client.RoundTrip("TRACE zebra").substr(0, 20),
            "ERR INVALID_ARGUMENT");
  EXPECT_EQ(client.RoundTrip("TRACE").substr(0, 20), "ERR INVALID_ARGUMENT");

  // STATS reports the tenant's rollups and SLO state.
  JsonValue stats;
  ASSERT_TRUE(JsonParser(client.RoundTrip("STATS")).Parse(&stats));
  EXPECT_EQ(stats.Find("schema")->string, "ipdb-stats-v1");
  const JsonValue* acme = stats.Find("tenants")->Find("acme");
  ASSERT_NE(acme, nullptr);
  EXPECT_GE(acme->Find("1m")->Find("served")->number, 1.0);
  const JsonValue* slo = acme->Find("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_EQ(slo->Find("state")->string, "ok");
  ASSERT_NE(slo->Find("latency"), nullptr);
  ASSERT_NE(slo->Find("availability"), nullptr);

  daemon.Stop();
  EXPECT_TRUE(engine.Stop().ok());
}

// ---------------------------------------------------------------------
// Request tracing + per-tenant telemetry through the Engine API

TEST(EngineTest, TraceJsonReturnsAConnectedSpanTree) {
  pdb::TiPdbD ti = SmallInstance();
  Engine engine(EngineOptions{/*threads=*/2, {}});
  ASSERT_TRUE(engine.RegisterInstance("db", ti).ok());
  ASSERT_TRUE(engine.RegisterTenant("acme", TenantConfig{}).ok());

  // The handle exposes the trace id before the query finishes.
  StatusOr<std::shared_ptr<PendingQuery>> pending =
      engine.Submit("acme", "db", kUnsafeQuery);
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  const uint64_t trace_id = pending.value()->trace_id();
  EXPECT_GT(trace_id, 0u);
  const StatusOr<QueryResult>& result = pending.value()->Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().trace_id, trace_id);

  StatusOr<std::string> json = engine.TraceJson(trace_id);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  JsonValue tree;
  ASSERT_TRUE(JsonParser(json.value()).Parse(&tree));
  const JsonValue* roots = tree.Find("roots");
  ASSERT_EQ(roots->array.size(), 1u);
  EXPECT_EQ(roots->array[0].Find("name")->string, "serve.request");
#if !defined(IPDB_OBSERVABILITY_DISABLED)
  // The unsafe query goes through the full pipeline: execute nests the
  // pqe spans under the root's serve.execute child. (These spans are
  // IPDB_OBS_SPAN macros, so they only exist when instrumentation is
  // compiled in.)
  bool found_execute = false;
  for (const JsonValue& child : roots->array[0].Find("children")->array) {
    if (child.Find("name")->string == "serve.execute") {
      found_execute = true;
      EXPECT_FALSE(child.Find("children")->array.empty())
          << "pqe spans should nest under serve.execute";
    }
  }
  EXPECT_TRUE(found_execute);
#endif

  // Unknown ids are kInvalidArgument, not empty strings.
  StatusOr<std::string> unknown = engine.TraceJson(trace_id + 1234567);
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(engine.Stop().ok());
}

TEST(EngineTest, TraceSampleZeroKeepsRequestsOutOfTheStore) {
  pdb::TiPdbD ti = SmallInstance();
  Engine engine(EngineOptions{/*threads=*/2, {}});
  ASSERT_TRUE(engine.RegisterInstance("db", ti).ok());
  ASSERT_TRUE(engine.RegisterTenant("quiet", "trace_sample=0").ok());
  StatusOr<QueryResult> result = engine.Query("quiet", "db", kSafeQuery);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().trace_id, 0u);  // ids are always assigned
  EXPECT_FALSE(engine.TraceJson(result.value().trace_id).ok());
  EXPECT_TRUE(engine.Stop().ok());
}

TEST(EngineTest, LabeledLatencyHistogramsSumToTheUnlabeledAggregate) {
  pdb::TiPdbD ti = SmallInstance();
  Engine engine(EngineOptions{/*threads=*/2, {}});
  ASSERT_TRUE(engine.RegisterInstance("db", ti).ok());
  ASSERT_TRUE(engine.RegisterTenant("alpha", TenantConfig{}).ok());
  ASSERT_TRUE(engine.RegisterTenant("beta", TenantConfig{}).ok());

#if !defined(IPDB_OBSERVABILITY_DISABLED)
  auto labeled_counts = [] {
    std::map<std::string, int64_t> counts;
    for (const auto& cell :
         obs::GlobalMetrics().Snapshot().histogram_families) {
      if (cell.name == "serve.latency_ns" && cell.label_key == "tenant") {
        counts[cell.label_value] = cell.stats.count;
      }
    }
    return counts;
  };
  auto unlabeled_count = [] {
    const obs::MetricsSnapshot snapshot = obs::GlobalMetrics().Snapshot();
    const obs::HistogramStats* stats =
        snapshot.FindHistogram("serve.latency_ns");
    return stats == nullptr ? int64_t{0} : stats->count;
  };

  const std::map<std::string, int64_t> before = labeled_counts();
  const int64_t aggregate_before = unlabeled_count();
  constexpr int kAlpha = 4;
  constexpr int kBeta = 2;
  for (int i = 0; i < kAlpha; ++i) {
    ASSERT_TRUE(engine.Query("alpha", "db", kSafeQuery).ok());
  }
  for (int i = 0; i < kBeta; ++i) {
    ASSERT_TRUE(engine.Query("beta", "db", kSafeQuery).ok());
  }

  std::map<std::string, int64_t> after = labeled_counts();
  auto delta = [&](const std::string& tenant) {
    int64_t was = 0;
    auto it = before.find(tenant);
    if (it != before.end()) was = it->second;
    return after[tenant] - was;
  };
  EXPECT_EQ(delta("alpha"), kAlpha);
  EXPECT_EQ(delta("beta"), kBeta);
  // Zero drift: the sum of labeled deltas equals the aggregate delta.
  EXPECT_EQ(unlabeled_count() - aggregate_before, kAlpha + kBeta);
#else
  // Labeled metrics are compiled out; the queries themselves still work.
  ASSERT_TRUE(engine.Query("alpha", "db", kSafeQuery).ok());
  ASSERT_TRUE(engine.Query("beta", "db", kSafeQuery).ok());
#endif

  EXPECT_TRUE(engine.Stop().ok());
}

TEST(EngineTest, StatsJsonTracksPerTenantServesAndSheds) {
  pdb::TiPdbD ti = SmallInstance();
  Engine engine(EngineOptions{/*threads=*/2, {}});
  ASSERT_TRUE(engine.RegisterInstance("db", ti).ok());
  ASSERT_TRUE(engine.RegisterTenant("acme", "slo_availability=0.5").ok());
  ASSERT_TRUE(engine.Query("acme", "db", kSafeQuery).ok());
  // A parse error is a served-with-error completion in the series.
  EXPECT_FALSE(engine.Query("acme", "db", "this is not a formula").ok());

  JsonValue stats;
  ASSERT_TRUE(JsonParser(engine.StatsJson()).Parse(&stats));
  const JsonValue* acme = stats.Find("tenants")->Find("acme");
  ASSERT_NE(acme, nullptr);
  const JsonValue* fast = acme->Find("1m");
  EXPECT_EQ(fast->Find("served")->number, 2.0);
  EXPECT_EQ(fast->Find("errors")->number, 1.0);
  ASSERT_NE(acme->Find("slo"), nullptr);
  // One error in two requests = 50% bad, exactly at the 0.5 allowance:
  // burn 1.0 is not > burn_alert 1.0, so the state stays ok.
  EXPECT_EQ(acme->Find("slo")->Find("state")->string, "ok");
  EXPECT_TRUE(engine.Stop().ok());
}

}  // namespace
}  // namespace server
}  // namespace ipdb
