#include "core/size_moments.h"

#include <gtest/gtest.h>

#include "core/paper_examples.h"
#include "logic/parser.h"

namespace ipdb {
namespace core {
namespace {

TEST(SizeMomentsTest, Example35FirstMomentIsThree) {
  pdb::CountablePdb pdb = Example35();
  SumAnalysis m1 = pdb.AnalyzeMoment(1);
  ASSERT_EQ(m1.kind, SumAnalysis::Kind::kConverged);
  EXPECT_TRUE(m1.enclosure.Contains(3.0));
  EXPECT_LT(m1.enclosure.width(), 1e-9);
}

TEST(SizeMomentsTest, Example35SecondMomentDiverges) {
  // The Proposition 3.4 witness: E[|D|²] = ∞ ⇒ not in FO(TI).
  pdb::CountablePdb pdb = Example35();
  SumAnalysis m2 = pdb.AnalyzeMoment(2);
  EXPECT_EQ(m2.kind, SumAnalysis::Kind::kDiverged);
  FiniteMomentsReport report = CheckFiniteMoments(pdb, 3);
  EXPECT_FALSE(report.all_finite_certified);
  EXPECT_EQ(report.first_infinite_moment, 2);
}

TEST(SizeMomentsTest, Example39AllMomentsFinite) {
  // Example 3.9 has the finite moments property (shown in the paper) —
  // the necessary condition does NOT rule it out; only the balance bound
  // does.
  pdb::CountablePdb pdb = Example39();
  FiniteMomentsReport report = CheckFiniteMoments(pdb, 4);
  EXPECT_TRUE(report.all_finite_certified) << report.ToString();
}

TEST(SizeMomentsTest, Example55AllMomentsFinite) {
  pdb::CountablePdb pdb = Example55();
  FiniteMomentsReport report = CheckFiniteMoments(pdb, 4);
  EXPECT_TRUE(report.all_finite_certified) << report.ToString();
  // E[|D|] = Σ i 2^{-i²}/x — dominated by the first terms.
  EXPECT_LT(report.moments[0].enclosure.hi(), 2.0);
  EXPECT_GT(report.moments[0].enclosure.lo(), 1.0);
}

TEST(SizeMomentsTest, ViewMomentBoundFormula) {
  // m = 1, r = 1, r' = 1, c = 0, k = 1: bound = E[|D|] itself.
  std::vector<double> input_moments = {1.0, 5.0};
  EXPECT_DOUBLE_EQ(ViewMomentUpperBound(1, 1, 1, 0, 1, input_moments), 5.0);
  // Adding constants or output relations increases the bound.
  std::vector<double> more = {1.0, 5.0, 30.0};
  EXPECT_GT(ViewMomentUpperBound(2, 1, 1, 1, 1, input_moments), 5.0);
  EXPECT_GT(ViewMomentUpperBound(1, 2, 1, 0, 1, more), 0.0);
}

TEST(SizeMomentsTest, PushforwardBoundDominatesActualMoment) {
  // A concrete instance of Lemma 3.3: for the Example 5.6 TI-PDB and a
  // simple projection-style view, the bound must dominate the moment of
  // the image measured on truncations.
  pdb::CountableTiPdb ti = Example56Ti();
  logic::FoView identity = logic::FoView::Identity(ti.schema());
  auto bound = PushforwardMomentUpperBound(ti, identity, 1);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  // |V(D)| = |D| for the identity, so E|V(D)| = Σ p_i ≈ 1.076.
  SumAnalysis marginal_sum = ti.CheckWellDefined();
  EXPECT_GE(bound.value(), marginal_sum.enclosure.lo());
}

TEST(SizeMomentsTest, ViewMomentBoundSanityOnFiniteTi) {
  // Exhaustive check on a small TI + join view: measured image moment
  // is below the Lemma 3.3 bound computed from exact input moments.
  rel::Schema in({{"R", 2}});
  pdb::TiPdb<double> ti = pdb::TiPdb<double>::CreateOrDie(
      in, {{rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(2)}), 0.5},
           {rel::Fact(0, {rel::Value::Int(2), rel::Value::Int(3)}), 0.5},
           {rel::Fact(0, {rel::Value::Int(3), rel::Value::Int(1)}), 0.5}});
  rel::Schema out({{"T", 2}});
  logic::FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x", "z"};
  def.body = logic::ParseFormula("exists y. R(x, y) & R(y, z)", in).value();
  logic::FoView view = logic::FoView::Create(in, out, {def}).value();

  pdb::FinitePdb<double> expanded = ti.Expand();
  double image_moment = 0.0;
  for (const auto& [world, probability] : expanded.worlds()) {
    rel::Instance image = view.ApplyOrDie(world);
    image_moment += static_cast<double>(image.size()) *
                    static_cast<double>(image.size()) * probability;
  }
  const int k = 2;
  const int r = 2;
  std::vector<double> input_moments(r * k + 1);
  for (int j = 0; j <= r * k; ++j) {
    input_moments[j] = ti.SizeMoment(j);
  }
  double bound = ViewMomentUpperBound(1, r, 2, 0, k, input_moments);
  EXPECT_LE(image_moment, bound);
}

}  // namespace
}  // namespace core
}  // namespace ipdb
