#include "util/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace ipdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_EQ(status, Status::Ok());
}

TEST(StatusTest, ErrorConstructors) {
  EXPECT_EQ(InvalidArgumentError("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FailedPreconditionError("no").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(DivergedError("x").code(), StatusCode::kDiverged);
  EXPECT_EQ(InconclusiveError("x").code(), StatusCode::kInconclusive);
  EXPECT_EQ(InvalidArgumentError("bad input").ToString(),
            "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDiverged), "DIVERGED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42);
  EXPECT_EQ(*value, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> error = InvalidArgumentError("nope");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(error.status().message(), "nope");
}

TEST(StatusOrTest, MoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> holder = std::make_unique<int>(7);
  ASSERT_TRUE(holder.ok());
  std::unique_ptr<int> extracted = std::move(holder).value();
  EXPECT_EQ(*extracted, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> text = std::string("hello");
  EXPECT_EQ(text->size(), 5u);
}

TEST(StatusTest, BudgetErrorConstructors) {
  EXPECT_EQ(ResourceExhaustedError("cap").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(DeadlineExceededError("late").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(CancelledError("stop").code(), StatusCode::kCancelled);
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
}

TEST(StatusTest, SourceLocationInToString) {
  Status status = InternalError("boom");
  EXPECT_EQ(status.file(), nullptr);
  EXPECT_EQ(status.line(), 0);
  status.WithSourceLocation("solver.cc", 42);
  EXPECT_STREQ(status.file(), "solver.cc");
  EXPECT_EQ(status.line(), 42);
  EXPECT_EQ(status.ToString(), "INTERNAL: boom [solver.cc:42]");
}

TEST(StatusTest, EqualityIgnoresLocation) {
  Status a = InternalError("boom");
  Status b = InternalError("boom");
  b.WithSourceLocation("other.cc", 7);
  EXPECT_EQ(a, b);
}

TEST(StatusTest, AppendJoinsWithSemicolon) {
  Status status = InvalidArgumentError("bad input");
  status.Append("while parsing query").Append("");
  EXPECT_EQ(status.message(), "bad input; while parsing query");
}

TEST(StatusBuilderTest, BuildsCodeMessageAndLocation) {
  Status status = IPDB_STATUS(StatusCode::kResourceExhausted)
                  << "node cap " << 128 << " exceeded";
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(status.message(), "node cap 128 exceeded");
  ASSERT_NE(status.file(), nullptr);
  EXPECT_NE(std::string(status.file()).find("status_test"),
            std::string::npos);
  EXPECT_GT(status.line(), 0);
}

TEST(StatusBuilderTest, ConvertsToStatusOr) {
  StatusOr<int> result =
      IPDB_STATUS(StatusCode::kDeadlineExceeded) << "too slow";
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(result.status().message(), "too slow");
}

TEST(StatusBuilderTest, ForwardKeepsOriginalLocationAndEnriches) {
  Status inner = ResourceExhaustedError("limb cap exceeded");
  inner.WithSourceLocation("bigint.cc", 99);
  Status outer = IPDB_STATUS_FORWARD(inner) << "while evaluating circuit";
  EXPECT_EQ(outer.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(outer.message(),
            "limb cap exceeded; while evaluating circuit");
  EXPECT_STREQ(outer.file(), "bigint.cc");
  EXPECT_EQ(outer.line(), 99);
}

TEST(StatusBuilderTest, ForwardWithoutLocationTakesForwardSite) {
  Status inner = InternalError("oops");
  Status outer = IPDB_STATUS_FORWARD(inner) << "context";
  ASSERT_NE(outer.file(), nullptr);
  EXPECT_NE(std::string(outer.file()).find("status_test"),
            std::string::npos);
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  auto run = [](Status inner) -> Status {
    IPDB_RETURN_IF_ERROR(inner);
    return InternalError("reached the end");
  };
  EXPECT_EQ(run(CancelledError("stop")).code(), StatusCode::kCancelled);
  EXPECT_EQ(run(Status::Ok()).message(), "reached the end");
}

}  // namespace
}  // namespace ipdb
