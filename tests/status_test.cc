#include "util/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace ipdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_EQ(status, Status::Ok());
}

TEST(StatusTest, ErrorConstructors) {
  EXPECT_EQ(InvalidArgumentError("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FailedPreconditionError("no").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(DivergedError("x").code(), StatusCode::kDiverged);
  EXPECT_EQ(InconclusiveError("x").code(), StatusCode::kInconclusive);
  EXPECT_EQ(InvalidArgumentError("bad input").ToString(),
            "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDiverged), "DIVERGED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> value = 42;
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42);
  EXPECT_EQ(*value, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> error = InvalidArgumentError("nope");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(error.status().message(), "nope");
}

TEST(StatusOrTest, MoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> holder = std::make_unique<int>(7);
  ASSERT_TRUE(holder.ok());
  std::unique_ptr<int> extracted = std::move(holder).value();
  EXPECT_EQ(*extracted, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> text = std::string("hello");
  EXPECT_EQ(text->size(), 5u);
}

}  // namespace
}  // namespace ipdb
