/// Tests for the columnar fact store: dictionary interning, column-table
/// lookups and mutation, columnar-vs-legacy parity (grounding
/// fingerprints, lifted evaluation, size distributions) on randomized
/// instances and queries, and the generation-counter invalidation
/// protocol (structural mutation evicts dependent compiled artifacts;
/// probability updates keep circuits and refresh answers).

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "kc/cache.h"
#include "kc/compile.h"
#include "logic/formula.h"
#include "logic/parser.h"
#include "math/rational.h"
#include "pdb/bid_pdb.h"
#include "pdb/ti_pdb.h"
#include "pqe/lineage.h"
#include "pqe/prepared.h"
#include "pqe/safe_plan.h"
#include "pqe/wmc.h"
#include "storage/column_table.h"
#include "storage/dictionary.h"
#include "storage/ti_store.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace storage {
namespace {

// Satellite guarantee: fact/block counts are 64-bit everywhere.
static_assert(std::is_same_v<decltype(std::declval<const pdb::TiPdbD&>()
                                          .num_facts()),
                             int64_t>);
static_assert(std::is_same_v<decltype(std::declval<const pdb::BidPdbD&>()
                                          .num_blocks()),
                             int64_t>);
static_assert(std::is_same_v<decltype(std::declval<const TiStore&>()
                                          .num_facts()),
                             int64_t>);

TEST(DictionaryTest, InternsAndFindsValues) {
  Dictionary dict;
  const uint32_t a = dict.Intern(rel::Value::Int(7));
  const uint32_t b = dict.Intern(rel::Value::Symbol("alice"));
  const uint32_t c = dict.Intern(rel::Value::Int(7));  // dedup
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2);
  EXPECT_EQ(dict.Find(rel::Value::Int(7)), a);
  EXPECT_EQ(dict.Find(rel::Value::Symbol("alice")), b);
  EXPECT_EQ(dict.Find(rel::Value::Symbol("bob")), Dictionary::kNotFound);
  EXPECT_EQ(dict.ValueAt(a), rel::Value::Int(7));
  EXPECT_EQ(dict.ValueAt(b), rel::Value::Symbol("alice"));
}

TEST(DictionaryTest, SurvivesRehashing) {
  Dictionary dict;
  std::vector<uint32_t> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(dict.Intern(rel::Value::Int(i * 3)));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(dict.Find(rel::Value::Int(i * 3)), ids[i]);
    EXPECT_EQ(dict.ValueAt(ids[i]), rel::Value::Int(i * 3));
  }
  EXPECT_EQ(dict.Find(rel::Value::Int(1)), Dictionary::kNotFound);
}

TEST(ColumnTableTest, BuildLookupAndPrefixRange) {
  ColumnTable table(2);
  const uint32_t rows[][2] = {{3, 1}, {1, 2}, {1, 1}, {2, 9}};
  for (const auto& row : rows) table.AppendRow(row, 0.5);
  ASSERT_TRUE(table.FinishBuild().ok());
  EXPECT_EQ(table.num_rows(), 4);
  const uint32_t probe[2] = {1, 2};
  EXPECT_EQ(table.FindRow(probe), 1);  // row identity = append order
  const uint32_t missing[2] = {2, 2};
  EXPECT_EQ(table.FindRow(missing), -1);
  const uint32_t prefix[1] = {1};
  auto [begin, end] = table.PrefixRange(prefix, 1);
  EXPECT_EQ(end - begin, 2);  // (1,1) and (1,2)
  EXPECT_EQ(table.id(0, table.sorted_row(begin)), 1u);
}

TEST(ColumnTableTest, DetectsDuplicates) {
  ColumnTable table(1);
  const uint32_t a[1] = {4};
  table.AppendRow(a, 0.1);
  table.AppendRow(a, 0.2);
  int64_t duplicate = -1;
  Status status = table.FinishBuild(&duplicate);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(duplicate == 0 || duplicate == 1);
}

TEST(ColumnTableTest, InsertEraseAndExactSideTable) {
  ColumnTable table(1);
  for (uint32_t v : {5u, 1u, 9u}) {
    const uint32_t row[1] = {v};
    table.AppendRow(row, 0.25);
  }
  ASSERT_TRUE(table.FinishBuild().ok());
  const uint32_t seven[1] = {7};
  StatusOr<int64_t> inserted = table.Insert(seven, 0.5);
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(inserted.value(), 3);
  EXPECT_FALSE(table.Insert(seven, 0.5).ok());  // duplicate
  table.SetExact(1, math::Rational::Ratio(1, 4));
  table.SetExact(3, math::Rational::Ratio(1, 2));
  EXPECT_EQ(table.num_exact(), 2);
  // Erase row 0: rows above shift down; exact entries renumber.
  table.EraseRow(0);
  EXPECT_EQ(table.num_rows(), 3);
  const uint32_t one[1] = {1};
  EXPECT_EQ(table.FindRow(one), 0);
  ASSERT_NE(table.ExactAt(0), nullptr);
  EXPECT_EQ(*table.ExactAt(0), math::Rational::Ratio(1, 4));
  ASSERT_NE(table.ExactAt(2), nullptr);
  EXPECT_EQ(*table.ExactAt(2), math::Rational::Ratio(1, 2));
  EXPECT_EQ(table.ExactAt(1), nullptr);
}

rel::Schema TestSchema() {
  return rel::Schema({{"R", 1}, {"S", 2}, {"T", 1}, {"U", 2}});
}

TEST(TiStoreTest, FindFactMarginalAndRoundTrip) {
  rel::Schema schema({{"R", 1}, {"S", 2}});
  pdb::TiPdbD::FactList facts;
  facts.emplace_back(rel::Fact(0, {rel::Value::Int(1)}), 0.25);
  facts.emplace_back(
      rel::Fact(1, {rel::Value::Int(1), rel::Value::Symbol("a")}), 0.5);
  facts.emplace_back(rel::Fact(0, {rel::Value::Int(2)}), 0.75);
  pdb::TiPdbD ti = pdb::TiPdbD::CreateOrDie(schema, facts);
  ASSERT_NE(ti.store(), nullptr);
  const TiStore& store = *ti.store();
  EXPECT_EQ(store.num_facts(), 3);
  for (int64_t i = 0; i < store.num_facts(); ++i) {
    EXPECT_EQ(store.FactAt(i), facts[static_cast<size_t>(i)].first);
    EXPECT_EQ(store.ProbAt(i), facts[static_cast<size_t>(i)].second);
    EXPECT_EQ(store.FindFact(facts[static_cast<size_t>(i)].first), i);
  }
  EXPECT_EQ(store.FindFact(rel::Fact(0, {rel::Value::Int(99)})), -1);
  EXPECT_EQ(store.Marginal(facts[1].first), 0.5);
  // FromStore rebuilds the compatibility view in global-index order.
  StatusOr<pdb::TiPdbD> view = pdb::TiPdbD::FromStore(ti.store());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().facts(), ti.facts());
  EXPECT_EQ(view.value().SizeDistribution(), ti.SizeDistribution());
}

TEST(TiStoreTest, PreservesLegacyValidationMessages) {
  rel::Schema schema({{"R", 1}});
  pdb::TiPdbD::FactList duplicated;
  duplicated.emplace_back(rel::Fact(0, {rel::Value::Int(3)}), 0.5);
  duplicated.emplace_back(rel::Fact(0, {rel::Value::Int(3)}), 0.25);
  StatusOr<pdb::TiPdbD> dup = pdb::TiPdbD::Create(schema, duplicated);
  EXPECT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate fact"), std::string::npos);

  pdb::TiPdbD::FactList wrong;
  wrong.emplace_back(rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(2)}),
                     0.5);
  StatusOr<pdb::TiPdbD> mismatch = pdb::TiPdbD::Create(schema, wrong);
  EXPECT_FALSE(mismatch.ok());
  EXPECT_NE(mismatch.status().message().find("does not match the schema"),
            std::string::npos);

  pdb::TiPdbD::FactList out_of_range;
  out_of_range.emplace_back(rel::Fact(0, {rel::Value::Int(1)}), 1.5);
  StatusOr<pdb::TiPdbD> range = pdb::TiPdbD::Create(schema, out_of_range);
  EXPECT_FALSE(range.ok());
  EXPECT_NE(range.status().message().find("outside [0, 1]"),
            std::string::npos);

  pdb::BidPdbD::Block block;
  block.emplace_back(rel::Fact(0, {rel::Value::Int(3)}), 0.25);
  StatusOr<pdb::BidPdbD> bid = pdb::BidPdbD::Create(schema, {block, block});
  EXPECT_FALSE(bid.ok());
  EXPECT_NE(bid.status().message().find("duplicate fact across blocks"),
            std::string::npos);
}

TEST(TiStoreTest, BytesPerFactWithinBudget) {
  rel::Schema schema({{"S", 2}});
  TiStore::Builder builder(schema);
  const int64_t n = 20000;
  builder.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    builder.Add(rel::Fact(0, {rel::Value::Int(i % 997),
                              rel::Value::Int(i / 997)}),
                0.5);
  }
  StatusOr<std::shared_ptr<TiStore>> store = builder.Finish();
  ASSERT_TRUE(store.ok());
  EXPECT_LE(store.value()->ApproxBytes() / n, 48);
}

/// The lifted parity generator's little sibling: random ∃-prefixed
/// conjunctions over the four-relation schema (self-join-free by
/// construction, hierarchical by chance).
logic::Formula RandomCq(const rel::Schema& schema, int universe,
                        Pcg32* rng) {
  const int num_relations = schema.num_relations();
  std::vector<int> relations(num_relations);
  for (int i = 0; i < num_relations; ++i) relations[i] = i;
  for (int i = num_relations - 1; i > 0; --i) {
    std::swap(relations[i],
              relations[rng->NextBounded(static_cast<uint32_t>(i + 1))]);
  }
  const char* names[] = {"x", "y", "z"};
  const int num_vars = 1 + static_cast<int>(rng->NextBounded(3));
  std::vector<std::string> vars(names, names + num_vars);
  int num_atoms = 1 + static_cast<int>(rng->NextBounded(3));
  size_t next_relation = 0;
  std::vector<logic::Formula> atoms;
  while (num_atoms-- > 0 && next_relation < relations.size()) {
    const int relation = relations[next_relation++];
    std::vector<logic::Term> terms;
    for (int pos = 0; pos < schema.arity(relation); ++pos) {
      if (rng->NextBounded(10) < 8) {
        terms.push_back(logic::Term::Var(
            vars[rng->NextBounded(static_cast<uint32_t>(vars.size()))]));
      } else {
        terms.push_back(logic::Term::Int(static_cast<int64_t>(
            rng->NextBounded(static_cast<uint32_t>(universe)))));
      }
    }
    atoms.push_back(logic::Atom(relation, std::move(terms)));
  }
  return logic::ExistsAll(vars, logic::And(std::move(atoms)));
}

TEST(StorageParityTest, ColumnarGroundingMatchesLegacy) {
  rel::Schema schema = TestSchema();
  Pcg32 rng(0xc01a7);
  int checked = 0;
  while (checked < 200) {
    logic::Formula sentence = RandomCq(schema, 3, &rng);
    pdb::TiPdb<math::Rational> exact_ti =
        testing_util::RandomRationalTi(schema, 8, 3, 10, &rng);
    pdb::TiPdbD::FactList shadow;
    for (const auto& [fact, marginal] : exact_ti.facts()) {
      shadow.emplace_back(fact, marginal.ToDouble());
    }
    pdb::TiPdbD ti = pdb::TiPdbD::CreateOrDie(schema, std::move(shadow));
    ASSERT_NE(ti.store(), nullptr);

    // Structural identity: the columnar and legacy grounders must agree
    // node for node (same var ids, same domain order), which the 128-bit
    // fingerprint certifies.
    pqe::Lineage legacy_lineage;
    StatusOr<pqe::NodeId> legacy =
        pqe::GroundSentenceLegacy(ti, sentence, &legacy_lineage);
    pqe::Lineage columnar_lineage;
    StatusOr<pqe::NodeId> columnar =
        pqe::GroundSentence(*ti.store(), sentence, &columnar_lineage);
    ASSERT_TRUE(legacy.ok()) << sentence.ToString(schema);
    ASSERT_TRUE(columnar.ok()) << sentence.ToString(schema);
    EXPECT_EQ(kc::LineageFingerprint(legacy_lineage, legacy.value()),
              kc::LineageFingerprint(columnar_lineage, columnar.value()))
        << sentence.ToString(schema);

    // Same full query answer through the public ladder.
    StatusOr<double> probability =
        pqe::QueryProbability(ti, sentence, nullptr);
    ASSERT_TRUE(probability.ok()) << sentence.ToString(schema);
    StatusOr<double> brute = pqe::QueryProbabilityBruteForce(ti, sentence);
    ASSERT_TRUE(brute.ok()) << sentence.ToString(schema);
    EXPECT_NEAR(probability.value(), brute.value(), 1e-9)
        << sentence.ToString(schema);

    // Exact lifted parity where the query is in the safe class: the
    // columnar evaluator must reproduce the legacy rationals bit for
    // bit (EXPECT_EQ, no tolerance).
    StatusOr<pqe::LiftedPlan> plan = pqe::LiftedPlan::Compile(sentence);
    if (plan.ok()) {
      ASSERT_NE(exact_ti.store(), nullptr);
      StatusOr<math::Rational> legacy_lifted =
          plan.value().Evaluate(exact_ti);
      StatusOr<math::Rational> columnar_lifted =
          plan.value().EvaluateExact(*exact_ti.store());
      ASSERT_TRUE(legacy_lifted.ok()) << sentence.ToString(schema);
      ASSERT_TRUE(columnar_lifted.ok()) << sentence.ToString(schema);
      EXPECT_EQ(legacy_lifted.value(), columnar_lifted.value())
          << sentence.ToString(schema);

      StatusOr<double> legacy_double = plan.value().Evaluate(ti);
      StatusOr<double> columnar_double =
          plan.value().Evaluate(*ti.store());
      ASSERT_TRUE(legacy_double.ok());
      ASSERT_TRUE(columnar_double.ok());
      EXPECT_NEAR(legacy_double.value(), columnar_double.value(), 1e-12)
          << sentence.ToString(schema);
    }
    ++checked;
  }
}

TEST(StorageParityTest, SizeDistributionUnchangedByColumnarBacking) {
  rel::Schema schema = TestSchema();
  Pcg32 rng(0x512e);
  pdb::TiPdb<math::Rational> exact_ti =
      testing_util::RandomRationalTi(schema, 12, 3, 10, &rng);
  pdb::TiPdbD::FactList shadow;
  for (const auto& [fact, marginal] : exact_ti.facts()) {
    shadow.emplace_back(fact, marginal.ToDouble());
  }
  pdb::TiPdbD ti = pdb::TiPdbD::CreateOrDie(schema, shadow);
  // The compatibility view preserves insertion order, so the Poisson-
  // binomial DP sees the same marginal sequence as the pre-columnar
  // engine: bit-identical distribution.
  std::vector<double> expected;
  {
    std::vector<double> marginals;
    for (const auto& [fact, marginal] : shadow) marginals.push_back(marginal);
    expected = prob::PoissonBinomialPmf(marginals);
  }
  EXPECT_EQ(ti.SizeDistribution(), expected);
}

rel::Fact ChainR(int i) { return rel::Fact(0, {rel::Value::Int(i)}); }
rel::Fact ChainS(int i, int j) {
  return rel::Fact(1, {rel::Value::Int(i), rel::Value::Int(j)});
}

/// A small chain instance as a *mutable* store plus its query.
std::shared_ptr<TiStore> ChainStore(int hubs) {
  rel::Schema schema({{"R", 1}, {"S", 2}});
  TiStore::Builder builder(schema);
  for (int i = 0; i < hubs; ++i) {
    builder.Add(ChainR(i), 0.3 + 0.05 * (i % 10));
    builder.Add(ChainS(i, 1000 + (i % 3)), 0.2 + 0.04 * (i % 7));
  }
  StatusOr<std::shared_ptr<TiStore>> store = builder.Finish();
  EXPECT_TRUE(store.ok());
  return store.value();
}

logic::Formula ChainQuery(const rel::Schema& schema) {
  return logic::ParseSentence("exists x y. R(x) & S(x, y)", schema).value();
}

double BruteForceAnswer(const std::shared_ptr<TiStore>& store,
                        const logic::Formula& sentence) {
  StatusOr<pdb::TiPdbD> view = pdb::TiPdbD::FromStore(store);
  EXPECT_TRUE(view.ok());
  StatusOr<double> brute =
      pqe::QueryProbabilityBruteForce(view.value(), sentence);
  EXPECT_TRUE(brute.ok());
  return brute.value();
}

TEST(StorageInvalidationTest, StructuralMutationEvictsOnlyDependents) {
  kc::GlobalCompiledQueryCache().Clear();
  std::shared_ptr<TiStore> mutated = ChainStore(4);
  std::shared_ptr<TiStore> untouched = ChainStore(6);
  logic::Formula sentence = ChainQuery(mutated->schema());

  pqe::PreparedQuery::Options options;
  options.allow_lifted = false;  // exercise the circuit pipeline
  StatusOr<pqe::PreparedQuery> a =
      pqe::PreparedQuery::Prepare(mutated, sentence, options);
  StatusOr<pqe::PreparedQuery> b =
      pqe::PreparedQuery::Prepare(untouched, sentence, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto [a_hi, a_lo] = a.value().fingerprint();
  auto [b_hi, b_lo] = b.value().fingerprint();
  ASSERT_NE(std::make_pair(a_hi, a_lo), std::make_pair(b_hi, b_lo));
  EXPECT_TRUE(kc::GlobalCompiledQueryCache().ContainsFingerprint(a_hi, a_lo));
  EXPECT_TRUE(kc::GlobalCompiledQueryCache().ContainsFingerprint(b_hi, b_lo));

  // Erasing a fact is structural: the dependent artifact is evicted,
  // the untouched store's artifact survives.
  ASSERT_TRUE(mutated->Erase(ChainR(3)).ok());
  EXPECT_FALSE(
      kc::GlobalCompiledQueryCache().ContainsFingerprint(a_hi, a_lo));
  EXPECT_TRUE(kc::GlobalCompiledQueryCache().ContainsFingerprint(b_hi, b_lo));

  // Re-query recompiles cold and answers the mutated instance.
  StatusOr<double> requeried = a.value().Query();
  ASSERT_TRUE(requeried.ok());
  EXPECT_NEAR(requeried.value(), BruteForceAnswer(mutated, sentence), 1e-9);
  EXPECT_EQ(a.value().recompiles(), 1);
  EXPECT_EQ(a.value().incremental_refreshes(), 0);

  // Insert is structural too.
  ASSERT_TRUE(mutated->Insert(ChainR(40), 0.5).ok());
  StatusOr<double> after_insert = a.value().Query();
  ASSERT_TRUE(after_insert.ok());
  EXPECT_NEAR(after_insert.value(), BruteForceAnswer(mutated, sentence),
              1e-9);
  EXPECT_EQ(a.value().recompiles(), 2);
}

TEST(StorageInvalidationTest, ProbabilityUpdateKeepsCircuitRefreshesAnswer) {
  kc::GlobalCompiledQueryCache().Clear();
  std::shared_ptr<TiStore> store = ChainStore(5);
  logic::Formula sentence = ChainQuery(store->schema());
  pqe::PreparedQuery::Options options;
  options.allow_lifted = false;
  StatusOr<pqe::PreparedQuery> prepared =
      pqe::PreparedQuery::Prepare(store, sentence, options);
  ASSERT_TRUE(prepared.ok());
  auto [hi, lo] = prepared.value().fingerprint();

  const uint64_t structure_before = store->structure_generation();
  ASSERT_TRUE(store->UpdateProbability(ChainR(2), 0.9).ok());
  EXPECT_EQ(store->structure_generation(), structure_before);
  // The fact set (hence the fingerprint and circuit) is unchanged: the
  // compiled artifact must SURVIVE a probability update...
  EXPECT_TRUE(kc::GlobalCompiledQueryCache().ContainsFingerprint(hi, lo));
  // ...while the memoized answer is refreshed from the new marginals.
  StatusOr<double> refreshed = prepared.value().Query();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_NEAR(refreshed.value(), BruteForceAnswer(store, sentence), 1e-9);
  EXPECT_EQ(prepared.value().incremental_refreshes(), 1);
  EXPECT_EQ(prepared.value().recompiles(), 0);

  // Untouched store: the memoized answer is served as-is.
  StatusOr<double> memoized = prepared.value().Query();
  ASSERT_TRUE(memoized.ok());
  EXPECT_EQ(memoized.value(), refreshed.value());
  EXPECT_EQ(prepared.value().incremental_refreshes(), 1);

  // Exact update round-trips through the side table.
  ASSERT_TRUE(store
                  ->UpdateProbabilityExact(ChainR(2),
                                           math::Rational::Ratio(1, 4))
                  .ok());
  const math::Rational* exact =
      store->ExactAt(store->FindFact(ChainR(2)));
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(*exact, math::Rational::Ratio(1, 4));
}

TEST(StorageInvalidationTest, ConcurrentReadersAndRegistrations) {
  std::shared_ptr<TiStore> store = ChainStore(32);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < 200; ++i) {
        const int hub = (t * 53 + i) % 32;
        EXPECT_GE(store->FindFact(ChainR(hub)), 0);
        EXPECT_GT(store->Marginal(ChainR(hub)), 0.0);
        store->RegisterDependentArtifact(static_cast<uint64_t>(t),
                                         static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_GT(store->num_dependent_artifacts(), 0);
}

TEST(TiStoreTest, ErasingARelationsLastFactLeavesItEmptyButUsable) {
  rel::Schema schema({{"R", 2}, {"S", 1}});
  TiStore::Builder builder(schema);
  builder.Add(rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(2)}), 0.5);
  builder.Add(rel::Fact(1, {rel::Value::Symbol("only")}), 0.75);
  std::shared_ptr<TiStore> store = builder.Finish().value();
  const rel::Fact only(1, {rel::Value::Symbol("only")});
  ASSERT_TRUE(store->Erase(only).ok());
  EXPECT_EQ(store->table(1).num_rows(), 0);
  EXPECT_EQ(store->num_facts(), 1);
  EXPECT_EQ(store->FindFact(only), -1);
  // The emptied relation still accepts inserts.
  StatusOr<int64_t> back = store->Insert(only, 0.25);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(store->FactAt(back.value()), only);
  EXPECT_EQ(store->ProbAt(back.value()), 0.25);
}

TEST(TiStoreTest, MutationsOfAnErasedFactAreInvalidArgument) {
  rel::Schema schema({{"R", 1}});
  TiStore::Builder builder(schema);
  builder.Add(rel::Fact(0, {rel::Value::Int(1)}), 0.5);
  builder.Add(rel::Fact(0, {rel::Value::Int(2)}), 0.5);
  std::shared_ptr<TiStore> store = builder.Finish().value();
  const rel::Fact gone(0, {rel::Value::Int(1)});
  ASSERT_TRUE(store->Erase(gone).ok());
  EXPECT_EQ(store->UpdateProbability(gone, 0.9).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store->UpdateProbabilityExact(gone, math::Rational::Ratio(1, 3))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store->Erase(gone).code(), StatusCode::kInvalidArgument);
  // A failed mutation leaves the survivor untouched.
  EXPECT_EQ(store->num_facts(), 1);
  EXPECT_EQ(store->ProbAt(store->FindFact(rel::Fact(0, {rel::Value::Int(2)}))),
            0.5);
  // Re-inserting the erased fact appends it as a fresh row at the end.
  StatusOr<int64_t> again = store->Insert(gone, 0.0625);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), store->num_facts() - 1);
  EXPECT_EQ(store->ProbAt(again.value()), 0.0625);
}

TEST(TiStoreTest, ExactSideTableChurnTracksTheLatestUpdate) {
  rel::Schema schema({{"R", 1}});
  TiStore::Builder builder(schema);
  builder.Add(rel::Fact(0, {rel::Value::Int(1)}), 0.5);
  builder.AddExact(rel::Fact(0, {rel::Value::Int(2)}),
                   math::Rational::Ratio(2, 5));
  std::shared_ptr<TiStore> store = builder.Finish().value();
  const rel::Fact one(0, {rel::Value::Int(1)});
  const rel::Fact two(0, {rel::Value::Int(2)});
  // Double-only fact gains an exact entry...
  ASSERT_TRUE(
      store->UpdateProbabilityExact(one, math::Rational::Ratio(1, 3)).ok());
  {
    const math::Rational* exact = store->ExactAt(store->FindFact(one));
    ASSERT_NE(exact, nullptr);
    EXPECT_EQ(*exact, math::Rational::Ratio(1, 3));
  }
  // ...and a plain double update clears it again: the exact side table
  // never serves a value the double column has since diverged from.
  ASSERT_TRUE(store->UpdateProbability(one, 0.5).ok());
  EXPECT_EQ(store->ExactAt(store->FindFact(one)), nullptr);
  // Overwriting an existing exact entry replaces it in place.
  ASSERT_TRUE(
      store->UpdateProbabilityExact(two, math::Rational::Ratio(2, 7)).ok());
  {
    const math::Rational* exact = store->ExactAt(store->FindFact(two));
    ASSERT_NE(exact, nullptr);
    EXPECT_EQ(*exact, math::Rational::Ratio(2, 7));
  }
  // Erasing a fact drops its exact entry with it.
  ASSERT_TRUE(store->Erase(two).ok());
  EXPECT_EQ(store->table(0).num_exact(), 0);
}

TEST(TiStoreTest, ExactViewRequiresExactMarginals) {
  rel::Schema schema({{"R", 1}});
  TiStore::Builder builder(schema);
  builder.Add(rel::Fact(0, {rel::Value::Int(1)}), 0.5);  // double only
  StatusOr<std::shared_ptr<TiStore>> store = builder.Finish();
  ASSERT_TRUE(store.ok());
  StatusOr<pdb::TiPdbQ> exact = pdb::TiPdbQ::FromStore(store.value());
  EXPECT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kFailedPrecondition);
  // And the exact lifted evaluator enforces the same precondition.
  pqe::LiftedPlan plan =
      pqe::LiftedPlan::Compile(
          logic::ParseSentence("exists x. R(x)", schema).value())
          .value();
  StatusOr<math::Rational> result = plan.EvaluateExact(*store.value());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace storage
}  // namespace ipdb
