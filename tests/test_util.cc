#include "test_util.h"

#include <set>
#include <utility>

#include "util/check.h"

namespace ipdb {
namespace testing_util {

rel::Instance RandomInstance(const rel::Schema& schema, int universe,
                             double density, Pcg32* rng) {
  std::vector<rel::Fact> facts;
  for (rel::RelationId r = 0; r < schema.num_relations(); ++r) {
    int arity = schema.arity(r);
    // Enumerate the full universe^arity candidate set.
    std::vector<int> odometer(arity, 0);
    while (true) {
      if (rng->NextBernoulli(density)) {
        std::vector<rel::Value> args;
        for (int v : odometer) args.push_back(rel::Value::Int(v));
        facts.emplace_back(r, std::move(args));
      }
      int pos = 0;
      while (pos < arity) {
        if (++odometer[pos] < universe) break;
        odometer[pos] = 0;
        ++pos;
      }
      if (pos == arity) break;
      if (arity == 0) break;
    }
    if (arity == 0) continue;
  }
  return rel::Instance(std::move(facts));
}

pdb::FinitePdb<math::Rational> RandomRationalPdb(const rel::Schema& schema,
                                                 int num_worlds,
                                                 int universe,
                                                 double density, int denom,
                                                 Pcg32* rng) {
  // Random positive integer weights summing to denom.
  std::vector<int64_t> weights(num_worlds, 1);
  int64_t remaining = denom - num_worlds;
  IPDB_CHECK_GE(remaining, 0);
  for (int i = 0; i < num_worlds; ++i) {
    int64_t take = i + 1 == num_worlds
                       ? remaining
                       : rng->NextBounded(static_cast<uint32_t>(remaining + 1));
    weights[i] += take;
    remaining -= take;
  }
  // Distinct random worlds.
  std::set<rel::Instance> seen;
  pdb::FinitePdb<math::Rational>::WorldList worlds;
  for (int i = 0; i < num_worlds; ++i) {
    rel::Instance instance = RandomInstance(schema, universe, density, rng);
    while (seen.count(instance) != 0) {
      instance = RandomInstance(schema, universe, density, rng);
    }
    seen.insert(instance);
    worlds.emplace_back(std::move(instance),
                        math::Rational::Ratio(weights[i], denom));
  }
  return pdb::FinitePdb<math::Rational>::CreateOrDie(schema,
                                                     std::move(worlds));
}

pdb::FinitePdb<double> ToDoublePdb(const pdb::FinitePdb<math::Rational>& q) {
  pdb::FinitePdb<double>::WorldList worlds;
  for (const auto& [instance, probability] : q.worlds()) {
    worlds.emplace_back(instance, probability.ToDouble());
  }
  return pdb::FinitePdb<double>::CreateOrDie(q.schema(), std::move(worlds));
}

pdb::TiPdb<math::Rational> RandomRationalTi(const rel::Schema& schema,
                                            int num_facts, int universe,
                                            int denom, Pcg32* rng) {
  std::set<rel::Fact> seen;
  pdb::TiPdb<math::Rational>::FactList facts;
  int guard = 0;
  while (static_cast<int>(facts.size()) < num_facts) {
    IPDB_CHECK_LT(++guard, 10000) << "universe too small for fact count";
    rel::RelationId r = static_cast<rel::RelationId>(
        rng->NextBounded(schema.num_relations()));
    std::vector<rel::Value> args;
    for (int p = 0; p < schema.arity(r); ++p) {
      args.push_back(rel::Value::Int(rng->NextBounded(universe)));
    }
    rel::Fact fact(r, std::move(args));
    if (!seen.insert(fact).second) continue;
    int64_t numerator = 1 + rng->NextBounded(static_cast<uint32_t>(denom - 1));
    facts.emplace_back(std::move(fact),
                       math::Rational::Ratio(numerator, denom));
  }
  return pdb::TiPdb<math::Rational>::CreateOrDie(schema, std::move(facts));
}

}  // namespace testing_util
}  // namespace ipdb
