#ifndef IPDB_TESTS_TEST_UTIL_H_
#define IPDB_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "math/rational.h"
#include "pdb/finite_pdb.h"
#include "pdb/ti_pdb.h"
#include "relational/fact.h"
#include "relational/instance.h"
#include "relational/schema.h"
#include "util/random.h"

namespace ipdb {
namespace testing_util {

/// A random τ-instance over a small integer universe [0, universe):
/// each candidate fact is included with probability `density`.
rel::Instance RandomInstance(const rel::Schema& schema, int universe,
                             double density, Pcg32* rng);

/// A random finite PDB with `num_worlds` worlds of random instances and
/// random rational probabilities (denominator `denom`) summing to one.
pdb::FinitePdb<math::Rational> RandomRationalPdb(const rel::Schema& schema,
                                                 int num_worlds,
                                                 int universe,
                                                 double density, int denom,
                                                 Pcg32* rng);

/// The double shadow of a rational PDB.
pdb::FinitePdb<double> ToDoublePdb(const pdb::FinitePdb<math::Rational>& q);

/// A random finite TI-PDB with rational marginals k/denom.
pdb::TiPdb<math::Rational> RandomRationalTi(const rel::Schema& schema,
                                            int num_facts, int universe,
                                            int denom, Pcg32* rng);

}  // namespace testing_util
}  // namespace ipdb

#endif  // IPDB_TESTS_TEST_UTIL_H_
