#include <gtest/gtest.h>

#include <cmath>

#include "core/paper_examples.h"
#include "pdb/bid_pdb.h"
#include "pdb/metrics.h"
#include "pdb/sampling.h"
#include "pdb/ti_pdb.h"
#include "util/random.h"

namespace ipdb {
namespace pdb {
namespace {

using math::Rational;

rel::Schema UnarySchema() { return rel::Schema({{"U", 1}}); }

rel::Fact U(int64_t v) { return rel::Fact(0, {rel::Value::Int(v)}); }

TEST(TiPdbTest, CreateValidates) {
  rel::Schema schema = UnarySchema();
  EXPECT_FALSE(TiPdb<double>::Create(schema, {{U(1), 1.5}}).ok());
  EXPECT_FALSE(TiPdb<double>::Create(schema, {{U(1), -0.1}}).ok());
  EXPECT_FALSE(
      TiPdb<double>::Create(schema, {{U(1), 0.5}, {U(1), 0.5}}).ok());
  rel::Fact bad(3, {rel::Value::Int(1)});
  EXPECT_FALSE(TiPdb<double>::Create(schema, {{bad, 0.5}}).ok());
}

TEST(TiPdbTest, WorldProbability) {
  rel::Schema schema = UnarySchema();
  TiPdb<Rational> ti = TiPdb<Rational>::CreateOrDie(
      schema,
      {{U(1), Rational::Ratio(1, 2)}, {U(2), Rational::Ratio(1, 3)}});
  EXPECT_EQ(ti.WorldProbability(rel::Instance()), Rational::Ratio(1, 3));
  EXPECT_EQ(ti.WorldProbability(rel::Instance({U(1)})),
            Rational::Ratio(1, 3));
  EXPECT_EQ(ti.WorldProbability(rel::Instance({U(1), U(2)})),
            Rational::Ratio(1, 6));
  // Foreign facts give probability 0.
  EXPECT_EQ(ti.WorldProbability(rel::Instance({U(9)})), Rational(0));
  EXPECT_EQ(ti.MarginalSum(), Rational::Ratio(5, 6));
}

TEST(TiPdbTest, ExpandIsConsistent) {
  rel::Schema schema = UnarySchema();
  TiPdb<Rational> ti = TiPdb<Rational>::CreateOrDie(
      schema,
      {{U(1), Rational::Ratio(1, 2)}, {U(2), Rational::Ratio(1, 4)}});
  FinitePdb<Rational> expanded = ti.Expand();
  EXPECT_EQ(expanded.num_worlds(), 4);
  EXPECT_TRUE(expanded.IsTupleIndependent());
  for (const auto& [world, probability] : expanded.worlds()) {
    EXPECT_EQ(probability, ti.WorldProbability(world));
  }
  // Marginals agree.
  EXPECT_EQ(expanded.Marginal(U(1)), Rational::Ratio(1, 2));
}

TEST(TiPdbTest, ExpandSkipsCertainFacts) {
  rel::Schema schema = UnarySchema();
  TiPdb<Rational> ti = TiPdb<Rational>::CreateOrDie(
      schema, {{U(1), Rational(1)},
               {U(2), Rational::Ratio(1, 2)},
               {U(3), Rational(0)}});
  FinitePdb<Rational> expanded = ti.Expand();
  // Only U(2) is uncertain: two worlds, both containing U(1), never U(3).
  EXPECT_EQ(expanded.num_worlds(), 2);
  for (const auto& [world, probability] : expanded.worlds()) {
    EXPECT_TRUE(world.Contains(U(1)));
    EXPECT_FALSE(world.Contains(U(3)));
  }
}

TEST(TiPdbTest, SizeDistributionAndMoments) {
  rel::Schema schema = UnarySchema();
  TiPdb<double> ti = TiPdb<double>::CreateOrDie(
      schema, {{U(1), 0.5}, {U(2), 0.25}});
  std::vector<double> pmf = ti.SizeDistribution();
  EXPECT_DOUBLE_EQ(pmf[0], 0.375);
  EXPECT_DOUBLE_EQ(ti.SizeMoment(1), 0.75);
}

TEST(TiPdbTest, SamplingMatchesDistribution) {
  rel::Schema schema = UnarySchema();
  TiPdb<double> ti = TiPdb<double>::CreateOrDie(
      schema, {{U(1), 0.3}, {U(2), 0.7}, {U(3), 0.5}});
  FinitePdb<double> expanded = ti.Expand();
  Pcg32 rng(41);
  EmpiricalDistribution empirical =
      Accumulate([&] { return ti.Sample(&rng); }, 50000);
  EXPECT_LT(empirical.TvDistance(expanded), 0.02);
}

TEST(BidPdbTest, CreateValidates) {
  rel::Schema schema = UnarySchema();
  // Block mass above 1 rejected.
  EXPECT_FALSE(BidPdb<double>::Create(
                   schema, {{{U(1), 0.6}, {U(2), 0.6}}})
                   .ok());
  // Duplicate facts across blocks rejected.
  EXPECT_FALSE(BidPdb<double>::Create(
                   schema, {{{U(1), 0.2}}, {{U(1), 0.2}}})
                   .ok());
}

TEST(BidPdbTest, WorldProbabilityAndResidual) {
  rel::Schema schema = UnarySchema();
  BidPdb<Rational> bid = BidPdb<Rational>::CreateOrDie(
      schema, {{{U(1), Rational::Ratio(1, 2)}, {U(2), Rational::Ratio(1, 4)}},
               {{U(3), Rational::Ratio(1, 3)}}});
  EXPECT_EQ(bid.Residual(0), Rational::Ratio(1, 4));
  EXPECT_EQ(bid.Residual(1), Rational::Ratio(2, 3));
  EXPECT_EQ(bid.WorldProbability(rel::Instance()),
            Rational::Ratio(1, 4) * Rational::Ratio(2, 3));
  EXPECT_EQ(bid.WorldProbability(rel::Instance({U(1), U(3)})),
            Rational::Ratio(1, 6));
  // Two facts of one block: impossible.
  EXPECT_EQ(bid.WorldProbability(rel::Instance({U(1), U(2)})), Rational(0));
}

TEST(BidPdbTest, ExpandIsBid) {
  rel::Schema schema = UnarySchema();
  BidPdb<Rational> bid = BidPdb<Rational>::CreateOrDie(
      schema, {{{U(1), Rational::Ratio(1, 2)}, {U(2), Rational::Ratio(1, 4)}},
               {{U(3), Rational::Ratio(1, 3)}}});
  FinitePdb<Rational> expanded = bid.Expand();
  EXPECT_EQ(expanded.num_worlds(), 6);  // 3 options × 2 options
  EXPECT_TRUE(
      expanded.IsBlockIndependentDisjoint({{U(1), U(2)}, {U(3)}}));
  Rational total;
  for (const auto& [world, probability] : expanded.worlds()) {
    total += probability;
    EXPECT_EQ(probability, bid.WorldProbability(world));
  }
  EXPECT_EQ(total, Rational(1));
}

TEST(BidPdbTest, SamplingMatchesDistribution) {
  rel::Schema schema = UnarySchema();
  BidPdb<double> bid = BidPdb<double>::CreateOrDie(
      schema, {{{U(1), 0.5}, {U(2), 0.25}}, {{U(3), 0.4}}});
  FinitePdb<double> expanded = bid.Expand();
  Pcg32 rng(43);
  EmpiricalDistribution empirical =
      Accumulate([&] { return bid.Sample(&rng); }, 50000);
  EXPECT_LT(empirical.TvDistance(expanded), 0.02);
}

TEST(CountableTiTest, WellDefinedIffMarginalsSummable) {
  // Example 5.6: p_i = 1/(i²+1) — summable, hence a TI-PDB.
  pdb::CountableTiPdb ti = core::Example56Ti();
  SumAnalysis analysis = ti.CheckWellDefined();
  EXPECT_EQ(analysis.kind, SumAnalysis::Kind::kConverged);

  // Harmonic marginals are not summable: certified NOT a TI-PDB
  // (Theorem 2.4 fails).
  CountableTiPdb::Family family;
  family.schema = UnarySchema();
  family.fact_at = [](int64_t i) { return U(i + 1); };
  family.marginal_at = [](int64_t i) { return 1.0 / (i + 1.0); };
  family.marginal_tail_lower = [](int64_t N) {
    return PowerTailLower(1.0, 1.0, N < 1 ? 1 : N);
  };
  family.description = "harmonic marginals";
  auto bad = CountableTiPdb::Create(std::move(family));
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().CheckWellDefined().kind,
            SumAnalysis::Kind::kDiverged);
}

TEST(CountableTiTest, MomentIntervalsFinite) {
  pdb::CountableTiPdb ti = core::Example56Ti();
  // Proposition 3.2: all moments finite. Spot-check k = 1..3 and compare
  // E|D| with Σ p_i.
  for (int k = 1; k <= 3; ++k) {
    auto moment = ti.SizeMomentInterval(k);
    ASSERT_TRUE(moment.ok());
    EXPECT_TRUE(moment.value().is_finite()) << k;
  }
  SumAnalysis marginal_sum = ti.CheckWellDefined();
  auto m1 = ti.SizeMomentInterval(1);
  ASSERT_TRUE(m1.ok());
  EXPECT_TRUE(m1.value().Contains(marginal_sum.enclosure.midpoint()));
}

TEST(CountableTiTest, SamplingAndTruncation) {
  pdb::CountableTiPdb ti = core::Example56Ti();
  Pcg32 rng(47);
  auto sample = ti.Sample(&rng, 1e-6);
  ASSERT_TRUE(sample.ok());
  // The truncated prefix is a valid finite TI with the same marginals.
  TiPdb<double> prefix = ti.Truncate(8);
  EXPECT_EQ(prefix.num_facts(), 8);
  EXPECT_DOUBLE_EQ(prefix.Marginal(U(1)), 0.5);
}

TEST(CountableBidTest, WellDefinedAndSampling) {
  pdb::CountableBidPdb bid = core::PropositionD3Bid();
  EXPECT_EQ(bid.CheckWellDefined().kind, SumAnalysis::Kind::kConverged);
  Pcg32 rng(53);
  auto sample = bid.Sample(&rng, 1e-6);
  ASSERT_TRUE(sample.ok());
  // No two facts of one block can be sampled together.
  for (const rel::Fact& f : sample.value().facts()) {
    for (const rel::Fact& g : sample.value().facts()) {
      if (f == g) continue;
      EXPECT_NE(f.args()[0], g.args()[0]);
    }
  }
  BidPdb<double> prefix = bid.Truncate(4);
  EXPECT_EQ(prefix.num_blocks(), 4);
}

}  // namespace
}  // namespace pdb
}  // namespace ipdb
