#include "pdb/top_k.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace pdb {
namespace {

rel::Schema UnarySchema() { return rel::Schema({{"U", 1}}); }

rel::Fact U(int64_t v) { return rel::Fact(0, {rel::Value::Int(v)}); }

TEST(TopKTest, MatchesExpansionOrdering) {
  Pcg32 rng(401);
  rel::Schema schema = UnarySchema();
  for (int trial = 0; trial < 10; ++trial) {
    pdb::TiPdb<math::Rational> exact =
        testing_util::RandomRationalTi(schema, 8, 12, 9, &rng);
    TiPdb<double>::FactList facts;
    for (const auto& [fact, marginal] : exact.facts()) {
      facts.emplace_back(fact, marginal.ToDouble());
    }
    TiPdb<double> ti = TiPdb<double>::CreateOrDie(schema, std::move(facts));

    auto best = TopKWorlds(ti, 10);
    ASSERT_TRUE(best.ok());
    ASSERT_EQ(best.value().size(), 10u);

    // Reference: sort the full expansion.
    std::vector<std::pair<rel::Instance, double>> reference =
        TopKWorlds(ti.Expand(), 10);
    for (size_t i = 0; i < best.value().size(); ++i) {
      // Probabilities must agree exactly in value (ties may reorder
      // worlds of equal probability).
      EXPECT_NEAR(best.value()[i].second, reference[i].second, 1e-12)
          << "trial " << trial << " rank " << i;
      EXPECT_NEAR(best.value()[i].second,
                  ti.WorldProbability(best.value()[i].first), 1e-12);
    }
    // Non-increasing order.
    for (size_t i = 1; i < best.value().size(); ++i) {
      EXPECT_GE(best.value()[i - 1].second,
                best.value()[i].second - 1e-15);
    }
    // No duplicate worlds.
    std::vector<rel::Instance> seen;
    for (const auto& [world, probability] : best.value()) {
      seen.push_back(world);
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
  }
}

TEST(TopKTest, ModeWorldFirst) {
  rel::Schema schema = UnarySchema();
  TiPdb<double> ti = TiPdb<double>::CreateOrDie(
      schema, {{U(1), 0.9}, {U(2), 0.2}, {U(3), 0.6}});
  auto best = TopKWorlds(ti, 1);
  ASSERT_TRUE(best.ok());
  // Mode: include U(1) and U(3), exclude U(2).
  EXPECT_EQ(best.value()[0].first, rel::Instance({U(1), U(3)}));
  EXPECT_NEAR(best.value()[0].second, 0.9 * 0.8 * 0.6, 1e-12);
}

TEST(TopKTest, ScalesBeyondExpansion) {
  // 40 facts: 2^40 worlds — expansion impossible, top-k fine.
  rel::Schema schema = UnarySchema();
  TiPdb<double>::FactList facts;
  double mode = 1.0;
  for (int i = 0; i < 40; ++i) {
    double p = 0.1 + 0.02 * i;
    facts.emplace_back(U(i), p);
    mode *= std::max(p, 1.0 - p);
  }
  TiPdb<double> ti = TiPdb<double>::CreateOrDie(schema, std::move(facts));
  auto best = TopKWorlds(ti, 100);
  ASSERT_TRUE(best.ok());
  ASSERT_EQ(best.value().size(), 100u);
  EXPECT_NEAR(best.value()[0].second, mode, 1e-12);
  for (size_t i = 1; i < 100; ++i) {
    EXPECT_GE(best.value()[i - 1].second, best.value()[i].second - 1e-18);
  }
}

TEST(TopKTest, DeterministicFactsHandled) {
  rel::Schema schema = UnarySchema();
  TiPdb<double> ti = TiPdb<double>::CreateOrDie(
      schema, {{U(1), 1.0}, {U(2), 0.0}, {U(3), 0.5}});
  auto best = TopKWorlds(ti, 4);
  ASSERT_TRUE(best.ok());
  // Two worlds of probability 1/2, then probability-0 variants.
  EXPECT_NEAR(best.value()[0].second, 0.5, 1e-12);
  EXPECT_NEAR(best.value()[1].second, 0.5, 1e-12);
  EXPECT_NEAR(best.value()[2].second, 0.0, 1e-12);
  EXPECT_TRUE(best.value()[0].first.Contains(U(1)));
  EXPECT_FALSE(best.value()[0].first.Contains(U(2)));
}

TEST(TopKTest, Validation) {
  rel::Schema schema = UnarySchema();
  TiPdb<double> ti =
      TiPdb<double>::CreateOrDie(schema, {{U(1), 0.5}});
  EXPECT_FALSE(TopKWorlds(ti, -1).ok());
  auto empty = TopKWorlds(ti, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
  // More than 2^n requested: returns all worlds.
  auto all = TopKWorlds(ti, 100);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 2u);
}

}  // namespace
}  // namespace pdb
}  // namespace ipdb
