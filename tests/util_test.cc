#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/interval.h"
#include "util/random.h"
#include "util/series.h"

namespace ipdb {
namespace {

TEST(IntervalTest, BasicProperties) {
  Interval i(1.0, 3.0);
  EXPECT_DOUBLE_EQ(i.lo(), 1.0);
  EXPECT_DOUBLE_EQ(i.hi(), 3.0);
  EXPECT_DOUBLE_EQ(i.width(), 2.0);
  EXPECT_DOUBLE_EQ(i.midpoint(), 2.0);
  EXPECT_TRUE(i.Contains(2.0));
  EXPECT_TRUE(i.Contains(1.0));
  EXPECT_FALSE(i.Contains(0.999));
  EXPECT_TRUE(i.CertainlyBelow(3.5));
  EXPECT_FALSE(i.CertainlyBelow(3.0));
  EXPECT_TRUE(i.CertainlyAbove(0.5));
}

TEST(IntervalTest, PointAndAtLeast) {
  EXPECT_TRUE(Interval::Point(2.0).is_point());
  EXPECT_FALSE(Interval::AtLeast(1.0).is_finite());
  EXPECT_TRUE(Interval::AtLeast(1.0).Contains(1e100));
}

TEST(IntervalTest, Arithmetic) {
  Interval a(1.0, 2.0);
  Interval b(-1.0, 3.0);
  EXPECT_EQ(a + b, Interval(0.0, 5.0));
  EXPECT_EQ(a - b, Interval(-2.0, 3.0));
  EXPECT_EQ(a * b, Interval(-2.0, 6.0));
  EXPECT_EQ(a.ScaleNonNegative(2.0), Interval(2.0, 4.0));
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ(Interval(0.5, 1.5).ToString(), "[0.5, 1.5]");
  EXPECT_EQ(Interval::AtLeast(0.0).ToString(), "[0, inf]");
}

TEST(RandomTest, ReferenceVectors) {
  // Golden values from O'Neill's pcg32 reference implementation
  // (pcg32-global-demo with pcg32_srandom(42u, 54u)); pins both the
  // output function and the seeding sequence.
  Pcg32 rng(42, 54);
  const uint32_t kExpected[] = {0xa15c02b7u, 0x7b47f409u, 0xba1d3330u,
                                0x83d2f293u, 0xbfa4784bu, 0xcbed606eu};
  for (uint32_t expected : kExpected) {
    EXPECT_EQ(rng.NextU32(), expected);
  }
}

TEST(RandomTest, Deterministic) {
  Pcg32 a(123);
  Pcg32 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RandomTest, SeedsDiffer) {
  Pcg32 a(1);
  Pcg32 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Pcg32 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, BoundedCoversRange) {
  Pcg32 rng(9);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint32_t x = rng.NextBounded(7);
    ASSERT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RandomTest, BernoulliFrequency) {
  Pcg32 rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RandomTest, DiscreteRespectsWeights) {
  Pcg32 rng(13);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.NextDiscrete(weights).value()];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[2] / 20000.0, 0.75, 0.02);
}

TEST(RandomTest, DiscreteRejectsBadWeights) {
  Pcg32 rng(17);
  EXPECT_EQ(rng.NextDiscrete({}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(rng.NextDiscrete({0.0, 0.0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(rng.NextDiscrete({1.0, -0.5}).status().code(),
            StatusCode::kInvalidArgument);
  // Failed draws must not advance the generator.
  Pcg32 untouched(17);
  EXPECT_EQ(rng.NextU32(), untouched.NextU32());
}

TEST(RandomTest, SplitIsDeterministicAndPositionIndependent) {
  Pcg32 base(123, 7);
  Pcg32 advanced(123, 7);
  for (int i = 0; i < 50; ++i) advanced.NextU32();
  // Split depends only on the seeding and the worker index, not on how
  // many draws the parent has made.
  Pcg32 a = base.Split(3);
  Pcg32 b = advanced.Split(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RandomTest, SplitStreamsAreDistinct) {
  Pcg32 base(99);
  Pcg32 s0 = base.Split(0);
  Pcg32 s1 = base.Split(1);
  Pcg32 parent(99);
  int same01 = 0;
  int same0p = 0;
  for (int i = 0; i < 200; ++i) {
    uint32_t x0 = s0.NextU32();
    uint32_t x1 = s1.NextU32();
    uint32_t xp = parent.NextU32();
    if (x0 == x1) ++same01;
    if (x0 == xp) ++same0p;
  }
  EXPECT_LT(same01, 5);
  EXPECT_LT(same0p, 5);
}

TEST(SeriesTest, GeometricConverges) {
  Series series = GeometricSeries(1.0, 0.5);
  SumAnalysis result = AnalyzeSum(series);
  ASSERT_EQ(result.kind, SumAnalysis::Kind::kConverged);
  EXPECT_TRUE(result.enclosure.Contains(2.0));
  EXPECT_LT(result.enclosure.width(), 1e-11);
}

TEST(SeriesTest, PowerSeriesBaselP2) {
  // Σ 1/i² = π²/6.
  Series series = PowerSeries(1.0, 2.0);
  SumOptions options;
  options.max_terms = 1 << 22;
  options.target_width = 1e-6;
  SumAnalysis result = AnalyzeSum(series, options);
  ASSERT_EQ(result.kind, SumAnalysis::Kind::kConverged);
  EXPECT_TRUE(result.enclosure.Contains(M_PI * M_PI / 6.0));
}

TEST(SeriesTest, HarmonicCertifiedDivergent) {
  Series series = PowerSeries(1.0, 1.0);
  SumAnalysis result = AnalyzeSum(series);
  EXPECT_EQ(result.kind, SumAnalysis::Kind::kDiverged);
}

TEST(SeriesTest, DivergenceWitnessWithoutCertificates) {
  Series series;
  series.term = [](int64_t) { return 1.0; };
  SumOptions options;
  options.divergence_witness_threshold = 100.0;
  SumAnalysis result = AnalyzeSum(series, options);
  EXPECT_EQ(result.kind, SumAnalysis::Kind::kDivergedWitness);
  EXPECT_GT(result.partial_sum, 100.0);
}

TEST(SeriesTest, InconclusiveWithoutCertificates) {
  Series series;
  series.term = [](int64_t i) { return 1.0 / ((i + 1.0) * (i + 1.0)); };
  SumOptions options;
  options.max_terms = 100;
  SumAnalysis result = AnalyzeSum(series, options);
  EXPECT_EQ(result.kind, SumAnalysis::Kind::kInconclusive);
  EXPECT_GT(result.partial_sum, 1.5);
}

TEST(SeriesTest, TailBoundsAreValid) {
  // Geometric: exact tail is r^N c/(1-r); the bound equals it.
  EXPECT_DOUBLE_EQ(GeometricTailUpper(2.0, 0.5, 3), 2.0 * 0.125 / 0.5);
  // Power: upper bound dominates the true tail (spot check numerically).
  double true_tail = 0.0;
  for (int64_t i = 10; i < 2000000; ++i) {
    true_tail += std::pow(static_cast<double>(i), -2.0);
  }
  EXPECT_GE(PowerTailUpper(1.0, 2.0, 10), true_tail);
  EXPECT_LE(PowerTailLower(1.0, 2.0, 10), true_tail);
  EXPECT_TRUE(std::isinf(PowerTailLower(1.0, 1.0, 10)));
}

}  // namespace
}  // namespace ipdb
