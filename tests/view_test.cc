#include "logic/view.h"

#include <gtest/gtest.h>

#include "logic/classify.h"
#include "logic/parser.h"
#include "relational/instance.h"
#include "test_util.h"
#include "util/random.h"

namespace ipdb {
namespace logic {
namespace {

rel::Schema InSchema() { return rel::Schema({{"R", 2}, {"S", 1}}); }

FoView MakeView(const std::string& body_text,
                const std::vector<std::string>& head,
                const rel::Schema& in_schema, const rel::Schema& out_schema) {
  FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = head;
  def.body = ParseFormula(body_text, in_schema).value();
  auto view = FoView::Create(in_schema, out_schema, {def});
  EXPECT_TRUE(view.ok()) << view.status().ToString();
  return std::move(view).value();
}

TEST(ViewTest, IdentityView) {
  rel::Schema schema = InSchema();
  FoView identity = FoView::Identity(schema);
  Pcg32 rng(3);
  for (int i = 0; i < 20; ++i) {
    rel::Instance instance =
        testing_util::RandomInstance(schema, 3, 0.3, &rng);
    EXPECT_EQ(identity.ApplyOrDie(instance), instance);
  }
}

TEST(ViewTest, JoinView) {
  rel::Schema in = InSchema();
  rel::Schema out({{"T", 2}});
  FoView view = MakeView("exists y. R(x, y) & R(y, z)", {"x", "z"}, in, out);
  rel::Instance instance({
      rel::Fact(0, {rel::Value::Int(1), rel::Value::Int(2)}),
      rel::Fact(0, {rel::Value::Int(2), rel::Value::Int(3)}),
  });
  rel::Instance image = view.ApplyOrDie(instance);
  EXPECT_EQ(image, rel::Instance({rel::Fact(
                       0, {rel::Value::Int(1), rel::Value::Int(3)})}));
}

TEST(ViewTest, CreateValidation) {
  rel::Schema in = InSchema();
  rel::Schema out({{"T", 1}});
  FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x", "x"};  // repeated head var
  def.body = ParseFormula("S(x)", in).value();
  EXPECT_FALSE(FoView::Create(in, out, {def}).ok());

  def.head_vars = {};  // free var not in head
  EXPECT_FALSE(FoView::Create(in, out, {def}).ok());

  def.head_vars = {"x"};
  EXPECT_TRUE(FoView::Create(in, out, {def}).ok());
  // Missing definition for an output relation.
  EXPECT_FALSE(FoView::Create(in, out, {}).ok());
  // Duplicate definitions.
  EXPECT_FALSE(FoView::Create(in, out, {def, def}).ok());
}

TEST(ViewTest, ConstantsCollected) {
  rel::Schema in = InSchema();
  rel::Schema out({{"T", 1}});
  FoView view = MakeView("S(x) & R(x, 7)", {"x"}, in, out);
  EXPECT_EQ(view.NumConstants(), 1);
  EXPECT_EQ(view.Constants()[0], rel::Value::Int(7));
}

TEST(ViewTest, ComposeMatchesSequentialApplication) {
  rel::Schema base = InSchema();
  rel::Schema mid({{"T", 2}});
  rel::Schema out({{"U", 1}});
  FoView inner = MakeView("exists y. R(x, y) & R(y, z)", {"x", "z"}, base,
                          mid);
  // Outer: U(x) := ∃z T(x, z).
  FoView::Definition def;
  def.output_relation = 0;
  def.head_vars = {"x"};
  def.body = ParseFormula("exists z. T(x, z)", mid).value();
  FoView outer = FoView::Create(mid, out, {def}).value();

  auto composed = ComposeViews(inner, outer);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();

  Pcg32 rng(17);
  for (int i = 0; i < 30; ++i) {
    rel::Instance instance =
        testing_util::RandomInstance(base, 4, 0.25, &rng);
    rel::Instance sequential = outer.ApplyOrDie(inner.ApplyOrDie(instance));
    rel::Instance direct = composed.value().ApplyOrDie(instance);
    EXPECT_EQ(sequential, direct) << instance.ToString(base);
  }
}

TEST(ViewTest, ComposeSchemaMismatchFails) {
  rel::Schema base = InSchema();
  FoView identity = FoView::Identity(base);
  rel::Schema other({{"X", 1}});
  FoView other_identity = FoView::Identity(other);
  EXPECT_FALSE(ComposeViews(identity, other_identity).ok());
}

TEST(ClassifyTest, FormulaClasses) {
  rel::Schema schema = InSchema();
  Formula cq = ParseFormula("exists y. R(x, y) & S(y)", schema).value();
  Formula ucq = ParseFormula("S(x) | exists y. R(x, y)", schema).value();
  Formula neg = ParseFormula("!S(x)", schema).value();
  Formula univ = ParseFormula("forall y. R(x, y) -> S(y)", schema).value();
  EXPECT_TRUE(IsConjunctiveQuery(cq));
  EXPECT_FALSE(IsConjunctiveQuery(ucq));
  EXPECT_TRUE(IsUnionOfConjunctiveQueries(ucq));
  EXPECT_FALSE(IsUnionOfConjunctiveQueries(neg));
  EXPECT_TRUE(IsSyntacticallyMonotone(cq));
  EXPECT_TRUE(IsSyntacticallyMonotone(ucq));
  EXPECT_FALSE(IsSyntacticallyMonotone(neg));
  EXPECT_FALSE(IsSyntacticallyMonotone(univ));
}

TEST(ClassifyTest, ViewClassesAndDynamicMonotonicity) {
  rel::Schema in = InSchema();
  rel::Schema out({{"T", 2}});
  FoView cq_view =
      MakeView("exists y. R(x, y) & R(y, z)", {"x", "z"}, in, out);
  EXPECT_TRUE(IsCqView(cq_view));
  EXPECT_TRUE(IsMonotoneView(cq_view));

  rel::Schema out1({{"T", 1}});
  FoView neg_view = MakeView("!S(x) & exists y. R(x, y)", {"x"}, in, out1);
  EXPECT_FALSE(IsMonotoneView(neg_view));

  // Dynamic check: the CQ view is monotone on samples, the negated one
  // is caught violating monotonicity.
  Pcg32 rng(23);
  std::vector<rel::Instance> instances;
  for (int i = 0; i < 8; ++i) {
    instances.push_back(testing_util::RandomInstance(in, 3, 0.3, &rng));
  }
  // Ensure some subset pairs exist: add unions.
  instances.push_back(
      rel::Instance::Union(instances[0], instances[1]));
  EXPECT_TRUE(CheckMonotoneOnSample(cq_view, instances));

  rel::Instance small({rel::Fact(0, {rel::Value::Int(0),
                                     rel::Value::Int(1)})});
  rel::Instance big = small;
  big.Insert(rel::Fact(1, {rel::Value::Int(0)}));
  EXPECT_FALSE(CheckMonotoneOnSample(neg_view, {small, big}));
}

}  // namespace
}  // namespace logic
}  // namespace ipdb
